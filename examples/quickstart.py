#!/usr/bin/env python
"""Quickstart: dynamic multi-objective shortest paths in 60 lines.

Builds a small bi-objective network, computes the per-objective SOSP
trees, finds a single balanced MOSP (Algorithm 2), then inserts a batch
of edges and *updates* everything incrementally (Algorithm 1) instead
of recomputing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SOSPTree, mosp_update
from repro.dynamic import ChangeBatch
from repro.graph import DiGraph

# ----------------------------------------------------------------------
# 1. A small road network: each edge carries (travel_time, fuel)
# ----------------------------------------------------------------------
g = DiGraph(6, k=2)
g.add_edge(0, 1, (2.0, 5.0))
g.add_edge(0, 2, (5.0, 1.0))
g.add_edge(1, 3, (2.0, 6.0))
g.add_edge(2, 3, (4.0, 2.0))
g.add_edge(1, 4, (7.0, 7.0))
g.add_edge(3, 4, (1.0, 1.0))
g.add_edge(4, 5, (3.0, 2.0))

SOURCE = 0

# ----------------------------------------------------------------------
# 2. One SOSP tree per objective (Dijkstra from scratch, once)
# ----------------------------------------------------------------------
trees = [SOSPTree.build(g, SOURCE, objective=i) for i in range(2)]
print("fastest   route 0->5:", trees[0].path_to(5),
      f"time={trees[0].dist[5]:.1f}")
print("leanest   route 0->5:", trees[1].path_to(5),
      f"fuel={trees[1].dist[5]:.1f}")

# ----------------------------------------------------------------------
# 3. One *balanced* multi-objective route via Algorithm 2
# ----------------------------------------------------------------------
result = mosp_update(g, trees)
print("balanced  route 0->5:", result.path_to(5),
      "cost (time, fuel) =", result.cost_to(5).round(1).tolist())

# ----------------------------------------------------------------------
# 4. The network grows: apply a batch and update incrementally
# ----------------------------------------------------------------------
batch = ChangeBatch.insertions(
    [
        (0, 3, (3.0, 3.0)),   # a new direct road
        (2, 5, (9.0, 2.5)),   # a slow but lean bypass
    ]
)
batch.apply_to(g)

result = mosp_update(g, trees, batch)  # Algorithm 1 runs inside, per tree
print("\nafter inserting 2 edges:")
print("fastest   route 0->5:", trees[0].path_to(5),
      f"time={trees[0].dist[5]:.1f}")
print("leanest   route 0->5:", trees[1].path_to(5),
      f"fuel={trees[1].dist[5]:.1f}")
print("balanced  route 0->5:", result.path_to(5),
      "cost (time, fuel) =", result.cost_to(5).round(1).tolist())

# the update stats show how little work the incremental algorithm did
for i, stats in enumerate(result.update_stats):
    print(f"  tree {i}: {stats.affected_total} vertices touched, "
          f"{stats.iterations} propagation iterations, "
          f"{stats.relaxations} edge relaxations")
