#!/usr/bin/env python
"""WSN data collection: latency/energy-balanced routes to the sink.

The paper's second motivating scenario (§1): sensor nodes route data to
a sink; a pure latency-optimal tree drains the relays near the sink
while a pure energy-optimal tree is slow, so the collection tree should
balance both objectives.  Data flows *toward* the sink, so routes are
computed on the reversed graph rooted at the sink — each tree path read
backwards is a sensor-to-sink route.

The example compares the three trees (latency-optimal, energy-optimal,
balanced MOSP), then plays link-appearance events and keeps the
balanced tree updated incrementally.

Run:  python examples/wsn_data_collection.py
"""

import numpy as np

from repro.core import SOSPTree, mosp_update
from repro.dynamic.workloads import wsn_scenario

scenario = wsn_scenario(n=1200, steps=3, batch_size=30, seed=3)

# Routes to the sink = shortest paths from the sink in the REVERSED graph.
forward = scenario.graph
sink = scenario.source
g = forward.reverse()

trees = [SOSPTree.build(g, sink, objective=i) for i in range(2)]
result = mosp_update(g, trees)

reachable = np.isfinite(trees[0].dist)
print(f"sensors: {g.num_vertices}  links: {g.num_edges}  "
      f"reachable: {int(reachable.sum())}")
print(f"objectives: {' vs '.join(scenario.objective_names)}\n")


def tree_cost_vectors(parent):
    """(n, 2) true (latency, energy) cost along each tree path."""
    out = np.full((g.num_vertices, 2), np.inf)
    out[sink] = 0.0
    order = np.argsort(
        np.where(reachable, trees[0].dist + trees[1].dist, np.inf)
    )

    def hop_weight(u, v):
        best = None
        for vv, eid in g.out_edges(u):
            if vv == v:
                w = g.weight(eid)
                if best is None or tuple(w) < tuple(best):
                    best = w
        return best

    # repeatedly settle vertices whose parent is settled (trees are
    # shallow enough that a few passes converge)
    pending = [v for v in range(g.num_vertices)
               if v != sink and reachable[v]]
    while pending:
        rest = []
        for v in pending:
            p = int(parent[v])
            if p >= 0 and np.isfinite(out[p]).all():
                out[v] = out[p] + hop_weight(p, v)
            else:
                rest.append(v)
        if len(rest) == len(pending):
            break
        pending = rest
    return out


def relay_load(parent):
    """Messages each relay forwards if every sensor reports once —
    the hottest relay bounds the network lifetime."""
    load = np.zeros(g.num_vertices, dtype=np.int64)
    for v in range(g.num_vertices):
        if v == sink or not reachable[v]:
            continue
        x = int(parent[v])
        while x != sink and x >= 0:
            load[x] += 1
            x = int(parent[x])
    return int(load.max())


def summarize(name, parent, costs):
    ok = reachable.copy()
    ok[sink] = False
    print(f"{name:<16} avg latency={np.mean(costs[ok, 0]):7.2f}   "
          f"avg energy={np.mean(costs[ok, 1]):7.2f}   "
          f"hottest relay={relay_load(parent):4d} msgs")


summarize("latency-optimal", trees[0].parent,
          tree_cost_vectors(trees[0].parent))
summarize("energy-optimal", trees[1].parent,
          tree_cost_vectors(trees[1].parent))
summarize("balanced MOSP", result.parent, result.dist_vectors)

print("\nplaying link-appearance events...")
for t, batch in enumerate(scenario.stream.batches(), start=1):
    # the scenario stream targets the forward graph; reverse each edge
    from repro.dynamic import ChangeBatch

    rev = ChangeBatch(batch.dst, batch.src, batch.weights,
                      batch.insert_mask)
    rev.apply_to(g)
    result = mosp_update(g, trees, rev)
    reachable = np.isfinite(trees[0].dist)
    touched = sum(s.affected_total for s in result.update_stats)
    print(f"  step {t}: +{rev.num_insertions} links, "
          f"{touched} route entries updated incrementally")

print("\nfinal balanced tree:")
summarize("balanced MOSP", result.parent, result.dist_vectors)
