#!/usr/bin/env python
"""Pareto route alternatives: the full front, kept fresh incrementally.

Navigation products offer *alternative* routes ("fastest", "shortest",
"eco") — exactly a Pareto front over route objectives.  This example
goes beyond the paper's single-MOSP heuristic and maintains the
**complete** Pareto front of a road network under growth, using the
extensions in this repository:

- ``DynamicParetoFront`` keeps every vertex's front current across
  insertion batches (incremental label-setting);
- ``namoa_star`` answers one-off point-to-point front queries exactly;
- the paper's ``mosp_update`` heuristic is shown alongside, landing on
  (or near) that front at a fraction of the cost.

Run:  python examples/pareto_alternatives.py
"""

import numpy as np

from repro.core import SOSPTree, mosp_update
from repro.dynamic import local_insert_batch
from repro.graph import attach_random_weights, grid_road
from repro.mosp import DynamicParetoFront, namoa_star, nondominated_against

rng = np.random.default_rng(11)
g = grid_road(12, 12, k=2, seed=11)
g = attach_random_weights(g, k=2, rng=rng, distribution="anticorrelated")
SOURCE, DEST = 0, g.num_vertices - 1

print(f"road grid: {g.num_vertices} junctions, {g.num_edges} segments, "
      f"objectives (time, fuel)\n")

front_state = DynamicParetoFront(g, SOURCE)


def show_alternatives(label):
    labs = front_state.labels(DEST)
    print(f"{label}: {len(labs)} Pareto-optimal alternatives "
          f"{SOURCE} -> {DEST}")
    by_time = sorted(labs, key=lambda l: l.dist)
    for name, lab in [("fastest", by_time[0]),
                      ("most fuel-efficient", by_time[-1])]:
        t, f = lab.dist
        print(f"  {name:<20} time={t:7.2f} fuel={f:7.2f} "
              f"hops={len(lab.path()) - 1}")
    # the single balanced route the paper's heuristic would return
    trees = [SOSPTree.build(g, SOURCE, objective=i) for i in range(2)]
    r = mosp_update(g, trees)
    cost = r.cost_to(DEST)
    on = nondominated_against(cost, front_state.front(DEST))
    print(f"  {'paper heuristic':<20} time={cost[0]:7.2f} "
          f"fuel={cost[1]:7.2f} "
          f"({'on the front' if on else 'near the front'})\n")


show_alternatives("initially")

for step in range(1, 4):
    batch = local_insert_batch(g, 10, hops=3, seed=100 + step)
    batch.apply_to(g)
    stats = front_state.update(batch)
    print(f"step {step}: +{batch.num_insertions} road segments, "
          f"{stats.accepted} front labels changed "
          f"({stats.candidates} candidates examined)")

print()
show_alternatives("after growth")

# a one-off exact query for a different destination via NAMOA*
other = g.num_vertices // 2
r = namoa_star(g, SOURCE, other)
print(f"one-off NAMOA* query {SOURCE} -> {other}: "
      f"{len(r.labels)} Pareto alternatives "
      f"({r.pops} labels settled)")
