#!/usr/bin/env python
"""Road traffic: maintaining a balanced route as the road network grows.

The paper's first motivating scenario (§1): a navigation service wants
a single route that balances travel time against fuel consumption in a
network that keeps changing.  This example plays a multi-timestep
change stream over a ~2,500-vertex road network, keeps both SOSP trees
updated incrementally (Algorithm 1), and re-derives the balanced MOSP
route (Algorithm 2) after every timestep.  During the simulated rush
hour it switches to priority weighting — preferring fuel over time —
without recomputing anything from scratch.

Run:  python examples/road_traffic.py
"""

import numpy as np

from repro.core import SOSPTree, mosp_update
from repro.dynamic.workloads import road_traffic_scenario
from repro.parallel import ThreadEngine

scenario = road_traffic_scenario(n=2500, steps=6, batch_size=40, seed=7)
g = scenario.graph
source = scenario.source
# the destination: the far corner of the map
destination = g.num_vertices - 1

engine = ThreadEngine(threads=4)
trees = [SOSPTree.build(g, source, objective=i) for i in range(2)]

print(f"network: {g.num_vertices} junctions, {g.num_edges} road segments")
print(f"route {source} -> {destination}, objectives: "
      f"{' vs '.join(scenario.objective_names)}\n")

header = (f"{'step':>4}  {'mode':<10} {'time':>6} {'fuel':>6} "
          f"{'hops':>4}  {'affected':>8} {'route (first hops)'}")
print(header)
print("-" * len(header))


def report(step, mode, result, affected):
    if not np.isfinite(result.dist_vectors[destination]).all():
        print(f"{step:>4}  {mode:<10} {'unreachable':>13}")
        return
    path = result.path_to(destination)
    t, f = result.cost_to(destination)
    head = "->".join(map(str, path[:6])) + ("..." if len(path) > 6 else "")
    print(f"{step:>4}  {mode:<10} {t:>6.1f} {f:>6.1f} "
          f"{len(path) - 1:>4}  {affected:>8}  {head}")


# timestep 0: the initial balanced route (no batch yet)
result = mosp_update(g, trees, engine=engine)
report(0, "balanced", result, affected="-")

RUSH_HOUR = {3, 4}  # timesteps where fuel economy takes priority

for t, batch in enumerate(scenario.stream.batches(), start=1):
    batch.apply_to(g)
    if t in RUSH_HOUR:
        # prioritise fuel (objective 1) three-to-one over time
        result = mosp_update(
            g, trees, batch, engine=engine,
            weighting="priority", priorities=(1.0, 3.0),
        )
        mode = "eco-prio"
    else:
        result = mosp_update(g, trees, batch, engine=engine)
        mode = "balanced"
    affected = sum(s.affected_total for s in result.update_stats)
    report(t, mode, result, affected)

engine.close()

print("\nper-objective optima for comparison:")
print(f"  fastest: time={trees[0].dist[destination]:.1f} "
      f"(route {'->'.join(map(str, trees[0].path_to(destination)[:6]))}...)")
print(f"  leanest: fuel={trees[1].dist[destination]:.1f} "
      f"(route {'->'.join(map(str, trees[1].path_to(destination)[:6]))}...)")
