#!/usr/bin/env python
"""Drone delivery: budget-driven objective priorities (paper §3.2).

The paper's worked application scenario:

    "Let the energy budget be B, and energy consumption to deliver an
    item by following T_f (resp. T_e) be c_f (resp. c_e).  If
    c_f > B > c_e, the system prioritizes energy cost over delivery
    time to ensure the drones can return to their charging point.
    However, if B > c_f > c_e, the system may choose to follow T_f to
    deliver the items faster.  ...  it may be beneficial to reserve
    some energy budget for emergencies and follow a MOSP approach to
    balance both time and energy objectives."

This example reproduces all three policies over a sequence of delivery
missions with a shrinking battery, switching the route automatically:

- plenty of budget  → fly the time-optimal route T_f;
- tight budget      → fly the energy-optimal route T_e;
- in-between        → balanced MOSP with budget-driven priorities.

Run:  python examples/drone_delivery.py
"""

import numpy as np

from repro.core import SOSPTree, mosp_update
from repro.core.priorities import budget_driven_priorities
from repro.dynamic.workloads import drone_delivery_scenario

scenario = drone_delivery_scenario(n=2000, steps=4, batch_size=30, seed=5)
g = scenario.graph
depot = scenario.source
drop_site = g.num_vertices - 1

trees = [SOSPTree.build(g, depot, objective=i) for i in range(2)]

print(f"airspace: {g.num_vertices} waypoints, {g.num_edges} corridors")
print(f"mission: depot {depot} -> drop site {drop_site}  "
      f"({' vs '.join(scenario.objective_names)})\n")

FULL_CHARGE = 350.0
battery = FULL_CHARGE
batches = list(scenario.stream.batches())

header = (f"{'mission':>7}  {'battery':>8}  {'policy':>9}  "
          f"{'c_f':>6} {'c_e':>6}  {'flown time':>10} {'flown energy':>12}")
print(header)
print("-" * len(header))

for mission in range(1, 5):
    # wind shifts between missions: new corridors appear; update trees
    batch = batches[mission - 1]
    batch.apply_to(g)

    # c_f: energy consumed along the *time-optimal* route
    # c_e: energy consumed along the *energy-optimal* route
    result = mosp_update(g, trees, batch)  # keeps both trees current
    t_f_path = trees[0].path_to(drop_site)

    def path_energy(path):
        total = 0.0
        for u, v in zip(path, path[1:]):
            w = min(
                (tuple(g.weight(eid)) for vv, eid in g.out_edges(u)
                 if vv == v),
            )
            total += w[1]
        return total

    c_f = path_energy(t_f_path)
    c_e = trees[1].dist[drop_site]

    if battery <= c_e:
        # opportunistic partial top-up at the depot between missions
        battery = 0.55 * FULL_CHARGE
        print(f"{mission:>7}  {'recharge':>8}")

    if battery > 1.5 * c_f:
        policy = "fast"     # B >> c_f > c_e: fly T_f
        path = t_f_path
    elif c_f > battery > c_e:
        policy = "lean"     # c_f > B > c_e: fly T_e
        path = trees[1].path_to(drop_site)
    else:
        # reserve margin: balance both objectives, leaning on whichever
        # is under budget pressure
        prios = budget_driven_priorities(
            [trees[0].dist[drop_site], c_f],
            [None, battery],
        )
        result = mosp_update(g, trees, weighting="priority",
                             priorities=prios)
        policy = "balanced"
        path = result.path_to(drop_site)

    flown_time = sum(
        min((tuple(g.weight(eid)) for vv, eid in g.out_edges(u)
             if vv == v))[0]
        for u, v in zip(path, path[1:])
    )
    flown_energy = path_energy(path)
    print(f"{mission:>7}  {battery:>8.1f}  {policy:>9}  "
          f"{c_f:>6.1f} {c_e:>6.1f}  {flown_time:>10.1f} "
          f"{flown_energy:>12.1f}")
    battery -= flown_energy + 5.0  # mission drain + fixed overhead

print("\n(the drone flies fast while the battery allows, shifts to "
      "balanced routes\n under pressure, and to the leanest route when "
      "the budget pinches)")
