"""Ablation — ensemble weighting schemes (Algorithm 2, Step 2).

DESIGN.md calls out the ``k − x + 1`` weighting as a design choice;
this ablation compares it against unit weights (the Theorem-1 setting)
and a scalarisation baseline on graphs whose exact fronts Martins can
enumerate.

Metrics per scheme: how many reachable vertices receive a path on the
exact Pareto front, the worst relative gap for those that miss it, and
the share of hops drawn from edges common to both SOSP trees (the
balance the weighting is designed to promote).

Expected shape: all schemes produce valid near-front paths; the
balanced scheme prefers shared (both-objectives-good) edges more often
than unit weights.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.bench import render_table
from repro.core import SOSPTree, mosp_update
from repro.graph import erdos_renyi
from repro.mosp import front_distance, martins, nondominated_against

SEEDS = (1, 2, 3, 4, 5)
N, M = 40, 160


def evaluate(weighting):
    on_front = total = 0
    gaps = []
    shared_hops = all_hops = 0
    for seed in SEEDS:
        g = erdos_renyi(N, M, k=2, seed=seed)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        kwargs = {"weighting": weighting}
        if weighting == "priority":
            kwargs["priorities"] = (2.0, 1.0)
        r = mosp_update(g, trees, **kwargs)
        full = martins(g, 0)
        shared = set(trees[0].tree_edges()) & set(trees[1].tree_edges())
        for v in range(N):
            if not np.isfinite(r.dist_vectors[v]).all() or v == 0:
                continue
            total += 1
            front = full.front(v)
            if nondominated_against(r.cost_to(v), front):
                on_front += 1
            else:
                gaps.append(front_distance(r.cost_to(v), front))
            path = r.path_to(v)
            for uv in zip(path, path[1:]):
                all_hops += 1
                if uv in shared:
                    shared_hops += 1
    return {
        "weighting": weighting,
        "on front": f"{on_front}/{total}",
        "front rate": f"{on_front / total:.2%}",
        "max gap": f"{max(gaps) if gaps else 0.0:.3f}",
        "shared-edge hops": f"{shared_hops / all_hops:.2%}",
    }


def run_ablation():
    return [evaluate(w) for w in ("balanced", "unit", "priority")]


def test_ensemble_weighting_report(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["weighting", "on front", "front rate", "max gap",
         "shared-edge hops"],
    )
    write_result(results_dir, "ablation_ensemble.txt", text)

    by_name = {r["weighting"]: r for r in rows}
    # every scheme must stay overwhelmingly on the exact front
    for r in rows:
        on, total = map(int, r["on front"].split("/"))
        assert on >= 0.85 * total, r
    # balanced must not use shared edges less than unit weighting does
    balanced = float(by_name["balanced"]["shared-edge hops"].rstrip("%"))
    unit = float(by_name["unit"]["shared-edge hops"].rstrip("%"))
    assert balanced >= unit - 1e-9
