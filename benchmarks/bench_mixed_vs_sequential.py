"""Acceptance bench: one mixed-batch pass vs sequential replay.

The unified fully dynamic pipeline (``apply_mixed_batch``) handles a
batch of deletions, weight changes, and insertions with ONE
invalidate/seed/propagate sweep.  The pre-existing alternative replays
the same edits as two passes — a deletion pass (weight changes lowered
to delete + re-insert) followed by an insertion-only ``sosp_update`` —
paying for two frontier propagations over overlapping affected regions.

Both variants produce the identical final graph, so the distance
fixpoints must match bitwise (differential gate) before any timing is
trusted.  Writes ``results/mixed_vs_sequential.txt`` with rows for the
serial engine and a 4-worker shared-memory engine (the paper's
Figure-4-class road topology), and enforces the tentpole acceptance
criterion: the single pass is no slower than the sequential replay.
"""

from __future__ import annotations

import copy
import time

import numpy as np
import pytest
from conftest import write_result

from repro.bench.ledger import make_ledger, write_ledger
from repro.core import SOSPTree, apply_mixed_batch, sosp_update
from repro.dynamic import ChangeBatch
from repro.graph import road_like
from repro.graph.csr import CSRGraph
from repro.parallel import SerialEngine, SharedMemoryEngine
from repro.bench.report import render_table

pytestmark = pytest.mark.slow

BENCH_N = 22_500  # 150x150 grid_road, the Fig.-4 stand-in family
BATCH = 300
FRACTIONS = (0.4, 0.3, 0.3)  # insert / delete / weight-change
ROUNDS = 3
THREADS = 4


def _make_batches(g, seed):
    """A mixed batch plus its two-pass replay equivalent.

    Deletion and weight-change targets are *disjoint* live edges so the
    replay (delete the re-weighted edge, re-insert it at the new
    weight) reaches the same final graph as the in-place overwrite.
    """
    rng = np.random.default_rng(seed)
    n_ins = int(BATCH * FRACTIONS[0])
    n_del = int(BATCH * FRACTIONS[1])
    n_wc = BATCH - n_ins - n_del
    su, sv, _ = g.edge_arrays()
    idx = rng.choice(len(su), size=n_del + n_wc, replace=False)
    del_pairs = [(int(su[i]), int(sv[i])) for i in idx[:n_del]]
    wc_pairs = [(int(su[i]), int(sv[i])) for i in idx[n_del:]]
    wc_w = rng.uniform(1.0, 10.0, size=n_wc)
    ins_u = rng.integers(0, g.num_vertices, size=n_ins)
    ins_v = rng.integers(0, g.num_vertices, size=n_ins)
    ins_w = rng.uniform(1.0, 10.0, size=n_ins)
    ins = [(int(u), int(v), float(w)) for u, v, w in zip(ins_u, ins_v, ins_w)]
    wc = [(u, v, float(w)) for (u, v), w in zip(wc_pairs, wc_w)]

    mixed = ChangeBatch.concat(
        ChangeBatch.deletions(del_pairs),
        ChangeBatch.weight_changes(wc),
        ChangeBatch.insertions(ins),
    )
    replay_del = ChangeBatch.deletions(del_pairs + wc_pairs)
    replay_ins = ChangeBatch.insertions(wc + ins)
    return mixed, replay_del, replay_ins


def _run_mixed(graph, batch, engine):
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    batch.apply_to(g)
    snapshot.apply_batch(batch)
    t0 = time.perf_counter()
    apply_mixed_batch(g, tree, batch, engine=engine,
                      use_csr_kernels=True, csr=snapshot)
    return time.perf_counter() - t0, tree


def _run_replay(graph, del_batch, ins_batch, engine):
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    del_batch.apply_to(g)
    snapshot.apply_batch(del_batch)
    t0 = time.perf_counter()
    apply_mixed_batch(g, tree, del_batch, engine=engine,
                      use_csr_kernels=True, csr=snapshot)
    elapsed = time.perf_counter() - t0
    ins_batch.apply_to(g)
    snapshot.append_batch(ins_batch)
    t0 = time.perf_counter()
    sosp_update(g, tree, ins_batch, engine=engine,
                use_csr_kernels=True, csr=snapshot)
    return elapsed + (time.perf_counter() - t0), tree


def _compare(graph, seed, engine):
    """Best-of-ROUNDS wall time for each variant + the bitwise gate."""
    mixed, replay_del, replay_ins = _make_batches(graph, seed)
    t_mixed, t_replay = float("inf"), float("inf")
    for r in range(ROUNDS):
        tm, tree_m = _run_mixed(graph, mixed, engine)
        tr, tree_r = _run_replay(graph, replay_del, replay_ins, engine)
        np.testing.assert_array_equal(tree_m.dist, tree_r.dist)
        t_mixed, t_replay = min(t_mixed, tm), min(t_replay, tr)
    return t_mixed, t_replay


def test_mixed_vs_sequential(results_dir, bench_seed):
    graph = road_like(BENCH_N, k=1, seed=bench_seed)
    rows = []
    win_at_4 = None
    timings = {}
    ratios = {}
    for label, make in (
        ("serial", SerialEngine),
        (f"shm ({THREADS} workers)",
         lambda: SharedMemoryEngine(threads=THREADS)),
    ):
        engine = make()
        try:
            t_mixed, t_replay = _compare(graph, bench_seed, engine)
        finally:
            closer = getattr(engine, "close", None)
            if callable(closer):
                closer()
        speedup = t_replay / t_mixed if t_mixed else float("inf")
        key = "serial" if label == "serial" else f"shm{THREADS}"
        timings[f"mixed_{key}"] = t_mixed
        timings[f"replay_{key}"] = t_replay
        ratios[f"replay_over_mixed_{key}"] = speedup
        rows.append({
            "engine": label,
            "mixed single pass (ms)": f"{t_mixed * 1e3:,.2f}",
            "del+ins replay (ms)": f"{t_replay * 1e3:,.2f}",
            "replay/mixed": f"{speedup:.2f}x",
        })
        if label != "serial":
            win_at_4 = speedup
        assert t_mixed <= t_replay, (
            f"single mixed pass slower than sequential replay on "
            f"{label}: {t_mixed * 1e3:.2f}ms vs {t_replay * 1e3:.2f}ms"
        )
    header = (
        f"mixed batch vs sequential replay: road_like n={BENCH_N:,}, "
        f"batch={BATCH} ({FRACTIONS[0]:.0%} ins / {FRACTIONS[1]:.0%} del "
        f"/ {FRACTIONS[2]:.0%} re-weight), best of {ROUNDS}, "
        f"seed {bench_seed}\n"
        "same final graph, bitwise-identical dist; replay pays a second "
        "invalidate + propagate sweep\n\n"
    )
    table = render_table(
        rows,
        ["engine", "mixed single pass (ms)", "del+ins replay (ms)",
         "replay/mixed"],
    )
    footer = (
        f"\nwin at {THREADS} workers: single pass "
        f"{win_at_4:.2f}x faster than replay\n"
    )
    write_result(results_dir, "mixed_vs_sequential.txt",
                 header + table + footer)
    write_ledger(results_dir, make_ledger(
        "mixed_vs_sequential",
        graph={"name": f"road_like-{BENCH_N}",
               "vertices": graph.num_vertices,
               "edges": graph.num_edges,
               "objectives": graph.num_objectives},
        engine="serial+shm",
        workers=THREADS,
        wall_seconds=timings,
        derived=ratios,
        seed=bench_seed,
        notes=f"batch={BATCH} ({FRACTIONS[0]:.0%} ins / "
              f"{FRACTIONS[1]:.0%} del / {FRACTIONS[2]:.0%} re-weight), "
              f"best of {ROUNDS}; gate: mixed <= replay on every engine",
    ))
