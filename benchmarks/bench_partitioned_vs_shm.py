"""Acceptance bench: partitioned multi-pool vs single-pool shm.

Runs the real update pipeline (``sosp_update`` over insert batches on
an incrementally maintained CSR snapshot) at an equal worker budget:
one shared-memory pool with two workers versus the partitioned engine
driving two single-worker shm shard pools through boundary-exchange
supersteps.  The differential gate inside
``compare_partitioned_vs_shm`` asserts both fixpoints are
bitwise-identical to the serial reference before any timing is
trusted.

Writes ``results/partitioned_vs_shm.txt`` and enforces the tentpole's
acceptance criterion: partitioned at 2 shards is **no slower** than
the single-pool shm backend on the same batch sequence.  On this
single-core host neither backend can beat serial on raw compute — the
measured margin is dispatch/transport overhead, which is exactly what
sharding reduces (each shard's wave is smaller, so more supersteps run
inline below the dispatch threshold instead of paying the cross-process
round-trip).
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.bench.engines import compare_partitioned_vs_shm
from repro.bench.ledger import make_ledger, write_ledger
from repro.bench.report import render_table

pytestmark = pytest.mark.slow

BENCH_N = 12000
BENCH_BATCHES = 4
BENCH_BATCH_SIZE = 512
BENCH_WORKERS = 2

SMOKE_N = 800
SMOKE_BATCHES = 2
SMOKE_BATCH_SIZE = 64
# a graph this small is pure fixed overhead for the exchange loop —
# the smoke gate only bounds that overhead; the full run above the
# dispatch threshold gates the real "no slower" criterion
SMOKE_TOLERANCE = 2.0


def _rows(stats):
    fmt = lambda x: f"{x:,.2f}"  # noqa: E731 - local column formatter
    shm, part = stats["shm_ms_per_batch"], stats["partitioned_ms_per_batch"]
    return [
        {
            "engine": "serial (oracle)",
            "ms/batch": fmt(stats["serial_ms_per_batch"]),
            "vs shm": "-",
        },
        {
            "engine": f"shm ({int(stats['workers'])} workers, one pool)",
            "ms/batch": fmt(shm),
            "vs shm": "1.00x",
        },
        {
            "engine": (
                f"partitioned ({int(stats['workers'])} shards x shm(1))"
            ),
            "ms/batch": fmt(part),
            "vs shm": f"{stats['speedup_vs_shm']:.2f}x",
        },
    ]


def _ledger(name, stats, n, seed, notes):
    return make_ledger(
        name,
        graph={"name": f"road_like-{n}", "vertices": n, "edges": 0,
               "objectives": 1},
        engine="partitioned",
        workers=int(stats["workers"]),
        wall_seconds={
            "serial_per_batch": stats["serial_ms_per_batch"] / 1e3,
            "shm_per_batch": stats["shm_ms_per_batch"] / 1e3,
            "partitioned_per_batch": stats["partitioned_ms_per_batch"] / 1e3,
        },
        derived={"speedup_vs_shm": stats["speedup_vs_shm"]},
        seed=seed,
        notes=notes,
    )


def test_partitioned_smoke_not_slower(bench_seed, results_dir):
    """CI smoke gate: partitioned must stay within noise of shm."""
    stats = compare_partitioned_vs_shm(
        n=SMOKE_N, batches=SMOKE_BATCHES,
        batch_size=SMOKE_BATCH_SIZE, workers=BENCH_WORKERS,
        seed=bench_seed,
    )
    write_ledger(results_dir, _ledger(
        "partitioned_vs_shm_smoke", stats, SMOKE_N, bench_seed,
        f"{SMOKE_BATCHES} insert batches of {SMOKE_BATCH_SIZE}; smoke "
        f"gate: partitioned <= {SMOKE_TOLERANCE}x shm",
    ))
    assert stats["partitioned_s"] <= SMOKE_TOLERANCE * stats["shm_s"], (
        f"partitioned {stats['partitioned_s']:.3f}s vs "
        f"shm {stats['shm_s']:.3f}s exceeds the smoke tolerance"
    )


def test_partitioned_vs_shm(results_dir, bench_seed):
    """Full acceptance run: partitioned at 2 shards no slower than shm."""
    stats = compare_partitioned_vs_shm(
        n=BENCH_N, batches=BENCH_BATCHES,
        batch_size=BENCH_BATCH_SIZE, workers=BENCH_WORKERS,
        seed=bench_seed,
    )
    header = (
        f"partitioned vs shm: road_like n={BENCH_N:,}, "
        f"{BENCH_BATCHES} insert batches of {BENCH_BATCH_SIZE}, "
        f"{BENCH_WORKERS}-worker budget (seed {bench_seed})\n"
        "real sosp_update pipeline, incremental CSR snapshot, warm-up "
        "batch excluded;\nall three distance fixpoints asserted "
        "bitwise-identical before timing is trusted.\n"
        "single-core host: margins are dispatch/transport overhead, "
        "not parallel compute\n\n"
    )
    table = render_table(_rows(stats), ["engine", "ms/batch", "vs shm"])
    gate = (
        f"\n\ngate: partitioned ({stats['partitioned_s']:.3f}s) must be "
        f"no slower than single-pool shm ({stats['shm_s']:.3f}s) -> "
        f"{'PASS' if stats['partitioned_s'] <= stats['shm_s'] else 'FAIL'}"
    )
    write_result(
        results_dir, "partitioned_vs_shm.txt", header + table + gate + "\n"
    )
    write_ledger(results_dir, _ledger(
        "partitioned_vs_shm", stats, BENCH_N, bench_seed,
        f"{BENCH_BATCHES} insert batches of {BENCH_BATCH_SIZE}, real "
        "sosp_update pipeline; gate: partitioned no slower than shm",
    ))
    assert stats["partitioned_s"] <= stats["shm_s"], (
        f"partitioned {stats['partitioned_s']:.3f}s slower than "
        f"single-pool shm {stats['shm_s']:.3f}s"
    )
