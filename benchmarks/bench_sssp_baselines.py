"""Substrate benchmark — the static SSSP solvers, wall clock.

Not a paper figure; this is the pytest-benchmark comparison of the
recompute baselines that anchor the update-vs-recompute analysis:
Dijkstra (both queue variants), Bellman-Ford (vectorised rounds and
frontier), Δ-stepping, and the point-to-point accelerations.

Expected shape on a sparse road stand-in (wall time, CPython):

- full SSSP: lazy-heap Dijkstra first; the addressable heap pays for
  its position index in pure Python; *round-based* Bellman-Ford beats
  the *frontier* variant on the high-diameter road graph despite doing
  ~40x more edge relaxations — its rounds are whole-array numpy
  operations while the frontier loop is per-vertex Python.  (On the
  work-unit/virtual-time ledger, and on the shallow post-insertion
  ensemble graphs of Algorithm 2, the ordering flips back — which is
  why `mosp_update` defaults to the frontier kernel.  A neat lesson in
  CPython constant factors vs algorithmic work.)
- point-to-point: ALT (with a prebuilt index) and bidirectional search
  beat running a full Dijkstra and reading one entry.
"""

import pytest

from repro.bench.datasets import load_dataset
from repro.sssp import (
    ALTIndex,
    alt_search,
    bellman_ford,
    bidirectional_dijkstra,
    delta_stepping,
    dijkstra,
    frontier_bellman_ford,
)

DATASET = "roadNet-PA"


@pytest.fixture(scope="module")
def road():
    return load_dataset(DATASET, k=1)


@pytest.fixture(scope="module")
def alt_index(road):
    return ALTIndex(road, num_landmarks=4)


class TestFullSSSP:
    def test_dijkstra_lazy(self, benchmark, road):
        dist, _ = benchmark.pedantic(
            lambda: dijkstra(road, 0, queue="lazy"), rounds=3, iterations=1
        )
        assert dist[0] == 0.0

    def test_dijkstra_addressable(self, benchmark, road):
        dist, _ = benchmark.pedantic(
            lambda: dijkstra(road, 0, queue="addressable"),
            rounds=3, iterations=1,
        )
        assert dist[0] == 0.0

    def test_delta_stepping(self, benchmark, road):
        dist, _ = benchmark.pedantic(
            lambda: delta_stepping(road, 0), rounds=3, iterations=1
        )
        assert dist[0] == 0.0

    def test_frontier_bellman_ford(self, benchmark, road):
        dist, _ = benchmark.pedantic(
            lambda: frontier_bellman_ford(road, 0), rounds=3, iterations=1
        )
        assert dist[0] == 0.0

    def test_round_bellman_ford(self, benchmark, road):
        # vectorised rounds: numpy soaks the diameter factor, but it
        # is still the slowest full-SSSP kernel here
        dist, _ = benchmark.pedantic(
            lambda: bellman_ford(road, 0), rounds=1, iterations=1
        )
        assert dist[0] == 0.0

    def test_frontier_bellman_ford_csr_kernels(self, benchmark, road):
        # new vs old kernel: the reverse-CSR gather + segmented-argmin
        # variant of the frontier loop (repro.core.kernels), the same
        # code mosp_update's Step 3 runs under use_csr_kernels=True
        from repro.core.kernels import frontier_bellman_ford_csr
        from repro.graph.csr import CSRGraph

        csr = CSRGraph.ensure(road)
        dist, _ = benchmark.pedantic(
            lambda: frontier_bellman_ford_csr(csr, 0),
            rounds=3, iterations=1,
        )
        ref, _ = frontier_bellman_ford(road, 0)
        assert dist[0] == 0.0
        import numpy as np

        np.testing.assert_array_equal(dist, ref)


class TestPointToPoint:
    DEST = 4321

    def test_full_dijkstra_then_read(self, benchmark, road):
        def run():
            dist, _ = dijkstra(road, 0)
            return dist[self.DEST]

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_bidirectional(self, benchmark, road):
        benchmark.pedantic(
            lambda: bidirectional_dijkstra(road, 0, self.DEST),
            rounds=3, iterations=1,
        )

    def test_alt_with_prebuilt_index(self, benchmark, road, alt_index):
        benchmark.pedantic(
            lambda: alt_search(road, 0, self.DEST, index=alt_index),
            rounds=3, iterations=1,
        )
