"""Figure 5 — Speedup vs single-thread execution (ΔE = 100K).

"Figure 5 shows the execution time ratio (speedup) of single and
multi-thread executions when the datasets are varied.  The largest
network in our test suite, i.e., road-usa shows the maximum speedup
(up to 15X)." (§4.1)

Expected shape: monotone speedup flattening toward 64 threads;
road-usa on top (it has the most parallel slack per superstep),
smaller networks lower.
"""

import pytest

from conftest import write_result
from repro.bench import figure5_series, render_series_table
from repro.bench.datasets import DATASETS
from repro.bench.figures import DEFAULT_THREADS
from repro.bench.plotting import ascii_line_chart


def test_figure5_report(benchmark, trace_cache, results_dir):
    series = benchmark.pedantic(
        lambda: figure5_series(
            datasets=sorted(DATASETS),
            threads=DEFAULT_THREADS,
            traces=trace_cache,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_series_table(
        series, value_format=lambda s: f"{s:.2f}x"
    )
    chart = ascii_line_chart(
        series, title="Figure 5: speedup vs threads (dE=100K scaled)",
        x_label="threads", y_label="speedup", log_x=True,
    )
    write_result(results_dir, "fig5_speedup.txt", text + "\n\n" + chart)

    for ds, pts in series.items():
        d = dict(pts)
        assert d[1] == pytest.approx(1.0)
        assert d[64] > 2.0, f"{ds}: speedup at 64 threads is only {d[64]:.2f}"
        assert d[64] <= 64.0
    # the paper's headline: the largest network scales best
    finals = {ds: dict(pts)[64] for ds, pts in series.items()}
    assert finals["road-usa"] == max(finals.values())
