"""Shared fixtures for the benchmark suite.

- ``trace_cache`` (session-scoped): recorded MOSP-update executions,
  shared across the Figure 4/5/6 benchmarks so each (dataset, ΔE)
  configuration is executed exactly once per session.
- ``results_dir``: where each benchmark writes its rendered series
  (``results/*.txt``) for EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only``.  Heavy pipelines use
``benchmark.pedantic(rounds=1)`` — the figures come from the simulated
machine's virtual clock, not from wall-time statistics, so repeated
execution would add nothing but heat.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def trace_cache():
    """(dataset, paper ΔE) → MOSPTrace, shared across bench modules."""
    return {}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")
