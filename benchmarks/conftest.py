"""Shared fixtures for the benchmark suite.

- ``trace_cache`` (session-scoped): recorded MOSP-update executions,
  shared across the Figure 4/5/6 benchmarks so each (dataset, ΔE)
  configuration is executed exactly once per session.
- ``results_dir``: where each benchmark writes its rendered series
  (``results/*.txt``) for EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only``.  Heavy pipelines use
``benchmark.pedantic(rounds=1)`` — the figures come from the simulated
machine's virtual clock, not from wall-time statistics, so repeated
execution would add nothing but heat.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import numpy as np
import pytest

from repro.bench.runner import set_bench_seed

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=0,
        help="single seed for all benchmark randomness (batch "
        "generation via repro.bench.runner, plus the numpy/stdlib "
        "global generators)",
    )


@pytest.fixture(scope="session", autouse=True)
def bench_seed(request) -> int:
    """Seed every source of benchmark randomness exactly once.

    The value flows to :func:`repro.bench.runner.set_bench_seed` (picked
    up by every ``record_mosp_trace``/figure call that doesn't pin its
    own seed) and to the ``numpy``/``random`` global generators.
    """
    seed = int(request.config.getoption("--bench-seed"))
    set_bench_seed(seed)
    random.seed(seed)
    np.random.seed(seed)
    return seed


@pytest.fixture(scope="session")
def trace_cache():
    """(dataset, paper ΔE) → MOSPTrace, shared across bench modules."""
    return {}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")
