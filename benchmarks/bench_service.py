"""Acceptance bench: the always-on update service under mixed load.

Starts an :class:`~repro.service.service.UpdateService` on the shm
engine and drives it with the load generator: a seeded stream of
insert/delete/re-weight edits through the back-pressured ingest path,
concurrent reader threads issuing digest-verified path queries against
the published MVCC epochs.  The run is only trusted — and the ledger
only written — when it proves the service's guarantees: zero torn
reads, zero reader errors, a clean drain.

Writes ``results/BENCH_service.json`` (sustained updates/sec and the
query latency percentiles under concurrent load) plus the rendered
``results/service_load.txt`` table.
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.bench.ledger import make_ledger, write_ledger
from repro.bench.report import render_table
from repro.graph import road_like
from repro.service import UpdateService, run_load

SMOKE_N = 1200
SMOKE_EDITS = 240
SMOKE_QUERIES = 1200
SMOKE_READERS = 2
SMOKE_WORKERS = 2

FULL_N = 12000
FULL_EDITS = 2000
FULL_QUERIES = 10000


def _drive(n, edits, queries, readers, workers, seed):
    g = road_like(n, k=1, seed=seed)
    service = UpdateService(
        g, 0, engine="shm", threads=workers,
        flush_size=64, flush_latency=0.02,
    )
    service.start()
    try:
        report = run_load(
            service, edits=edits, queries=queries, readers=readers,
            seed=seed, insert_fraction=0.7, weight_change_fraction=0.15,
        )
    finally:
        service.stop(drain=True)
    assert service.error is None, f"service failed: {service.error}"
    assert report.clean, (
        f"load run violated the service guarantees: "
        f"torn={report.torn_reads}, errors={report.reader_errors}, "
        f"drained={report.drained}"
    )
    return g, service, report


def _ledger(name, g, report, workers, seed):
    return make_ledger(
        name,
        graph={
            "name": f"road_like-{g.num_vertices}",
            "vertices": g.num_vertices,
            "edges": g.num_edges,
            "objectives": g.num_objectives,
        },
        engine="shm",
        workers=workers,
        wall_seconds={"mixed_load": float(report.wall_seconds)},
        derived={
            "updates_per_sec": float(report.updates_per_sec),
            "query_p50_s": float(report.query_p50_s),
            "query_p99_s": float(report.query_p99_s),
            "epochs": float(report.epochs),
            "queries": float(report.queries),
            "torn_reads": float(report.torn_reads),
        },
        seed=seed,
        notes=(
            "UpdateService mixed read/write load: "
            f"{report.edits_applied} edits coalesced into "
            f"{report.epochs} epochs while {report.queries} "
            "digest-verified path queries ran concurrently; "
            "torn_reads is asserted zero before the ledger is written."
        ),
    )


def _rows(report):
    return [
        {
            "metric": "sustained updates/sec",
            "value": f"{report.updates_per_sec:,.0f}",
        },
        {"metric": "epochs published", "value": str(report.epochs)},
        {"metric": "verified queries", "value": str(report.queries)},
        {
            "metric": "query p50",
            "value": f"{report.query_p50_s * 1e6:,.0f} us",
        },
        {
            "metric": "query p99",
            "value": f"{report.query_p99_s * 1e6:,.0f} us",
        },
        {"metric": "torn reads", "value": str(report.torn_reads)},
    ]


def test_service_smoke_ledger(results_dir, bench_seed):
    """CI smoke: prove the guarantees, emit the service perf ledger."""
    g, service, report = _drive(
        SMOKE_N, SMOKE_EDITS, SMOKE_QUERIES, SMOKE_READERS,
        SMOKE_WORKERS, bench_seed,
    )
    assert report.edits_applied == SMOKE_EDITS
    assert report.queries >= SMOKE_QUERIES
    assert report.epochs >= 3
    path = write_ledger(
        results_dir,
        _ledger("service", g, report, SMOKE_WORKERS, bench_seed),
    )
    title = (f"update service under mixed load "
             f"(road n={g.num_vertices}, shm x{SMOKE_WORKERS})")
    table = render_table(_rows(report), ("metric", "value"))
    write_result(results_dir, "service_load.txt", f"{title}\n{table}")
    assert path.name == "BENCH_service.json"


@pytest.mark.slow
def test_service_sustained_full(results_dir, bench_seed):
    """Full run: a larger network, 2k edits, 10k verified queries."""
    g, service, report = _drive(
        FULL_N, FULL_EDITS, FULL_QUERIES, SMOKE_READERS,
        SMOKE_WORKERS, bench_seed,
    )
    assert report.edits_applied == FULL_EDITS
    write_ledger(
        results_dir,
        _ledger("service_full", g, report, SMOKE_WORKERS, bench_seed),
    )
