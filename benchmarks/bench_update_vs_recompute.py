"""Motivating claim (§2.2): updating an SOSP beats recomputing it.

"It has been observed that in a dynamic network, updating an SOSP
requires less time than recomputing it from scratch when changes occur
in the network topology [17]."

The claim has two regimes, and this benchmark reports both:

- **redundant batches** (new edges that improve no shortest path — the
  overwhelmingly common case for real road updates): the update costs
  one scan of ΔE, orders of magnitude below a from-scratch Dijkstra.
- **local batches** (endpoints a short walk apart — new local
  streets): improvements are small but their downstream *shadows* can
  still span much of the graph when they land near the source, so the
  update's work approaches (and can exceed) a recompute at stand-in
  scale, while remaining superstep-parallel.
- **teleport batches** (uniform random endpoints, the paper's ΔE
  generator — on a large-diameter road network every such edge is a
  global shortcut): the improvement cascade exceeds Dijkstra's work,
  but the update is superstep-parallel while the priority-queue
  Dijkstra is not, so the update still wins on *time* once threads are
  applied.  This parallel-vs-sequential asymmetry is precisely why the
  paper builds on update algorithms.
"""

import pytest

from conftest import write_result
from repro.bench import render_table
from repro.bench.ledger import make_ledger, write_ledger
from repro.bench.datasets import load_dataset
from repro.core import SOSPTree, sosp_update
from repro.dynamic import local_insert_batch, random_insert_batch
from repro.parallel import SimulatedEngine, WorkMeter, replay_trace
from repro.parallel.cost import DEFAULT_SECONDS_PER_UNIT
from repro.sssp import dijkstra

DATASET = "roadNet-PA"
BATCH_FRACTIONS = (0.001, 0.01, 0.05)


def run_comparison():
    rows = []
    ledger = {"graph": {}, "wall_seconds": {}, "derived": {}}
    for regime in ("redundant", "local", "teleport"):
        for frac in BATCH_FRACTIONS:
            g = load_dataset(DATASET, k=1, fresh=True)
            tree = SOSPTree.build(g, 0)
            size = max(1, int(frac * g.num_edges))
            if regime == "redundant":
                # local endpoints, weights above any 3-hop subpath cost
                # (edge weights are <= 10): guaranteed no improvement
                batch = local_insert_batch(g, size, hops=3, seed=42,
                                           low=31.0, high=40.0)
            elif regime == "local":
                batch = local_insert_batch(g, size, hops=3, seed=42)
            else:
                batch = random_insert_batch(g, size, seed=42)
            batch.apply_to(g)

            eng = SimulatedEngine(threads=1, record_trace=True)
            sosp_update(g, tree, batch, engine=eng)
            update_units = eng.work_units
            update_ms_16t = 1e3 * replay_trace(eng.trace, 16)

            meter = WorkMeter()
            dijkstra(g, 0, meter=meter)
            recompute_units = meter.total
            # Dijkstra is sequential: its virtual time is its work
            recompute_ms = 1e3 * recompute_units * DEFAULT_SECONDS_PER_UNIT

            rows.append(
                {
                    "regime": regime,
                    "dE/|E|": f"{frac:.1%}",
                    "batch": batch.num_insertions,
                    "update work": int(update_units),
                    "dijkstra work": int(recompute_units),
                    "work ratio": f"{update_units / recompute_units:.3f}",
                    "update ms@16T": f"{update_ms_16t:.2f}",
                    "dijkstra ms": f"{recompute_ms:.2f}",
                }
            )
            key = f"{regime}_{frac:g}"
            ledger["graph"] = {
                "name": DATASET, "vertices": g.num_vertices,
                "edges": g.num_edges, "objectives": g.num_objectives,
            }
            ledger["wall_seconds"][f"update_16t_{key}"] = update_ms_16t / 1e3
            ledger["wall_seconds"][f"dijkstra_{key}"] = recompute_ms / 1e3
            ledger["derived"][f"work_ratio_{key}"] = (
                update_units / recompute_units
            )
    return rows, ledger


def test_update_vs_recompute_report(benchmark, results_dir, bench_seed):
    rows, ledger = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    write_ledger(results_dir, make_ledger(
        "update_vs_recompute",
        graph=ledger["graph"],
        engine="simulated",
        workers=16,
        wall_seconds=ledger["wall_seconds"],
        derived=ledger["derived"],
        seed=bench_seed,
        notes="virtual times from the simulated work-span machine "
              "(update replayed at 16 threads; Dijkstra sequential); "
              "work ratios are engine-independent work units",
    ))
    text = render_table(
        rows,
        ["regime", "dE/|E|", "batch", "update work", "dijkstra work",
         "work ratio", "update ms@16T", "dijkstra ms"],
    )
    write_result(results_dir, "update_vs_recompute.txt", text)

    redundant = [r for r in rows if r["regime"] == "redundant"]
    # redundant updates: negligible next to recomputing, at every size
    for r in redundant:
        assert float(r["work ratio"]) < 0.1, r
    # teleport updates (the paper's ΔE distribution): parallel update
    # time beats sequential Dijkstra at every batch size.  (Large
    # *local* batches propagate deep and thin — barrier-bound — and can
    # lose even in parallel; the table shows that crossover honestly.)
    for r in rows:
        if r["regime"] == "teleport":
            assert float(r["update ms@16T"]) < float(r["dijkstra ms"]), r


def test_sosp_update_kernel_benchmark(benchmark):
    """Wall-clock pytest-benchmark of the Algorithm-1 kernel itself."""
    g0 = load_dataset(DATASET, k=1, fresh=True)
    tree0 = SOSPTree.build(g0, 0)

    def setup():
        g = g0.copy()
        tree = tree0.copy()
        batch = random_insert_batch(g, 300, seed=7)
        batch.apply_to(g)
        return (g, tree, batch), {}

    def kernel(g, tree, batch):
        return sosp_update(g, tree, batch)

    benchmark.pedantic(kernel, setup=setup, rounds=3, iterations=1)
