"""Motivating claim (§3.2): one MOSP, fast, instead of the whole front.

"Searching for a single MOSP rather than finding all MOSPs can improve
execution time and decrease resource requirements. ... Finding a MOSP
with two or more objectives is known to be an NP-hard problem.  Our
approach converts a MOSP problem into an SOSP problem, reducing total
execution time."

This benchmark pits Algorithm 2 against Martins' exact enumeration on
layered DAGs with *anticorrelated* objectives — the construction whose
Pareto fronts (and hence Martins' label count) grow exponentially with
depth, while the heuristic's work stays linear in the graph size.
Quality is reported as the share of reachable vertices whose heuristic
path lies on the exact front, and the worst relative gap otherwise.

Expected shape: Martins' label work grows exponentially with layers;
the heuristic grows linearly.  Quality: under *strong* anticorrelation
the ensemble path is occasionally dominated — the unique-SOSP-tree
premise of the paper's Theorems 1/3 certifies only one candidate per
objective, and a combined prefix/suffix path need not be optimal — so
the on-front share lands high but below 100% (a quantified caveat to
the paper's optimality discussion; see EXPERIMENTS.md), with small
relative gaps otherwise.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.bench import render_table
from repro.core import SOSPTree, mosp_update
from repro.graph import attach_random_weights, layered_dag
from repro.mosp import front_distance, martins, nondominated_against
from repro.parallel import SimulatedEngine

LAYER_SWEEP = (4, 6, 8, 10, 12)
WIDTH = 4


def make_graph(layers):
    g = layered_dag(layers, WIDTH, k=2, seed=layers, fanout=3)
    return attach_random_weights(
        g, k=2, rng=np.random.default_rng(layers),
        distribution="anticorrelated",
    )


def run_comparison():
    rows = []
    for layers in LAYER_SWEEP:
        g = make_graph(layers)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        eng = SimulatedEngine(threads=1)
        r = mosp_update(g, trees, engine=eng)
        heuristic_units = eng.work_units

        full = martins(g, 0)
        martins_units = full.pops + full.inserts

        on_front = 0
        gaps = []
        reachable = 0
        for v in range(g.num_vertices):
            if not np.isfinite(r.dist_vectors[v]).all():
                continue
            reachable += 1
            front = full.front(v)
            if nondominated_against(r.cost_to(v), front):
                on_front += 1
            else:
                gaps.append(front_distance(r.cost_to(v), front))
        rows.append(
            {
                "layers": layers,
                "n": g.num_vertices,
                "heuristic work": int(heuristic_units),
                "martins labels": int(martins_units),
                "work ratio": f"{martins_units / max(1, heuristic_units):.1f}x",
                "on front": f"{on_front}/{reachable}",
                "max gap": f"{max(gaps) if gaps else 0.0:.3f}",
            }
        )
    return rows


def test_mosp_vs_full_pareto_report(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["layers", "n", "heuristic work", "martins labels", "work ratio",
         "on front", "max gap"],
    )
    write_result(results_dir, "mosp_vs_full_pareto.txt", text)

    # exponential vs linear: the ratio must grow across the sweep and
    # end decisively in the heuristic's favour
    ratios = [
        r["martins labels"] / max(1, r["heuristic work"]) for r in rows
    ]
    assert ratios[-1] > 5.0
    assert ratios[-1] > 2 * ratios[0]
    # quality: in the adversarial (strongly anticorrelated) regime a
    # large share of heuristic paths still sits on the exact front,
    # and the misses stay within a small relative gap of it
    for r in rows:
        on, total = map(int, r["on front"].split("/"))
        assert on >= 0.4 * total, r
        assert float(r["max gap"]) <= 0.2, r


def test_martins_kernel_benchmark(benchmark):
    """Wall-clock benchmark of the exact enumerator (the expensive side)."""
    g = make_graph(10)
    result = benchmark.pedantic(
        lambda: martins(g, 0), rounds=3, iterations=1
    )
    assert result.num_labels() > 0


def test_mosp_update_kernel_benchmark(benchmark):
    """Wall-clock benchmark of the heuristic (the cheap side)."""
    g = make_graph(10)
    trees0 = [SOSPTree.build(g, 0, objective=i) for i in range(2)]

    def setup():
        return ([t.copy() for t in trees0],), {}

    benchmark.pedantic(
        lambda trees: mosp_update(g, trees), setup=setup,
        rounds=3, iterations=1,
    )
