"""Figure 4 — Scalability Analysis (time vs threads per network).

The paper's strong-scaling study: wall time of the MOSP update
(bi-objective, both SOSP trees + merge + Bellman-Ford) against 1–64
OpenMP threads for ΔE ∈ {50K, 100K, 200K}, one panel per network.

Here each (network, ΔE) configuration is executed once on the
trace-recording simulated machine and replayed across thread counts
(identical task graph, different schedule — see DESIGN.md §2).  The
expected shape, as in the paper:

- time decreases with threads, flattening past ~16–32;
- the large sparse road-usa scales best; smaller graphs scale less.

One deviation is expected and documented (EXPERIMENTS.md): the paper's
ΔE legend orders 50K < 100K < 200K in time, while at stand-in scale
the batch-size ordering is non-monotonic — uniform-random insertions
are global teleports on a road network, and past a density threshold
*more* insertions shrink the effective diameter enough that the
propagation cascade (and hence total work) stops growing.  The 1000×
larger paper graphs sit below that threshold.  The table reports the
measured ordering; the assertion covers the thread-scaling claims.
"""

import pytest

from conftest import write_result
from repro.bench import figure4_series, render_series_table
from repro.bench.datasets import DATASETS, PAPER_BATCH_SIZES
from repro.bench.figures import DEFAULT_THREADS
from repro.bench.plotting import ascii_line_chart


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_figure4_panel(benchmark, dataset, trace_cache, results_dir):
    """One Figure-4 panel: ΔE ∈ {50K,100K,200K} series for ``dataset``."""
    series = benchmark.pedantic(
        lambda: figure4_series(
            datasets=[dataset],
            paper_batch_sizes=PAPER_BATCH_SIZES,
            threads=DEFAULT_THREADS,
            traces=trace_cache,
        ),
        rounds=1,
        iterations=1,
    )
    panel = series[dataset]
    labelled = {
        f"dE={de // 1000}K (ms)": pts for de, pts in sorted(panel.items())
    }
    text = render_series_table(labelled)
    chart = ascii_line_chart(
        labelled, title=f"Figure 4: {dataset} — time vs threads",
        x_label="threads", y_label="ms", log_x=True,
    )
    write_result(results_dir, f"fig4_{dataset}.txt", text + "\n\n" + chart)

    # shape assertions (the paper's thread-scaling claims)
    for de, pts in panel.items():
        times = dict(pts)
        assert times[64] < times[1], (
            f"{dataset} dE={de}: no speedup at 64 threads"
        )
        # broadly monotone: every doubling up to 16 threads helps
        assert times[2] < times[1]
        assert times[4] < times[2]
        assert times[16] < times[8]
