"""Acceptance bench: SharedMemoryEngine vs ProcessEngine transport cost.

Runs the identical slab relaxation workload through both process
backends (see :mod:`repro.bench.engines`): the old path ships every
superstep's array slices through the pickle round-trip; the new path
plants the arrays once in shared memory and dispatches only
``(lo, hi)`` indices.  The differential gate inside
``compare_process_backends`` asserts both fixpoints are
bitwise-identical before any timing is trusted.

Writes ``results/shm_vs_processes.txt`` and enforces the tentpole's
acceptance criterion: >= 2x wall-clock speedup with 4 workers.  The
smoke variant is small enough for CI and only gates "shm beats
processes at all".
"""

from __future__ import annotations

import pytest
from conftest import write_result

from repro.bench.engines import compare_process_backends
from repro.bench.ledger import make_ledger, write_ledger
from repro.bench.report import render_table

pytestmark = pytest.mark.slow

BENCH_N = 1 << 21
BENCH_SUPERSTEPS = 6
BENCH_THREADS = 4
REQUIRED_SPEEDUP = 2.0

SMOKE_N = 1 << 18
SMOKE_SUPERSTEPS = 3


def _rows(stats):
    fmt = lambda x: f"{x:,.2f}"  # noqa: E731 - local column formatter
    return [
        {
            "backend": "processes (pickled slabs)",
            "ms/superstep": fmt(stats["old_ms_per_superstep"]),
            "payload B/superstep": f"{int(stats['old_payload_bytes']):,}",
            "speedup": "1.00x",
        },
        {
            "backend": "shm (planted arrays)",
            "ms/superstep": fmt(stats["new_ms_per_superstep"]),
            "payload B/superstep": f"{int(stats['new_payload_bytes']):,}",
            "speedup": f"{stats['speedup']:.2f}x",
        },
    ]


def _ledger(name, stats, n, seed, notes):
    return make_ledger(
        name,
        graph={"name": f"slab-relax-{n}", "vertices": n, "edges": 0,
               "objectives": 1},
        engine="shm",
        workers=BENCH_THREADS,
        wall_seconds={
            "processes_per_superstep": stats["old_ms_per_superstep"] / 1e3,
            "shm_per_superstep": stats["new_ms_per_superstep"] / 1e3,
        },
        derived={
            "speedup": stats["speedup"],
            "processes_payload_bytes": stats["old_payload_bytes"],
            "shm_payload_bytes": stats["new_payload_bytes"],
        },
        seed=seed,
        notes=notes,
    )


def test_shm_smoke_beats_processes(bench_seed, results_dir):
    """CI smoke gate: shm must beat ProcessEngine even on a small graph."""
    stats = compare_process_backends(
        n=SMOKE_N, supersteps=SMOKE_SUPERSTEPS,
        threads=BENCH_THREADS, seed=bench_seed,
    )
    write_ledger(results_dir, _ledger(
        "shm_vs_processes_smoke", stats, SMOKE_N, bench_seed,
        f"{SMOKE_SUPERSTEPS} supersteps of float64 slab relaxation; "
        "smoke gate: speedup > 1",
    ))
    assert stats["new_payload_bytes"] < 4096, (
        "shm dispatch payload should be index-only"
    )
    assert stats["speedup"] > 1.0, (
        f"shm slower than ProcessEngine: {stats['speedup']:.2f}x"
    )


def test_shm_vs_processes(results_dir, bench_seed):
    """Full acceptance run: >= 2x over ProcessEngine with 4 workers."""
    stats = compare_process_backends(
        n=BENCH_N, supersteps=BENCH_SUPERSTEPS,
        threads=BENCH_THREADS, seed=bench_seed,
    )
    header = (
        f"shm vs processes: n={BENCH_N:,} float64 slab relaxation, "
        f"{BENCH_SUPERSTEPS} supersteps, {BENCH_THREADS} workers "
        f"(seed {bench_seed})\n"
        "same kernel, same spans, bitwise-identical result; the margin "
        "is per-superstep pickling\n\n"
    )
    table = render_table(
        _rows(stats),
        ["backend", "ms/superstep", "payload B/superstep", "speedup"],
    )
    write_result(results_dir, "shm_vs_processes.txt", header + table + "\n")
    write_ledger(results_dir, _ledger(
        "shm_vs_processes", stats, BENCH_N, bench_seed,
        f"{BENCH_SUPERSTEPS} supersteps of float64 slab relaxation; "
        f"gate: speedup >= {REQUIRED_SPEEDUP}",
    ))
    assert stats["speedup"] >= REQUIRED_SPEEDUP, (
        f"shm speedup {stats['speedup']:.2f}x below the "
        f"{REQUIRED_SPEEDUP}x acceptance gate"
    )
