"""Table 2 — Networks in Our Test Suite.

Regenerates the dataset inventory: paper sizes next to the stand-in
sizes this reproduction sweeps (see DESIGN.md §2 for the substitution
rationale).  The timed kernel is dataset generation itself, which is
also the fixture cost every other benchmark pays.
"""

import pytest

from conftest import write_result
from repro.bench import render_table, table2_rows
from repro.bench.datasets import DATASETS, load_dataset


def test_table2_report(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_rows(), rounds=1, iterations=1
    )
    text = render_table(
        rows,
        [
            "name",
            "family",
            "paper_vertices",
            "paper_edges",
            "standin_vertices",
            "standin_edges",
            "standin_avg_degree",
        ],
    )
    write_result(results_dir, "table2_datasets.txt", text)
    assert len(rows) == 4


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_dataset_generation_benchmark(benchmark, name):
    """Time the stand-in generators (fresh build, no cache)."""
    spec = DATASETS[name]
    g = benchmark.pedantic(
        lambda: spec.build(k=2), rounds=1, iterations=1
    )
    assert g.num_vertices > 0
    # sparsity sanity: all four networks are sparse
    assert g.num_edges / g.num_vertices < 10
