"""Extension — incremental full-Pareto-front maintenance.

The paper's intro notes that parallel MOSP updating in dynamic
networks was unexplored and tracks a *single* MOSP; this repository
also implements the road not taken (``repro.mosp.DynamicParetoFront``):
keep every vertex's full front current under insertions, using the
paper's grouping idea at the label-set level.

This benchmark plays insertion batches and compares incremental front
propagation against a from-scratch Martins re-enumeration per batch.

Workload: a road-like grid with anticorrelated objectives (front sizes
in the thousands) under small local insertion batches — the regime
where most of the front survives each change.  Work is counted in
queue operations (pushes + settles) for both sides.

Expected shape: the incremental update's label work tracks the *churn*
(a quiet step costs hundreds of ops against tens of thousands for the
re-enumeration; a cascading shortcut narrows the gap), and the
maintained fronts stay exactly equal to the recomputed ones
(asserted).
"""

import numpy as np
import pytest

from conftest import write_result
from repro.bench import render_table
from repro.dynamic import local_insert_batch
from repro.graph import attach_random_weights, grid_road
from repro.mosp import DynamicParetoFront, martins

STEPS = 5
BATCH = 5


def run_comparison():
    g = grid_road(14, 14, k=2, seed=3)
    g = attach_random_weights(
        g, k=2, rng=np.random.default_rng(3), distribution="anticorrelated"
    )
    dpf = DynamicParetoFront(g, 0)
    rows = []
    for step in range(1, STEPS + 1):
        batch = local_insert_batch(g, BATCH, hops=3, seed=40 + step)
        batch.apply_to(g)
        stats = dpf.update(batch)

        full = martins(g, 0)
        # correctness: identical fronts
        for v in range(g.num_vertices):
            got = sorted(map(tuple, np.round(dpf.front(v), 9).tolist())) \
                if dpf.labels(v) else []
            ref = sorted(map(tuple, np.round(full.front(v), 9).tolist())) \
                if full.labels[v] else []
            assert got == ref

        incremental_work = stats.candidates + stats.accepted
        recompute_work = full.pops + full.inserts
        rows.append(
            {
                "step": step,
                "front labels": dpf.num_labels(),
                "accepted": stats.accepted,
                "incremental ops": incremental_work,
                "martins recompute": recompute_work,
                "ratio": f"{recompute_work / max(1, incremental_work):.1f}x",
            }
        )
    return rows


def test_dynamic_front_report(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["step", "front labels", "accepted", "incremental ops",
         "martins recompute", "ratio"],
    )
    write_result(results_dir, "dynamic_front.txt", text)

    # incremental beats recompute at every step on this workload
    for r in rows:
        assert float(r["ratio"].rstrip("x")) > 1.0, r
