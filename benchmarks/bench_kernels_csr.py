"""Old-vs-new kernel comparison — the vectorised CSR fast path.

The acceptance gate of the CSR kernel work: on a 2^16-vertex random
geometric graph (the paper's rgg-n family) with a dynamic insertion
batch, the vectorised Step-2 propagation
(:func:`repro.core.kernels.propagate_csr`) must be at least **2×**
faster than the reference pointer-chasing path, while producing the
exact same tree.  The measured margin (and the Step-1 comparison, plus
the one-off snapshot freeze cost the fast path amortises via
``append_batch``) is written to ``results/kernels_csr.txt``.
"""

import copy
import time

import numpy as np
import pytest

from conftest import write_result
from repro.bench.ledger import make_ledger, write_ledger
from repro.bench.report import render_table
from repro.core import SOSPTree, sosp_update
from repro.dynamic import random_insert_batch
from repro.graph.csr import CSRGraph
from repro.graph.generators import random_geometric

pytestmark = pytest.mark.slow

RGG_LOG_N = 16
BATCH_SIZE = 2048
REQUIRED_STEP2_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def rgg_state(bench_seed):
    g = random_geometric(2 ** RGG_LOG_N, k=1, seed=bench_seed)
    tree = SOSPTree.build(g, 0)
    batch = random_insert_batch(g, BATCH_SIZE, seed=bench_seed + 1)
    batch.apply_to(g)
    return g, tree, batch


def test_csr_kernels_vs_reference_step2(rgg_state, results_dir, bench_seed):
    g, tree, batch = rgg_state

    tree_ref = copy.deepcopy(tree)
    stats_ref = sosp_update(g, tree_ref, batch)

    tree_csr = copy.deepcopy(tree)
    t0 = time.perf_counter()
    snapshot = CSRGraph.from_digraph(g)
    freeze_s = time.perf_counter() - t0
    stats_csr = sosp_update(
        g, tree_csr, batch, use_csr_kernels=True, csr=snapshot
    )

    # differential gate first: speed means nothing if the answer drifts
    np.testing.assert_array_equal(tree_csr.dist, tree_ref.dist)
    tree_csr.certify(g)

    rows = []
    for step in ("step1", "step2"):
        ref_s = stats_ref.step_seconds[step]
        csr_s = stats_csr.step_seconds[step]
        rows.append({
            "step": step,
            "reference (s)": f"{ref_s:.4f}",
            "csr kernels (s)": f"{csr_s:.4f}",
            "speedup": f"{ref_s / csr_s:.2f}x",
        })
    rows.append({
        "step": "snapshot freeze (one-off)",
        "reference (s)": "-",
        "csr kernels (s)": f"{freeze_s:.4f}",
        "speedup": "-",
    })
    header = (
        f"rgg n=2^{RGG_LOG_N} ({g.num_vertices} vertices, "
        f"{g.num_edges} edges), insertion batch |B|={BATCH_SIZE}"
    )
    text = header + "\n" + render_table(
        rows, ["step", "reference (s)", "csr kernels (s)", "speedup"]
    )
    write_result(results_dir, "kernels_csr.txt", text)
    write_ledger(results_dir, make_ledger(
        "kernels_csr",
        graph={"name": f"rgg-2^{RGG_LOG_N}", "vertices": g.num_vertices,
               "edges": g.num_edges, "objectives": g.num_objectives},
        engine="serial",
        workers=1,
        wall_seconds={
            "step1_reference": stats_ref.step_seconds["step1"],
            "step1_csr": stats_csr.step_seconds["step1"],
            "step2_reference": stats_ref.step_seconds["step2"],
            "step2_csr": stats_csr.step_seconds["step2"],
            "snapshot_freeze": freeze_s,
        },
        derived={
            "step1_speedup": (stats_ref.step_seconds["step1"]
                              / stats_csr.step_seconds["step1"]),
            "step2_speedup": (stats_ref.step_seconds["step2"]
                              / stats_csr.step_seconds["step2"]),
        },
        seed=bench_seed,
        notes=f"insertion batch |B|={BATCH_SIZE}; gate: step2_speedup "
              f">= {REQUIRED_STEP2_SPEEDUP}",
    ))

    speedup = (
        stats_ref.step_seconds["step2"] / stats_csr.step_seconds["step2"]
    )
    assert speedup >= REQUIRED_STEP2_SPEEDUP, (
        f"Step-2 CSR kernel speedup {speedup:.2f}x below the "
        f"{REQUIRED_STEP2_SPEEDUP}x acceptance bar"
    )


def test_incremental_snapshot_amortises_freeze(rgg_state, bench_seed,
                                               results_dir):
    """Appending a batch to a live snapshot must cost far less than the
    O(|E|) re-freeze it replaces."""
    g, _tree, _batch = rgg_state
    snapshot = CSRGraph.from_digraph(g)
    batch = random_insert_batch(g, BATCH_SIZE, seed=bench_seed + 2)

    t0 = time.perf_counter()
    snapshot.append_batch(batch)
    append_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    CSRGraph.from_digraph(g)
    freeze_s = time.perf_counter() - t0

    assert snapshot.num_edges == g.num_edges + batch.num_insertions
    assert append_s * 10 < freeze_s, (
        f"append ({append_s:.4f}s) should be >=10x cheaper than a "
        f"re-freeze ({freeze_s:.4f}s)"
    )
