"""Extension — the conclusion's hybrid-parallelism prediction.

"Our current implementation updates the SOSP trees one after another
leading to longer execution times with a higher number of objectives.
A potential solution lies in adopting hybrid parallelism: distributing
tasks associated with each SOSP tree across processors, and then
utilizing shared-memory parallelism within each processor for the SOSP
update.  We foresee a reduction in execution time with this approach."

The recorded per-step traces make the prediction testable: with ``k``
objectives and ``T`` total threads,

- **sequential trees** (the paper's implementation):
  ``Σ_i replay(tree_i, T)`` — each update gets all T threads, one
  after another;
- **hybrid**: ``max_i replay(tree_i, T / k)`` — the updates run
  concurrently on ``T/k``-thread groups.

Expected shape: hybrid loses at low thread counts (splitting 2 threads
between 2 trees beats nothing) and wins once per-tree parallelism
saturates — the regime the conclusion anticipates for "a massive
number of parallel threads".
"""

import pytest

from conftest import write_result
from repro.bench import render_table
from repro.bench.runner import record_mosp_trace
from repro.parallel import replay_trace

DATASET = "roadNet-CA"
THREADS = (2, 4, 8, 16, 32, 64, 128)
OBJECTIVE_COUNTS = (2, 4)


def run_comparison(trace_cache, k):
    key = (DATASET, 100_000, k)
    if key not in trace_cache:
        trace_cache[key] = record_mosp_trace(DATASET, 100_000, k=k)
    tr = trace_cache[key]
    tree_traces = [
        tr.step_traces[f"sosp_update_{i}"] for i in range(k)
    ]
    rest = [
        ev
        for step in ("ensemble", "bellman_ford", "reassign")
        for ev in tr.step_traces[step]
    ]
    rows = []
    for t in THREADS:
        seq = sum(replay_trace(tt, t) for tt in tree_traces)
        # hybrid: min(k, t) concurrent groups of t//groups threads; if
        # there are more trees than groups they run in waves
        groups = min(k, t)
        per_group = max(1, t // groups)
        waves = -(-k // groups)  # ceil
        hyb = waves * max(replay_trace(tt, per_group) for tt in tree_traces)
        tail = replay_trace(rest, t)
        rows.append(
            {
                "k": k,
                "threads": t,
                "sequential ms": f"{1e3 * (seq + tail):.3f}",
                "hybrid ms": f"{1e3 * (hyb + tail):.3f}",
                "hybrid gain": f"{(seq + tail) / (hyb + tail):.2f}x",
            }
        )
    return rows


def test_hybrid_parallelism_report(benchmark, trace_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: [
            r for k in OBJECTIVE_COUNTS
            for r in run_comparison(trace_cache, k)
        ],
        rounds=1,
        iterations=1,
    )
    text = render_table(
        rows, ["k", "threads", "sequential ms", "hybrid ms", "hybrid gain"]
    )
    write_result(results_dir, "hybrid_parallelism.txt", text)

    def gains(k):
        return {
            r["threads"]: float(r["hybrid gain"].rstrip("x"))
            for r in rows if r["k"] == k
        }

    g2, g4 = gains(2), gains(4)
    # the conclusion's prediction: at high thread counts hybrid wins...
    assert g2[128] > 1.0
    assert g4[128] > g2[128]  # ...and more so with more objectives
    # and the gain grows with thread count (per-tree scaling saturates)
    assert g2[128] > g2[4]
