"""Figure 6 — Execution time of different algorithmic steps.

"Figure 6 shows the percentage of time taken for executing different
steps of the algorithm when the number of threads is fixed to 4. ...
Updating T1 and T2 takes the most time in the whole process, whereas
creation of the combined tree (merge operation) takes barely any time.
The Parallel Bellman-Ford algorithm finds an SOSP on a combined graph
of 2·(|V|−1) or fewer edges and consumes a small fraction of the total
time." (§4.2)

Expected shape: the two SOSP updates dominate on every dataset; the
merge + Bellman-Ford bucket is the minority share.  (At the paper's
scale the SOSP share reaches ~90%; at stand-in scale the combined
graph is relatively larger, so the SOSP share lands lower — the
ordering, which is the figure's claim, is preserved.  See
EXPERIMENTS.md.)
"""

import pytest

from conftest import write_result
from repro.bench import figure6_breakdown, render_table
from repro.bench.datasets import DATASETS


def test_figure6_report(benchmark, trace_cache, results_dir):
    breakdown = benchmark.pedantic(
        lambda: figure6_breakdown(
            datasets=sorted(DATASETS), threads=4, traces=trace_cache
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "dataset": ds,
            "SOSP1 %": f"{b['SOSP1']:.1f}",
            "SOSP2 %": f"{b['SOSP2']:.1f}",
            "Merge+BF %": f"{b['Merge+BF']:.1f}",
        }
        for ds, b in breakdown.items()
    ]
    text = render_table(rows, ["dataset", "SOSP1 %", "SOSP2 %", "Merge+BF %"])
    write_result(results_dir, "fig6_step_breakdown.txt", text)

    for ds, b in breakdown.items():
        assert b["SOSP1"] + b["SOSP2"] + b["Merge+BF"] == pytest.approx(100.0)
        # the figure's claim: the SOSP updates dominate the pipeline
        assert b["SOSP1"] + b["SOSP2"] > b["Merge+BF"], (
            f"{ds}: SOSP updates do not dominate ({b})"
        )


def test_step_breakdown_old_vs_new_kernels(bench_seed, results_dir):
    """Same Figure-6 pipeline, reference vs vectorised CSR kernels.

    Wall-clock per-step comparison of one ``mosp_update`` call with
    ``use_csr_kernels`` off and on (identical graph, trees, and batch).
    The kernel path must reproduce the exact per-objective SOSP
    distances and reach the same vertex set (combined-graph parent
    tie-breaks may legitimately differ); the per-step table lands in
    ``results/fig6_kernels_old_vs_new.txt``.
    """
    import copy

    import numpy as np

    from repro.bench.datasets import load_dataset
    from repro.core import SOSPTree, mosp_update
    from repro.dynamic import random_insert_batch

    g = load_dataset("roadNet-PA", k=2, fresh=True)
    trees_ref = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
    trees_csr = copy.deepcopy(trees_ref)
    batch = random_insert_batch(g, 1000, seed=bench_seed)
    batch.apply_to(g)

    ref = mosp_update(g, trees_ref, batch)
    fast = mosp_update(g, trees_csr, batch, use_csr_kernels=True)
    for t_r, t_c in zip(trees_ref, trees_csr):
        np.testing.assert_array_equal(t_c.dist, t_r.dist)
    np.testing.assert_array_equal(
        np.isfinite(fast.dist_vectors).all(axis=1),
        np.isfinite(ref.dist_vectors).all(axis=1),
    )

    rows = []
    for step in sorted(ref.step_seconds):
        old_s = ref.step_seconds[step]
        new_s = fast.step_seconds[step]
        rows.append({
            "step": step,
            "reference (s)": f"{old_s:.4f}",
            "csr kernels (s)": f"{new_s:.4f}",
            "speedup": f"{old_s / new_s:.2f}x" if new_s > 0 else "-",
        })
    text = render_table(
        rows, ["step", "reference (s)", "csr kernels (s)", "speedup"]
    )
    write_result(results_dir, "fig6_kernels_old_vs_new.txt", text)
