"""Figure 6 — Execution time of different algorithmic steps.

"Figure 6 shows the percentage of time taken for executing different
steps of the algorithm when the number of threads is fixed to 4. ...
Updating T1 and T2 takes the most time in the whole process, whereas
creation of the combined tree (merge operation) takes barely any time.
The Parallel Bellman-Ford algorithm finds an SOSP on a combined graph
of 2·(|V|−1) or fewer edges and consumes a small fraction of the total
time." (§4.2)

Expected shape: the two SOSP updates dominate on every dataset; the
merge + Bellman-Ford bucket is the minority share.  (At the paper's
scale the SOSP share reaches ~90%; at stand-in scale the combined
graph is relatively larger, so the SOSP share lands lower — the
ordering, which is the figure's claim, is preserved.  See
EXPERIMENTS.md.)
"""

import pytest

from conftest import write_result
from repro.bench import figure6_breakdown, render_table
from repro.bench.datasets import DATASETS


def test_figure6_report(benchmark, trace_cache, results_dir):
    breakdown = benchmark.pedantic(
        lambda: figure6_breakdown(
            datasets=sorted(DATASETS), threads=4, traces=trace_cache
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "dataset": ds,
            "SOSP1 %": f"{b['SOSP1']:.1f}",
            "SOSP2 %": f"{b['SOSP2']:.1f}",
            "Merge+BF %": f"{b['Merge+BF']:.1f}",
        }
        for ds, b in breakdown.items()
    ]
    text = render_table(rows, ["dataset", "SOSP1 %", "SOSP2 %", "Merge+BF %"])
    write_result(results_dir, "fig6_step_breakdown.txt", text)

    for ds, b in breakdown.items():
        assert b["SOSP1"] + b["SOSP2"] + b["Merge+BF"] == pytest.approx(100.0)
        # the figure's claim: the SOSP updates dominate the pipeline
        assert b["SOSP1"] + b["SOSP2"] > b["Merge+BF"], (
            f"{ds}: SOSP updates do not dominate ({b})"
        )
