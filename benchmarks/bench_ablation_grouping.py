"""Ablation — the paper's Step-0 grouping technique.

"Existing solutions [17] use multiple iterations to achieve correctness
in such scenarios.  Unlike this approach, we use a simple grouping
technique to avoid multiple iterations." (§3.1)

This ablation runs Algorithm 1 with grouping on and off (the off mode
emulates the prior-work iterate-to-fixpoint batch apply) and reports
the Step-1 profile: passes over the batch, batch-scan work
(|Ins| × passes), and end-to-end virtual time.

Expected shape: identical final trees; grouped Step 1 takes exactly
one pass while the ungrouped emulation takes several, multiplying the
batch-scan work by the pass count.  (Total relaxations across the
whole update can go either way — extra Step-1 passes pre-propagate
chained improvements that Step 2 would otherwise handle — which is
itself a finding worth the table.)
"""

import numpy as np
import pytest

from conftest import write_result
from repro.bench import render_table
from repro.bench.datasets import load_dataset
from repro.core import SOSPTree, sosp_update
from repro.dynamic import ChangeBatch, random_insert_batch
from repro.parallel import SimulatedEngine, replay_trace

DATASET = "roadNet-PA"


def chained_batch(g, size, seed):
    """A batch whose insertions chain (worst case for the ungrouped
    fixpoint): half random, half forming low-weight paths through
    random hubs, so each pass unlocks the next link."""
    rng = np.random.default_rng(seed)
    base = random_insert_batch(g, size // 2, seed=seed)
    hubs = rng.integers(0, g.num_vertices, size=size // 2 + 1)
    chain = ChangeBatch.insertions(
        [
            (int(hubs[i]), int(hubs[i + 1]),
             tuple([0.5] * g.num_objectives))
            for i in range(size // 2)
            if hubs[i] != hubs[i + 1]
        ]
    )
    return ChangeBatch.concat(base, chain)


def run_ablation():
    rows = []
    for mode, use_grouping in (("grouped", True), ("ungrouped", False)):
        g = load_dataset(DATASET, k=1, fresh=True)
        tree = SOSPTree.build(g, 0)
        batch = chained_batch(g, 800, seed=5)
        batch.apply_to(g)
        eng1 = SimulatedEngine(threads=1, record_trace=True)
        stats = sosp_update(g, tree, batch, engine=eng1,
                            use_grouping=use_grouping)
        rows.append(
            {
                "mode": mode,
                "step1 passes": stats.step1_passes,
                "step1 scan work": batch.num_insertions * stats.step1_passes,
                "step2 iterations": stats.iterations,
                "total relaxations": stats.relaxations,
                "ms @1T": f"{1e3 * replay_trace(eng1.trace, 1):.2f}",
                "ms @16T": f"{1e3 * replay_trace(eng1.trace, 16):.2f}",
                "dist checksum": f"{np.nansum(np.where(np.isfinite(tree.dist), tree.dist, 0)):.3f}",
            }
        )
    return rows


def test_grouping_ablation_report(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["mode", "step1 passes", "step1 scan work", "step2 iterations",
         "total relaxations", "ms @1T", "ms @16T", "dist checksum"],
    )
    write_result(results_dir, "ablation_grouping.txt", text)

    grouped, ungrouped = rows
    # identical final trees
    assert grouped["dist checksum"] == ungrouped["dist checksum"]
    # the paper's claim: grouping removes the multi-pass batch apply
    assert grouped["step1 passes"] == 1
    assert ungrouped["step1 passes"] >= 2
    assert ungrouped["step1 scan work"] >= 2 * grouped["step1 scan work"]
