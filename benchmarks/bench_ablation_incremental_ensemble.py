"""Ablation — the paper's "Probable Optimization" (§3.2).

"Initially the algorithm needs to compute the SOSP tree in the combined
graph from scratch.  Later the algorithm can use the SOSP tree computed
in E_t ... to update the SOSP tree."

This ablation plays the same insertion stream through both Step-3
strategies and compares the combined-graph stage (ensemble diff/build +
SOSP-on-ensemble) across time steps:

- **scratch**: `mosp_update` — rebuilds the ensemble and runs a fresh
  frontier Bellman-Ford each step;
- **incremental**: `IncrementalMOSP` — patches the warm ensemble graph
  and repairs its SOSP tree with the fully dynamic Algorithm 1.

The stream uses *local* insertions (endpoints a short walk apart):
incremental maintenance pays exactly when the per-objective trees
churn on a region, not globally — under the teleport generator both
variants rebuild nearly everything and tie (that regime is covered by
Figure 4).  Expected shape: identical ensemble-tree distances; the
incremental variant's combined-graph stage (diff + repair) is a
multiple cheaper than rebuild + fresh Bellman-Ford, because the diff
is scoped to the vertices Algorithm 1 actually touched.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.bench import render_table
from repro.bench.datasets import load_dataset
from repro.core import IncrementalMOSP, SOSPTree, mosp_update
from repro.dynamic import local_insert_batch
from repro.parallel import SimulatedEngine
from repro.sssp import frontier_bellman_ford

DATASET = "roadNet-PA"
STEPS = 5
BATCH = 150


def run_ablation():
    g_inc = load_dataset(DATASET, k=2, fresh=True)
    g_scr = g_inc.copy()

    eng_inc = SimulatedEngine(threads=4)
    eng_scr = SimulatedEngine(threads=4)
    inc = IncrementalMOSP(g_inc, 0, engine=eng_inc)
    trees = [SOSPTree.build(g_scr, 0, objective=i) for i in range(2)]

    rows = []
    cum_inc = cum_scr = 0.0
    for step in range(1, STEPS + 1):
        batch = local_insert_batch(g_inc, BATCH, hops=3, seed=100 + step)
        batch.apply_to(g_inc)
        batch.apply_to(g_scr)

        r_inc = inc.update(batch)
        r_scr = mosp_update(g_scr, trees, batch, engine=eng_scr)

        # correctness: identical combined-graph distances
        dist_scr, _ = frontier_bellman_ford(r_scr.ensemble.csr, 0)
        np.testing.assert_allclose(
            inc.ensemble_tree.dist, dist_scr, rtol=1e-9
        )

        stage = ("ensemble", "bellman_ford", "reassign")
        inc_ms = 1e3 * sum(r_inc.step_virtual_seconds[s] for s in stage)
        scr_ms = 1e3 * sum(r_scr.step_virtual_seconds[s] for s in stage)
        cum_inc += inc_ms
        cum_scr += scr_ms
        rows.append(
            {
                "step": step,
                "scratch stage ms": f"{scr_ms:.3f}",
                "incremental stage ms": f"{inc_ms:.3f}",
                "speedup": f"{scr_ms / inc_ms:.2f}x",
            }
        )
    rows.append(
        {
            "step": "total",
            "scratch stage ms": f"{cum_scr:.3f}",
            "incremental stage ms": f"{cum_inc:.3f}",
            "speedup": f"{cum_scr / cum_inc:.2f}x",
        }
    )
    return rows


def test_incremental_ensemble_report(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        rows,
        ["step", "scratch stage ms", "incremental stage ms", "speedup"],
    )
    write_result(results_dir, "ablation_incremental_ensemble.txt", text)

    total = rows[-1]
    assert float(total["speedup"].rstrip("x")) > 1.3, total
