"""Ablation — dynamic vs static loop scheduling (§4's design choice).

"Each group of changed edges is processed by each shared-memory
thread, which is scheduled dynamically."

Step-2 tasks cost each frontier vertex's in-degree, so the skew of the
superstep tracks the degree distribution.  Dynamic chunking rebalances
skew at the cost of shared-counter grabs; static pre-splitting is
grab-free but eats the imbalance.  This ablation records one
SOSP-update execution on each of two topologies and replays it under
both policies:

- **road** (roadNet-PA stand-in, degree ≈ uniform 2-4): virtually no
  skew — static's lower dispatch overhead makes it marginally
  *faster*, i.e. dynamic scheduling is not a free win;
- **scale-free** (preferential attachment, heavy-tailed degrees up to
  hundreds): hub tasks dominate blocks — dynamic wins clearly in the
  compute-bound range (the gap closes again at very high thread counts
  where both policies collapse onto the barrier cost).

Together they justify the paper's choice: update workloads on general
graphs cannot assume road-like uniformity, and dynamic scheduling is
the robust default.
"""

import pytest

from conftest import write_result
from repro.bench import render_table
from repro.bench.runner import record_mosp_trace
from repro.core import SOSPTree, sosp_update
from repro.dynamic import random_insert_batch
from repro.graph import preferential_attachment
from repro.parallel import SimulatedEngine, replay_trace

THREADS = (2, 4, 8, 16, 32, 64)


def record_scalefree_trace():
    g = preferential_attachment(20_000, m_per_vertex=2, k=1, seed=5)
    tree = SOSPTree.build(g, 0)
    batch = random_insert_batch(g, 600, seed=6)
    batch.apply_to(g)
    eng = SimulatedEngine(threads=1, record_trace=True)
    sosp_update(g, tree, batch, engine=eng)
    return list(eng.trace or [])


def run_ablation(trace_cache):
    key = ("roadNet-PA", 100_000)
    if key not in trace_cache:
        trace_cache[key] = record_mosp_trace("roadNet-PA", 100_000)
    traces = {
        "road": trace_cache[key].trace,
        "scale-free": record_scalefree_trace(),
    }
    rows = []
    for name, trace in traces.items():
        for t in THREADS:
            dyn = 1e3 * replay_trace(trace, t, schedule="dynamic")
            sta = 1e3 * replay_trace(trace, t, schedule="static")
            rows.append(
                {
                    "topology": name,
                    "threads": t,
                    "dynamic ms": f"{dyn:.3f}",
                    "static ms": f"{sta:.3f}",
                    "static/dynamic": f"{sta / dyn:.2f}x",
                }
            )
    return rows


def test_scheduling_ablation_report(benchmark, trace_cache, results_dir):
    rows = benchmark.pedantic(
        lambda: run_ablation(trace_cache), rounds=1, iterations=1
    )
    text = render_table(
        rows,
        ["topology", "threads", "dynamic ms", "static ms",
         "static/dynamic"],
    )
    write_result(results_dir, "ablation_scheduling.txt", text)

    ratio = {
        (r["topology"], r["threads"]):
            float(r["static/dynamic"].rstrip("x"))
        for r in rows
    }
    # road: near-uniform tasks, the policies are within a few percent
    assert 0.9 <= ratio[("road", 64)] <= 1.1
    # scale-free: dynamic never loses and wins clearly in the
    # compute-bound mid-range (at very high T both collapse onto the
    # barrier cost, shrinking the gap again)
    sf = [ratio[("scale-free", t)] for t in THREADS]
    assert all(v >= 1.0 for v in sf)
    assert max(sf) > 1.1
