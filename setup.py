"""Setup shim.

Kept so legacy editable installs (``pip install -e . --no-use-pep517``)
work on environments whose setuptools lacks the ``wheel`` package
required by PEP 660 editable builds. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
