"""Tests for repro.graph.analysis."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph import DiGraph, erdos_renyi, grid_road, path_graph
from repro.graph.analysis import (
    bfs_hops,
    degree_statistics,
    estimate_effective_diameter,
    graph_summary,
    largest_wcc_fraction,
    weakly_connected_components,
)


class TestBFS:
    def test_path_graph_hops(self):
        g = path_graph(5, seed=0)
        assert bfs_hops(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        assert bfs_hops(g, 0).tolist() == [0, 1, -1]

    def test_direction_respected(self):
        g = path_graph(3, seed=0)
        assert bfs_hops(g, 2).tolist() == [-1, -1, 0]

    def test_bad_source(self):
        with pytest.raises(VertexError):
            bfs_hops(DiGraph(2), 7)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_against_networkx(self, seed):
        g = erdos_renyi(40, 150, seed=seed)
        h = nx.DiGraph(
            (u, v) for u, v, _ in g.edges()
        )
        h.add_nodes_from(range(40))
        ref = nx.single_source_shortest_path_length(h, 0)
        hops = bfs_hops(g, 0)
        for v in range(40):
            assert hops[v] == ref.get(v, -1)


class TestComponents:
    def test_two_islands(self):
        g = DiGraph(5)
        g.add_edge(0, 1, 1.0)
        g.add_edge(3, 4, 1.0)
        comps = weakly_connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2], [3, 4]]

    def test_direction_ignored(self):
        g = DiGraph(3)
        g.add_edge(1, 0, 1.0)
        g.add_edge(1, 2, 1.0)
        assert len(weakly_connected_components(g)) == 1

    def test_largest_first(self):
        g = DiGraph(6)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(4, 5, 1.0)
        comps = weakly_connected_components(g)
        assert len(comps[0]) == 3

    def test_fraction(self):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        assert largest_wcc_fraction(g) == 0.5
        assert largest_wcc_fraction(DiGraph(0)) == 0.0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_against_networkx(self, seed):
        g = erdos_renyi(30, 40, seed=seed)
        h = nx.DiGraph((u, v) for u, v, _ in g.edges())
        h.add_nodes_from(range(30))
        ours = sorted(
            tuple(sorted(c)) for c in weakly_connected_components(g)
        )
        ref = sorted(
            tuple(sorted(c)) for c in nx.weakly_connected_components(h)
        )
        assert ours == ref


class TestDegreeStats:
    def test_star(self):
        g = DiGraph(4)
        for v in (1, 2, 3):
            g.add_edge(0, v, 1.0)
        stats = degree_statistics(g)
        assert stats["mean"] == pytest.approx(0.75)
        assert stats["max"] == 3
        assert stats["sinks"] == pytest.approx(0.75)

    def test_empty(self):
        assert degree_statistics(DiGraph(0))["mean"] == 0.0


class TestDiameter:
    def test_path_diameter(self):
        g = path_graph(20, seed=0)
        d = estimate_effective_diameter(g, samples=20, quantile=1.0)
        assert d == 19.0

    def test_grid_scales_with_side(self):
        small = estimate_effective_diameter(grid_road(5, 5, seed=0,
                                                      drop_fraction=0.0))
        big = estimate_effective_diameter(grid_road(15, 15, seed=0,
                                                    drop_fraction=0.0))
        assert big > small

    def test_empty_graph(self):
        assert estimate_effective_diameter(DiGraph(0)) == 0.0
        assert estimate_effective_diameter(DiGraph(3)) == 0.0


class TestSummary:
    def test_keys_and_sanity(self):
        g = grid_road(6, 6, seed=1, k=2)
        s = graph_summary(g)
        assert s["vertices"] == 36
        assert s["objectives"] == 2
        assert 0 < s["avg_out_degree"] < 5
        assert 0 < s["largest_wcc_fraction"] <= 1.0
        assert s["effective_diameter"] > 0
