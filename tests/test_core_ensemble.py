"""Tests for the combined/ensemble graph (Algorithm 2, Step 2)."""

import numpy as np
import pytest

from repro.core import SOSPTree, build_ensemble
from repro.core.priorities import budget_driven_priorities, normalize_priorities
from repro.errors import AlgorithmError
from repro.graph import DiGraph, erdos_renyi
from repro.parallel import SimulatedEngine


def two_tree_fixture():
    """A graph whose two objectives produce different SOSP trees with
    one shared edge."""
    g = DiGraph(4, k=2)
    g.add_edge(0, 1, (1.0, 1.0))    # shared by both trees
    g.add_edge(1, 2, (1.0, 9.0))    # tree 0 only
    g.add_edge(1, 3, (9.0, 1.0))    # tree 1 only
    g.add_edge(3, 2, (9.0, 1.0))    # tree 1 only
    g.add_edge(2, 3, (1.0, 9.0))    # tree 0 only
    trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
    return g, trees


class TestBalancedWeights:
    def test_shared_edge_weight_1_unique_weight_2(self):
        g, trees = two_tree_fixture()
        ens = build_ensemble(trees)
        # k=2: shared edge -> k-x+1 = 1; unique edge -> 2
        assert ens.occurrences[(0, 1)] == 2
        csr = ens.csr
        for u, v, w in csr.edges():
            x = ens.occurrences[(u, v)]
            assert w[0] == 2 - x + 1

    def test_edge_set_is_union_of_trees(self):
        g, trees = two_tree_fixture()
        ens = build_ensemble(trees)
        expected = set(trees[0].tree_edges()) | set(trees[1].tree_edges())
        got = {(u, v) for u, v, _ in ens.csr.edges()}
        assert got == expected

    def test_identical_trees_all_weight_one(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        ens = build_ensemble(trees)
        for _, _, w in ens.csr.edges():
            assert w[0] == 1.0

    def test_three_objectives(self):
        g = DiGraph(3, k=3)
        g.add_edge(0, 1, (1.0, 1.0, 9.0))
        g.add_edge(0, 2, (9.0, 9.0, 1.0))
        g.add_edge(2, 1, (1.0, 1.0, 1.0))
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(3)]
        ens = build_ensemble(trees)
        # edge (0,1) is the tree edge of objectives 0 and 1 -> x=2 -> w=2
        assert ens.occurrences[(0, 1)] == 2
        weights = {(u, v): w[0] for u, v, w in ens.csr.edges()}
        assert weights[(0, 1)] == 3 - 2 + 1


class TestWeightingSchemes:
    def test_unit_weights(self):
        g, trees = two_tree_fixture()
        ens = build_ensemble(trees, weighting="unit")
        assert all(w[0] == 1.0 for _, _, w in ens.csr.edges())

    def test_priority_weights(self):
        g, trees = two_tree_fixture()
        ens = build_ensemble(trees, weighting="priority",
                             priorities=(4.0, 1.0))
        weights = {(u, v): w[0] for u, v, w in ens.csr.edges()}
        # tree-0-only edge (1,2): weight 1/4; tree-1-only edge (1,3): 1
        assert weights[(1, 2)] == pytest.approx(0.25)
        assert weights[(1, 3)] == pytest.approx(1.0)
        # shared edge takes the smallest (highest-priority) weight
        assert weights[(0, 1)] == pytest.approx(0.25)

    def test_priority_requires_priorities(self):
        g, trees = two_tree_fixture()
        with pytest.raises(AlgorithmError):
            build_ensemble(trees, weighting="priority")

    def test_bad_priorities_rejected(self):
        g, trees = two_tree_fixture()
        with pytest.raises(AlgorithmError):
            build_ensemble(trees, weighting="priority", priorities=(1.0,))
        with pytest.raises(AlgorithmError):
            build_ensemble(trees, weighting="priority",
                           priorities=(1.0, -2.0))

    def test_unknown_weighting_rejected(self):
        g, trees = two_tree_fixture()
        with pytest.raises(AlgorithmError):
            build_ensemble(trees, weighting="harmonic")


class TestValidation:
    def test_empty_trees_rejected(self):
        with pytest.raises(AlgorithmError):
            build_ensemble([])

    def test_mismatched_sources_rejected(self):
        g = erdos_renyi(10, 40, k=2, seed=0)
        t0 = SOSPTree.build(g, 0, objective=0)
        t1 = SOSPTree.build(g, 1, objective=1)
        with pytest.raises(AlgorithmError):
            build_ensemble([t0, t1])

    def test_mismatched_sizes_rejected(self):
        g1 = erdos_renyi(10, 30, seed=0)
        g2 = erdos_renyi(12, 30, seed=0)
        t0 = SOSPTree.build(g1, 0)
        t1 = SOSPTree.build(g2, 0)
        with pytest.raises(AlgorithmError):
            build_ensemble([t0, t1])

    def test_unreachable_vertices_excluded(self):
        g = DiGraph(4, k=2)
        g.add_edge(0, 1, (1.0, 1.0))  # vertices 2, 3 unreachable
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        ens = build_ensemble(trees)
        assert {(u, v) for u, v, _ in ens.csr.edges()} == {(0, 1)}

    def test_engine_charges_work(self):
        g, trees = two_tree_fixture()
        eng = SimulatedEngine(threads=4)
        build_ensemble(trees, engine=eng)
        assert eng.virtual_time > 0


class TestPriorityHelpers:
    def test_normalize(self):
        p = normalize_priorities([1.0, 3.0])
        assert p.tolist() == [0.25, 0.75]

    def test_normalize_rejects_nonpositive(self):
        with pytest.raises(AlgorithmError):
            normalize_priorities([1.0, 0.0])
        with pytest.raises(AlgorithmError):
            normalize_priorities([])

    def test_budget_pressure(self):
        # energy (obj 1) at 95% of budget -> its priority dominates
        p = budget_driven_priorities([30.0, 95.0], [None, 100.0])
        assert p[0] == 1.0
        assert p[1] > 2.0

    def test_under_half_budget_no_pressure(self):
        p = budget_driven_priorities([10.0, 40.0], [None, 100.0])
        assert p.tolist() == [1.0, 1.0]

    def test_bad_budget_rejected(self):
        with pytest.raises(AlgorithmError):
            budget_driven_priorities([1.0], [0.0])
        with pytest.raises(AlgorithmError):
            budget_driven_priorities([1.0, 2.0], [None])
        with pytest.raises(AlgorithmError):
            budget_driven_priorities([-1.0], [1.0])
