"""Cross-partition differential-oracle matrix (partitioned engine).

Every cell of (shards ∈ {2, 3, 4}) × (inner pool ∈ {serial, shm}) ×
(update ∈ {sosp, mosp, mixed}) must land on the **identical** distance
fixpoint as the serial reference and the single-pool shared-memory
backend — bitwise, because every relaxation is a monotone ``min`` over
the same float64 path sums regardless of how the waves are sliced into
shard-local supersteps.  Parent pointers may tie-break differently
across partition counts (the exchange reorders equally optimal waves),
so parents are certified against the graph (equal path *cost*) rather
than compared pointwise.

One shm cell runs with real worker dispatch (``threads=2,
min_dispatch_items=1``); the rest run the shared-memory pools inline
(``threads=1``) — same planting/mirroring machinery, no spawn cost per
example.  Engines are module-scoped, like the single-pool differential
suite: the partitioned plan cache and pool reuse across examples is
itself part of what's being certified.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import SOSPTree, apply_mixed_batch, mosp_update, sosp_update
from repro.graph.csr import CSRGraph
from repro.parallel import PartitionedEngine, SharedMemoryEngine
from tests.test_engines_differential import (
    graph_and_batches,
    graph_and_mixed_batches,
)
from tests.test_fully_dynamic_mixed import assert_matches_dijkstra

pytestmark = pytest.mark.slow

ENGINES = [
    PartitionedEngine(threads=1, partitions=2, inner="serial"),
    PartitionedEngine(threads=1, partitions=3, inner="serial"),
    PartitionedEngine(threads=1, partitions=4, inner="serial"),
    PartitionedEngine(threads=2, partitions=2, inner="shm",
                      inner_options={"min_dispatch_items": 1}),
    PartitionedEngine(threads=1, partitions=3, inner="shm"),
    PartitionedEngine(threads=1, partitions=4, inner="shm"),
    # the single-pool shm backend the ISSUE matrix pins as a co-oracle
    SharedMemoryEngine(threads=2, min_dispatch_items=1),
]


def _label(engine) -> str:
    if isinstance(engine, PartitionedEngine):
        return f"partitioned[{engine.partitions}x{engine.inner}]"
    return engine.name


def teardown_module(module) -> None:
    for e in ENGINES:
        closer = getattr(e, "close", None)
        if callable(closer):
            closer()


def _run_sosp(engine, graph, batches):
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.append_batch(batch)
        sosp_update(g, tree, batch, engine=engine,
                    use_csr_kernels=True, csr=snapshot)
    return g, tree


def _run_mixed(engine, graph, batches):
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.apply_batch(batch)
        apply_mixed_batch(g, tree, batch, engine=engine,
                          use_csr_kernels=True, csr=snapshot)
    return g, tree


@settings(max_examples=15, deadline=None)
@given(data=graph_and_batches())
def test_sosp_matrix_equals_serial_oracle(data):
    graph, batches = data
    _, reference = _run_sosp(None, graph, batches)
    for engine in ENGINES:
        g_final, tree = _run_sosp(engine, graph, batches)
        np.testing.assert_array_equal(
            tree.dist, reference.dist,
            err_msg=f"sosp dist diverged on {_label(engine)}",
        )
        tree.certify(g_final)


@settings(max_examples=15, deadline=None)
@given(data=graph_and_mixed_batches())
def test_mixed_matrix_equals_serial_oracle(data):
    graph, batches = data
    _, reference = _run_mixed(None, graph, batches)
    for engine in ENGINES:
        g_final, tree = _run_mixed(engine, graph, batches)
        np.testing.assert_array_equal(
            tree.dist, reference.dist,
            err_msg=f"mixed dist diverged on {_label(engine)}",
        )
        tree.certify(g_final)
    # the serial reference itself is pinned to a from-scratch Dijkstra
    assert_matches_dijkstra(_run_mixed(None, graph, batches)[0], reference)


@settings(max_examples=8, deadline=None)
@given(data=graph_and_batches(k=2, max_n=10, max_batches=1))
def test_mosp_matrix_equals_serial_oracle(data):
    """MOSP with a live batch: Step 1 runs once per objective through
    the partitioned driver (sharing one snapshot), and both the
    per-objective distance fixpoints and the combined cost vectors must
    agree bitwise with serial on every cell."""
    graph, batch = data[0], data[1][0]
    runs = []
    for engine in [None] + ENGINES:
        g = copy.deepcopy(graph)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        snapshot = CSRGraph.from_digraph(g)
        batch.apply_to(g)
        snapshot.append_batch(batch)
        r = mosp_update(g, trees, batch, engine=engine,
                        use_csr_kernels=True, csr=snapshot)
        for t in trees:
            t.certify(g)
        runs.append((engine, trees, r.dist_vectors.copy()))
    _, ref_trees, ref_dv = runs[0]
    for engine, trees, dv in runs[1:]:
        for i, (t, ref) in enumerate(zip(trees, ref_trees)):
            np.testing.assert_array_equal(
                t.dist, ref.dist,
                err_msg=f"objective {i} dist diverged on {_label(engine)}",
            )
        np.testing.assert_array_equal(
            dv, ref_dv,
            err_msg=f"MOSP cost vectors diverged on {_label(engine)}",
        )


@settings(max_examples=10, deadline=None)
@given(data=graph_and_mixed_batches())
def test_own_snapshot_path_equals_serial_oracle(data):
    """``csr=None``: the engine maintains its own incremental snapshot
    (and shard plan) across a batch sequence."""
    graph, batches = data
    _, reference = _run_mixed(None, graph, batches)
    engine = PartitionedEngine(threads=1, partitions=3, inner="serial")
    try:
        g = copy.deepcopy(graph)
        tree = SOSPTree.build(g, 0)
        for batch in batches:
            batch.apply_to(g)
            apply_mixed_batch(g, tree, batch, engine=engine)
        np.testing.assert_array_equal(tree.dist, reference.dist)
        tree.certify(g)
    finally:
        engine.close()


@settings(max_examples=10, deadline=None)
@given(data=graph_and_mixed_batches())
def test_edgecut_refined_partition_equals_serial_oracle(data):
    """The greedy min-edgecut partitioner changes the shard shapes,
    never the fixpoint."""
    graph, batches = data
    _, reference = _run_mixed(None, graph, batches)
    engine = PartitionedEngine(
        threads=1, partitions=3, inner="serial", partition_mode="edgecut"
    )
    try:
        g_final, tree = _run_mixed(engine, graph, batches)
        np.testing.assert_array_equal(tree.dist, reference.dist)
        tree.certify(g_final)
    finally:
        engine.close()
