"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_road,
    layered_dag,
    path_graph,
    preferential_attachment,
    random_geometric,
    road_like,
    star_graph,
)
from repro.graph.validation import validate_digraph


class TestGridRoad:
    def test_full_grid_edge_count(self):
        # no drops, no diagonals: (r*(c-1) + c*(r-1)) undirected streets
        g = grid_road(4, 5, seed=0, drop_fraction=0.0, diagonal_fraction=0.0)
        undirected = 4 * 4 + 5 * 3
        assert g.num_edges == 2 * undirected

    def test_unidirectional(self):
        g = grid_road(3, 3, seed=0, drop_fraction=0.0,
                      diagonal_fraction=0.0, bidirectional=False)
        assert g.num_edges == 3 * 2 + 3 * 2

    def test_determinism(self):
        a = grid_road(6, 6, seed=42)
        b = grid_road(6, 6, seed=42)
        assert sorted((u, v) for u, v, _ in a.edges()) == sorted(
            (u, v) for u, v, _ in b.edges()
        )

    def test_different_seed_differs(self):
        a = grid_road(6, 6, seed=1, drop_fraction=0.3)
        b = grid_road(6, 6, seed=2, drop_fraction=0.3)
        assert sorted((u, v) for u, v, _ in a.edges()) != sorted(
            (u, v) for u, v, _ in b.edges()
        )

    def test_sparsity_in_road_range(self):
        g = grid_road(40, 40, seed=0)
        avg_deg = g.num_edges / g.num_vertices
        assert 2.0 < avg_deg < 4.5  # road networks: sparse

    def test_validates(self):
        validate_digraph(grid_road(10, 7, seed=5, k=2))

    def test_bad_dims_rejected(self):
        with pytest.raises(GraphError):
            grid_road(0, 5)


class TestRoadLike:
    def test_vertex_count_near_target(self):
        g = road_like(1000, seed=0)
        assert 950 <= g.num_vertices <= 1100

    def test_multi_objective(self):
        g = road_like(100, k=3, seed=0)
        assert g.num_objectives == 3

    def test_bad_n_rejected(self):
        with pytest.raises(GraphError):
            road_like(0)


class TestRandomGeometric:
    def test_degree_near_target(self):
        g = random_geometric(2000, seed=0, target_degree=6.6)
        avg = g.num_edges / g.num_vertices
        # bidirectional doubling: directed average degree ~ 6.6
        assert 4.0 < avg < 10.0

    def test_explicit_radius_all_connected(self):
        g = random_geometric(20, radius=2.0, seed=0)
        # radius covers the whole unit square -> complete graph
        assert g.num_edges == 20 * 19

    def test_zero_radius_no_edges(self):
        g = random_geometric(50, radius=1e-9, seed=0)
        assert g.num_edges == 0

    def test_symmetry_when_bidirectional(self):
        g = random_geometric(200, seed=1)
        edges = {(u, v) for u, v, _ in g.edges()}
        assert all((v, u) in edges for (u, v) in edges)

    def test_determinism(self):
        a = random_geometric(300, seed=9)
        b = random_geometric(300, seed=9)
        assert a.num_edges == b.num_edges


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(30, 100, seed=0)
        assert g.num_edges == 100

    def test_no_self_loops_or_duplicates(self):
        g = erdos_renyi(20, 150, seed=1)
        seen = set()
        for u, v, _ in g.edges():
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_dense_request(self):
        g = erdos_renyi(6, 25, seed=0)  # 25 of max 30 -> dense path
        assert g.num_edges == 25

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(3, 7)


class TestOtherFamilies:
    def test_preferential_attachment_connected_ish(self):
        g = preferential_attachment(50, m_per_vertex=2, seed=0)
        assert g.num_edges > 0
        validate_digraph(g)
        # hubs exist: max degree well above the mean
        degs = [g.out_degree(v) for v in range(50)]
        assert max(degs) >= 3 * (sum(degs) / len(degs)) / 2

    def test_layered_dag_structure(self):
        g = layered_dag(4, 5, seed=0, fanout=2)
        assert g.num_vertices == 20
        for u, v, _ in g.edges():
            assert v // 5 == u // 5 + 1  # edges go layer -> next layer

    def test_path_graph(self):
        g = path_graph(5, seed=0)
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(3, 4)

    def test_cycle_graph(self):
        g = cycle_graph(4, seed=0)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_complete_graph(self):
        g = complete_graph(4, seed=0)
        assert g.num_edges == 12

    def test_star_graph(self):
        g = star_graph(5, seed=0)
        assert g.num_edges == 8
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 4

    def test_single_vertex_families(self):
        assert path_graph(1).num_edges == 0
        assert complete_graph(1).num_edges == 0
        assert star_graph(1).num_edges == 0


class TestWeightsAttached:
    @pytest.mark.parametrize("gen", [
        lambda: grid_road(5, 5, k=2, seed=0),
        lambda: random_geometric(100, k=2, seed=0),
        lambda: erdos_renyi(20, 50, k=2, seed=0),
    ])
    def test_weights_positive_finite(self, gen):
        g = gen()
        for _, _, eid in g.edges():
            w = g.weight(eid)
            assert np.all(np.isfinite(w))
            assert np.all(w > 0)
            assert w.shape == (2,)
