"""Phase-taxonomy attribution of merged traces (``repro.obs report``)."""

import io
import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    Tracer,
    attribute_trace,
    export_chrome_trace,
    export_jsonl,
    load_trace,
    render_text,
    use_tracer,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.report import _classify


def _row(name, span_id, parent_id, start, end, thread=1, attrs=None):
    return {
        "name": name, "span_id": span_id, "parent_id": parent_id,
        "start": start, "end": end, "elapsed": end - start,
        "thread": thread, "attrs": dict(attrs or {}),
    }


def _demo_rows():
    """A miniature update-demo trace: driver > setup/step2 > workers."""
    return [
        _row("cli.update-demo", 1, None, 0.0, 10.0),
        _row("setup.load", 2, 1, 0.0, 2.0),
        _row("sosp_update.step2", 3, 1, 2.0, 9.0),
        _row("superstep", 4, 3, 3.0, 8.0,
             attrs={"phase": "sosp_update.step2", "threads": 2}),
        _row("worker.slab", 5, 4, 3.5, 5.5, thread=100,
             attrs={"worker": "100"}),
        _row("worker.slab", 6, 4, 3.5, 6.5, thread=200,
             attrs={"worker": "200"}),
    ]


class TestClassify:
    @pytest.mark.parametrize("name,bucket", [
        ("cli.update-demo", "driver"),
        ("bench.record_mosp_trace", "driver"),
        ("setup.build_tree", "setup"),
        ("teardown.close", "teardown"),
        ("sosp_update.step1", "step1"),
        ("sosp_update_mixed.invalidate", "step1"),
        ("mosp_update.sosp_update_0", "step1"),
        ("sosp_update_mixed.seed", "seed"),
        ("sosp_update.step2", "step2"),
        ("sosp_update_mixed.propagate", "step2"),
        ("mosp_update.ensemble", "step2"),
        ("partitioned.superstep", "step2"),
        ("mosp_update.bellman_ford", "step3"),
        ("mosp_update.reassign", "step3"),
        ("partitioned.exchange", "exchange"),
        ("dynamic_front.update", "front"),
        ("superstep", None),
        ("unheard.of", None),
    ])
    def test_name_to_bucket(self, name, bucket):
        assert _classify(name) == bucket


class TestAttribution:
    def test_self_time_never_double_counts(self):
        report = attribute_trace(_demo_rows())
        assert report["wall_seconds"] == pytest.approx(10.0)
        phases = report["phases"]
        # driver = root self-time: 10 - (2 + 7) = 1
        assert phases["driver"] == pytest.approx(1.0)
        assert phases["setup"] == pytest.approx(2.0)
        # step2 = parent self-time (7 - 5) + the superstep's worker
        # window (3.5..6.5 = 3 of its 5s self-time)
        assert phases["step2"] == pytest.approx(2.0 + 3.0)
        # the uncovered 2s of the superstep is dispatch cost
        assert phases["dispatch"] == pytest.approx(2.0)
        assert report["coverage"] == pytest.approx(1.0)
        assert report["spans"] == 4
        assert report["worker_spans"] == 2

    def test_worker_summary(self):
        report = attribute_trace(_demo_rows())
        w = report["workers"]
        assert w["count"] == 2
        assert w["busy_seconds"] == pytest.approx(5.0)
        # 2 lanes x 3s window - 5s busy
        assert w["idle_seconds"] == pytest.approx(1.0)
        assert w["max_skew_seconds"] == pytest.approx(1.0)

    def test_unknown_spans_land_in_other_and_cut_coverage(self):
        rows = [
            _row("cli.demo", 1, None, 0.0, 10.0),
            _row("mystery", 2, 1, 0.0, 4.0),
        ]
        report = attribute_trace(rows)
        assert report["phases"]["other"] == pytest.approx(4.0)
        assert report["coverage"] == pytest.approx(0.6)

    def test_nameless_children_inherit_parent_bucket(self):
        rows = [
            _row("sosp_update.step1", 1, None, 0.0, 4.0),
            _row("unheard.of", 2, 1, 1.0, 3.0),
        ]
        report = attribute_trace(rows)
        assert report["phases"]["step1"] == pytest.approx(4.0)
        assert report["phases"]["other"] == 0.0

    def test_concurrent_children_do_not_oversubtract(self):
        # two shard threads overlap inside one parent: interval-union
        # child coverage keeps the parent's self-time exact
        rows = [
            _row("cli.demo", 1, None, 0.0, 10.0),
            _row("partitioned.superstep", 2, 1, 1.0, 7.0, thread=2),
            _row("partitioned.superstep", 3, 1, 2.0, 8.0, thread=3),
        ]
        report = attribute_trace(rows)
        # children cover [1, 8] -> driver self-time is 3, not 10-12
        assert report["phases"]["driver"] == pytest.approx(3.0)
        assert report["phases"]["step2"] == pytest.approx(12.0)
        assert report["coverage"] == pytest.approx(1.0)

    def test_empty_trace(self):
        report = attribute_trace([])
        assert report["wall_seconds"] == 0.0
        assert report["coverage"] == 0.0


class TestLoadTrace:
    def _spans(self):
        t = Tracer(recording=True)
        with use_tracer(t):
            with t.span("cli.demo"):
                with t.span("setup.load"):
                    pass
        return t.drain()

    def test_jsonl_and_chrome_agree(self, tmp_path):
        spans = self._spans()
        jl = tmp_path / "trace.jsonl"
        ch = tmp_path / "trace.json"
        export_jsonl(spans, jl)
        export_chrome_trace(spans, ch)
        r_jl = attribute_trace(load_trace(jl))
        r_ch = attribute_trace(load_trace(ch))
        assert r_jl["spans"] == r_ch["spans"] == 2
        assert r_jl["wall_seconds"] == pytest.approx(
            r_ch["wall_seconds"], abs=1e-6
        )
        assert r_ch["coverage"] == pytest.approx(1.0)

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"no": "trace"}))
        with pytest.raises(ReproError):
            load_trace(path)


class TestReportCommand:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_jsonl(_demo_rows(), path)
        return path

    def test_text_and_json_output(self, tmp_path):
        path = self._write_trace(tmp_path)
        out = io.StringIO()
        assert obs_main(["report", str(path)], out=out) == 0
        text = out.getvalue()
        assert "phase attribution" in text
        assert "step2" in text and "dispatch" in text
        out = io.StringIO()
        assert obs_main(["report", str(path), "--json"], out=out) == 0
        doc = json.loads(out.getvalue())
        assert doc["coverage"] == pytest.approx(1.0)

    def test_min_coverage_gate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_jsonl([
            _row("cli.demo", 1, None, 0.0, 10.0),
            _row("mystery", 2, 1, 0.0, 9.0),
        ], path)
        out = io.StringIO()
        assert obs_main(
            ["report", str(path), "--min-coverage", "0.95"], out=out
        ) == 1
        assert "coverage gate FAILED" in out.getvalue()

    def test_render_text_mentions_workers(self):
        text = render_text(attribute_trace(_demo_rows()), source="x")
        assert "2 workers" in text
        assert "max skew" in text
