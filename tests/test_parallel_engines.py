"""Unit tests for the parallel engines (all six backends)."""

import numpy as np
import pytest

from repro.errors import EngineError, OwnershipViolation
from repro.parallel import (
    CostModel,
    OwnershipTracker,
    PartitionedEngine,
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    SimulatedEngine,
    ThreadEngine,
    WorkMeter,
    resolve_engine,
)

# importable by spawn workers (closures are not; the process backends
# degrade to their documented serial fallback on the closure tests)
from tests._shm_support import square

ALL_ENGINES = [
    SerialEngine(),
    ThreadEngine(threads=3),
    ProcessEngine(threads=2, min_items_per_process=1),
    SharedMemoryEngine(threads=2, min_dispatch_items=1),
    SimulatedEngine(threads=4),
    PartitionedEngine(threads=1, partitions=2, inner="serial"),
]


def teardown_module(module) -> None:
    for e in ALL_ENGINES:
        closer = getattr(e, "close", None)
        if callable(closer):
            closer()


@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.name)
class TestEngineSemantics:
    def test_results_in_order(self, engine):
        assert engine.parallel_for(list(range(20)), square) == [
            i * i for i in range(20)
        ]

    def test_empty_items(self, engine):
        assert engine.parallel_for([], square) == []

    def test_single_item(self, engine):
        assert engine.parallel_for([7], square) == [49]

    def test_side_effects_applied_exactly_once(self, engine):
        hits = [0] * 50

        def bump(i):
            # intentional shared write: this test *is* the check that
            # engines apply side effects exactly once per item
            hits[i] += 1  # repro: noqa(R001)
            return i

        engine.parallel_for(list(range(50)), bump)
        assert hits == [1] * 50

    def test_map_reduce(self, engine):
        total = engine.map_reduce(
            list(range(10)), square, lambda acc, r: acc + r, 0
        )
        assert total == sum(i * i for i in range(10))

    def test_exception_propagates(self, engine):
        def boom(i):
            if i == 13:
                raise ValueError("boom")
            return i

        with pytest.raises(ValueError):
            engine.parallel_for(list(range(30)), boom)


class TestResolveEngine:
    # checked=False pins the raw engine so these identity tests hold
    # even when REPRO_CHECKED_ENGINES is exported (the checked-tier1 CI
    # job); wrapping behaviour is covered by test_checked_engine.py.
    def test_none_is_serial(self):
        assert resolve_engine(None, checked=False).name == "serial"

    def test_by_name(self):
        e = resolve_engine("simulated", threads=8, checked=False)
        assert e.name == "simulated"
        assert e.threads == 8

    def test_instance_passthrough(self):
        e = SimulatedEngine(threads=2)
        assert resolve_engine(e, checked=False) is e

    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError):
            resolve_engine("gpu")

    def test_garbage_rejected(self):
        with pytest.raises(EngineError):
            resolve_engine(42)

    def test_zero_threads_rejected(self):
        with pytest.raises(EngineError):
            ThreadEngine(threads=0)


class TestThreadEngine:
    def test_really_uses_pool(self):
        import threading

        names = set()

        def record(i):
            # intentional shared write: observing which pool threads ran
            names.add(threading.current_thread().name)  # repro: noqa(R001)
            return i

        with ThreadEngine(threads=4, chunk_size=1) as e:
            e.parallel_for(list(range(200)), record)
        assert any("repro-worker" in n for n in names)

    def test_close_idempotent(self):
        e = ThreadEngine(threads=2)
        e.parallel_for([1, 2, 3], square)
        e.close()
        e.close()
        # pool is recreated on demand
        assert e.parallel_for([2], square) == [4]


class TestSimulatedEngine:
    def test_clock_advances(self):
        e = SimulatedEngine(threads=4)
        assert e.virtual_time == 0.0
        e.parallel_for(list(range(100)), square)
        assert e.virtual_time > 0.0
        assert e.supersteps == 1
        assert e.tasks_executed == 100

    def test_reset_clock(self):
        e = SimulatedEngine(threads=4)
        e.parallel_for([1, 2], square)
        e.reset_clock()
        assert e.virtual_time == 0.0
        assert e.supersteps == 0

    def test_more_threads_never_slower_balanced_load(self):
        times = []
        for t in (1, 2, 4, 8, 16):
            e = SimulatedEngine(threads=t, chunk_size=1)
            e.parallel_for([1] * 1024, square, work_fn=lambda i, r: 100.0)
            times.append(e.virtual_time)
        # balanced load: strictly improving until parallelism saturates
        assert times[0] > times[1] > times[2] > times[3]

    def test_speedup_bounded_by_threads(self):
        e1 = SimulatedEngine(threads=1)
        e1.parallel_for([1] * 256, square, work_fn=lambda i, r: 50.0)
        e8 = SimulatedEngine(threads=8)
        e8.parallel_for([1] * 256, square, work_fn=lambda i, r: 50.0)
        speedup = e1.virtual_time / e8.virtual_time
        assert 1.0 < speedup <= 8.0

    def test_skewed_load_limits_speedup(self):
        # one giant task dominates: speedup must collapse toward 1
        costs = [10000.0] + [1.0] * 63
        e1 = SimulatedEngine(threads=1, chunk_size=1)
        e1.parallel_for(list(range(64)), square,
                        work_fn=lambda i, r: costs[i])
        e64 = SimulatedEngine(threads=64, chunk_size=1)
        e64.parallel_for(list(range(64)), square,
                         work_fn=lambda i, r: costs[i])
        assert e1.virtual_time / e64.virtual_time < 1.5

    def test_barrier_cost_grows_with_threads(self):
        cm = CostModel()
        assert cm.barrier_cost(1) == 0.0
        assert cm.barrier_cost(64) > cm.barrier_cost(2) > 0.0

    def test_many_tiny_supersteps_scale_badly(self):
        # barrier-dominated regime: 64 threads barely beat 4
        def run(t):
            e = SimulatedEngine(threads=t)
            for _ in range(200):
                e.parallel_for([1, 2], square, work_fn=lambda i, r: 1.0)
            return e.virtual_time

        t4, t64 = run(4), run(64)
        assert t64 > t4  # more threads = pure barrier overhead here

    def test_charge_serial_work(self):
        e = SimulatedEngine(threads=4)
        e.charge(1000.0)
        assert e.virtual_time == pytest.approx(
            1000.0 * e.cost.seconds_per_unit
        )

    def test_negative_charge_rejected(self):
        with pytest.raises(EngineError):
            SimulatedEngine().charge(-1.0)

    def test_determinism(self):
        def run():
            e = SimulatedEngine(threads=6)
            rng = np.random.default_rng(3)
            costs = rng.uniform(1, 100, size=500)
            e.parallel_for(
                list(range(500)), square, work_fn=lambda i, r: costs[i]
            )
            return e.virtual_time

        assert run() == run()

    def test_default_work_is_one_unit(self):
        e = SimulatedEngine(threads=1)
        e.parallel_for([1, 2, 3], square)
        assert e.work_units == 3.0


class TestWorkMeter:
    def test_accumulate_and_reset(self):
        m = WorkMeter()
        m.add(5)
        m.add(2.5)
        assert m.total == 7.5
        assert m.reset() == 7.5
        assert m.total == 0.0


class TestOwnershipTracker:
    def test_single_writer_ok(self):
        t = OwnershipTracker()
        t.record_write(1, task=0)
        t.record_write(1, task=0)  # same task may rewrite
        t.record_write(2, task=1)
        assert t.writes == 3

    def test_double_writer_raises(self):
        t = OwnershipTracker()
        t.record_write(1, task=0)
        with pytest.raises(OwnershipViolation):
            t.record_write(1, task=1)

    def test_superstep_resets_ownership(self):
        t = OwnershipTracker()
        t.record_write(1, task=0)
        t.next_superstep()
        t.record_write(1, task=1)  # legal in a new superstep
        assert t.supersteps == 1
