"""R001 fixture: superstep tasks mutating closed-over shared state.

Every write here races under a real-thread backend; the linter must
flag each untracked mutation site.
"""


def untracked_subscript_write(engine, items, dist):
    def task(v):
        dist[v] = 0.0  # shared ndarray, no tracker
        return v

    return engine.parallel_for(items, task)


def untracked_method_mutation(engine, items):
    seen = set()

    def task(v):
        seen.add(v)  # closed-over set mutated in a superstep
        return v

    return engine.parallel_for(items, task)


def untracked_inline_lambda(engine, items, hits):
    return engine.map_reduce(
        items,
        lambda i: hits.append(i) or i,
        lambda acc, r: acc + r,
        0,
    )


def untracked_assigned_lambda(engine, items, parent):
    task = lambda v: parent.update({v: -1})  # noqa: E731 (fixture)
    return engine.parallel_for(items, task)
