"""R000 fixture: stale suppressions that no longer hide anything.

Both comments below suppressed real findings once; the violations were
fixed but the comments stayed behind, so each now matches no finding
and must be reported as stale.
"""


def fixed_long_ago(x: int) -> int:
    return x + 1  # repro: noqa(R003)


def blanket_left_behind() -> None:
    pass  # repro: noqa
