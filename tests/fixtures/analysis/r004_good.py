"""R004 fixture: fully annotated public API; exempt shapes."""

from typing import Any, List


def relax_edges(graph: Any, frontier: List[int], dist: Any) -> Any:
    return dist


def variadic(*args: int, **kwargs: float) -> int:
    return len(args) + len(kwargs)


def _private_helper(graph, frontier):  # private: exempt
    return frontier


class PublicTree:
    def rebuild(self, graph: Any) -> Any:  # self needs no annotation
        def inner(x):  # nested: exempt
            return x

        return inner(graph)


class _PrivateImpl:
    def anything_goes(self, graph):  # private namespace: exempt
        return graph
