"""R004 fixture: public API missing type annotations."""


def relax_edges(graph, frontier, dist):  # no annotations at all
    return dist


def partial(u: int, v) -> float:  # 'v' unannotated
    return float(u + v)


def no_return(u: int, v: int):  # missing return annotation
    return u + v


class PublicTree:
    def rebuild(self, graph):  # method params unannotated
        return graph
