"""R005 fixture: sanctioned timing — spans and virtual clocks."""

import time

from repro.obs.tracer import get_tracer


def profile(fn):
    with get_tracer().span("fixture.profile") as sp:
        fn()
    return sp.elapsed


def simulated(engine, items, task):
    engine.parallel_for(items, task)
    return engine.virtual_time


def backoff():
    time.sleep(0.0)  # sleeping is not reading a clock
