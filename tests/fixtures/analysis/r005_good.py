"""R005 fixture: monotonic/virtual clocks for profiling."""

import time


def profile(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def simulated(engine, items, task):
    engine.parallel_for(items, task)
    return engine.virtual_time


def backoff():
    time.sleep(0.0)  # sleeping is not reading the wall clock
