"""R007 fixture: spawn-safe dispatch — module-level tasks, valid refs."""

from typing import Any, List

from repro.parallel.api import SlabTask
from repro.parallel.backends.processes import ProcessEngine
from repro.parallel.backends.threads import ThreadEngine


def double(x: int) -> int:
    return x * 2


def dispatch_module_level(items: List[int]) -> List[int]:
    eng = ProcessEngine(threads=2)
    return eng.parallel_for(items, double)


def closures_fine_on_threads(items: List[int]) -> List[int]:
    results: List[int] = []

    def task(x: int) -> int:
        return x + len(results)

    eng = ThreadEngine(threads=2)  # in-process: closures pickle-free
    return eng.parallel_for(items, task)


def good_ref(engine: Any) -> None:
    engine.parallel_for_slabs(4, SlabTask(
        ref="r007_good:double",
        arrays=("a",),
    ))
