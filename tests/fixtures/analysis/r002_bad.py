"""R002 fixture: hidden global RNG state."""

import random

import numpy as np
from random import shuffle


def scramble(xs):
    shuffle(xs)  # the import itself is the violation
    return xs


def legacy_numpy_draw(n):
    np.random.seed(0)
    return np.random.uniform(size=n)


def stdlib_draw():
    return random.random()
