"""R006 fixture: write-set drift between slab kernels and declarations.

Three dispatch sites, three distinct drifts: a direct undeclared store,
an undeclared store one helper-call down, and a declared array the
kernel never touches (a stale ``writes=`` entry).
"""

from typing import Any, Mapping

from repro.parallel.api import SlabTask


def undeclared_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    arrays["dist"][lo:hi] = 0.0
    arrays["marked"][lo:hi] = 1  # mutated, but not declared below
    return hi - lo


def _bump_aux(aux: Any, lo: int, hi: int) -> None:
    aux[lo:hi] += 1  # the helper does the undeclared mutating


def helper_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    arrays["dist"][lo:hi] = 0.0
    _bump_aux(arrays["aux"], lo, hi)
    return hi - lo


def never_writes_marked_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    arrays["dist"][lo:hi] = 0.0
    return hi - lo


def phantom_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    return hi - lo


def dispatch(engine: Any) -> None:
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_bad:undeclared_kernel",
        arrays=("dist", "marked"),
        writes=("dist",),
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_bad:helper_kernel",
        arrays=("dist", "aux"),
        writes=("dist",),
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_bad:never_writes_marked_kernel",
        arrays=("dist", "marked"),
        writes=("dist", "marked"),
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_bad:phantom_kernel",
        arrays=("dist",),
        writes=("ghost",),
    ))
