"""R007 fixture: unpicklable callables handed to process-backed engines.

Spawn workers re-import tasks by qualified name; every dispatch here
hands them something that has no importable name.
"""

from typing import Any, List

from repro.parallel.api import SlabTask, resolve_engine
from repro.parallel.backends.processes import ProcessEngine
from repro.parallel.backends.shm import SharedMemoryEngine


def dispatch_inline_lambda(items: List[int]) -> List[int]:
    eng = ProcessEngine(threads=2)
    return eng.parallel_for(items, lambda x: x + 1)


def dispatch_closure(items: List[int]) -> List[int]:
    scale = 3

    def task(x: int) -> int:
        return x * scale

    eng = ProcessEngine(threads=2)
    return eng.parallel_for(items, task)


def dispatch_lambda_binding(items: List[int]) -> List[int]:
    task = lambda x: x - 1  # noqa: E731 (fixture)
    with SharedMemoryEngine(threads=2) as eng:
        return eng.parallel_for(items, task)


def dispatch_resolved(items: List[int]) -> List[int]:
    eng = resolve_engine("processes", threads=2)
    return eng.parallel_for(items, lambda x: x)


class Driver:
    def step(self, x: int) -> int:
        return x

    def run(self, items: List[int]) -> List[int]:
        eng = SharedMemoryEngine(threads=2)
        return eng.parallel_for(items, self.step)  # bound method


def bad_refs(engine: Any) -> None:
    engine.parallel_for_slabs(4, SlabTask(
        ref="no-colon-here",  # not module:qualname
        arrays=("a",),
    ))
    engine.parallel_for_slabs(4, SlabTask(
        ref="r007_bad:missing_fn",  # no such function in this module
        arrays=("a",),
    ))
