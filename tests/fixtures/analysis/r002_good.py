"""R002 fixture: explicit, seedable generators threaded as parameters."""

import numpy as np
from numpy.random import Generator, default_rng
from random import Random


def make_rng(seed):
    return np.random.default_rng(seed)


def draw(rng: Generator, n: int):
    return rng.uniform(size=n)


def stdlib_instance(seed):
    return Random(seed).random()


def module_constructor(seed):
    return default_rng(seed)
