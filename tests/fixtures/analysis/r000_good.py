"""R000 fixture: live suppressions — every comment hides a real finding."""

from typing import Callable, Optional


def swallow(fn: Callable[[], int]) -> Optional[int]:
    try:
        return fn()
    except:  # repro: noqa(R003)
        return None
