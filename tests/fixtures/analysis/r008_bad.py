"""R008 fixture: exchange paths that break boundary monotonicity.

The partitioned engine may publish a ghost distance only when it
strictly improves the destination shard's current label; anything else
can resurrect a stale longer path after a deletion. Writes to arrays
the exchange does not own are plain races.
"""

from typing import Any


def exchange_unguarded(run: Any, tracer: Any, lids: Any, dv: Any) -> None:
    with tracer.span("fixture.exchange", shard=0):
        run.dist[lids] = dv  # published with no improvement check


def exchange_nonstrict(run: Any, tracer: Any, lids: Any, dv: Any) -> None:
    with tracer.span("fixture.exchange", shard=1):
        better = dv <= run.dist[lids]  # ties must NOT republish
        run.dist[lids[better]] = dv[better]


def emit(run: Any, cur: Any) -> None:
    run.ghost_buf[:] = cur  # exchange path writing non-exchange state
