"""R008 fixture: the sanctioned exchange shape — strict improvement,
exchange-owned state only."""

from typing import Any


def exchange_guarded(run: Any, tracer: Any, lids: Any, dv: Any) -> None:
    with tracer.span("fixture.exchange", shard=0):
        better = dv < run.dist[lids]  # strict: ties stay put
        tl = lids[better]
        run.dist[tl] = dv[better]
        run.marked[tl] = 1
        run.pending = tl


def emit(run: Any, cur: Any) -> None:
    imp = cur < run.bnd_sent
    run.bnd_sent[imp] = cur[imp]


def gather_results(dist: Any, gl: Any, changed: Any, run: Any) -> None:
    # not an exchange region: R008 has no opinion about this store
    dist[gl] = run.dist[changed]
