"""R006 fixture: declarations that exactly match kernel behaviour."""

from typing import Any, Mapping

from repro.parallel.api import SlabTask


def relax_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    arrays["dist"][lo:hi] = 0.0
    arrays["marked"][lo:hi] = 1
    return hi - lo


def _scale(view: Any, lo: int, hi: int) -> None:
    view[lo:hi] *= 2


def helper_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    _scale(arrays["dist"], lo, hi)  # helper write, duly declared
    return hi - lo


def span_sum(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> float:
    return float(arrays["w"][lo:hi].sum())


def dispatch(engine: Any) -> None:
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_good:relax_kernel",
        arrays=("dist", "marked", "w"),  # read-only 'w' needs no entry
        writes=("dist", "marked"),
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_good:helper_kernel",
        arrays=("dist",),
        writes=("dist",),
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_good:span_sum",
        arrays=("w",),
        writes=(),  # read-only kernel, declared as such
    ))
    engine.parallel_for_slabs(8, SlabTask(
        ref="r006_good:relax_kernel",
        arrays=("dist", "marked"),
        writes=None,  # unknown write-set: engine snapshots everything
    ))
