"""R001 fixture: superstep tasks that are race-free by construction.

Tasks either keep mutation local, return proposals for a sequential
merge, or register their writes with an OwnershipTracker.
"""


def local_state_only(engine, items):
    def task(v):
        acc = []
        acc.append(v * v)  # local list: not shared
        return sum(acc)

    return engine.parallel_for(items, task)


def returns_proposals(engine, items, dist):
    def task(v):
        return v, dist[v] + 1.0  # read-only on shared state

    results = engine.parallel_for(items, task)
    for v, d in results:  # sequential merge outside the superstep
        dist[v] = d
    return dist


def tracked_write(engine, items, dist, tracker):
    def task(item):
        task_id, v = item
        tracker.record_write(v, task_id)
        dist[v] = 0.0  # registered: single-writer invariant checkable
        return v

    return engine.parallel_for(list(enumerate(items)), task)
