"""R005 fixture: wall-clock time.time outside the bench harness."""

import time
from time import time as _  # the import alone is flagged


def stamp():
    return time.time()


def profile(fn):
    t0 = time.time()
    fn()
    return time.time() - t0
