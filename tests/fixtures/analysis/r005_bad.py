"""R005 fixture: direct clock reads outside repro/obs and repro/bench."""

import time
from time import perf_counter as _pc  # the import alone is flagged
from time import time as _  # the import alone is flagged


def stamp():
    return time.time()


def profile(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def tick():
    return time.monotonic()


def aliased():
    return _pc()
