"""R003 fixture: bare/overbroad except and silent swallowing."""


def bare_except(fn):
    try:
        return fn()
    except:  # catches KeyboardInterrupt, SystemExit, everything
        return None


def overbroad_no_reraise(fn):
    try:
        return fn()
    except Exception:
        return None  # hides unrelated failures


def silent_swallow(fn):
    try:
        return fn()
    except ValueError:
        pass  # error vanished without a trace
