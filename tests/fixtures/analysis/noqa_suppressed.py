"""Noqa fixture: every violation here carries a suppression comment,
so the whole file must lint clean under every rule."""

import time
from typing import Any, Callable, List, Mapping, Optional

from repro.parallel.api import SlabTask
from repro.parallel.backends.processes import ProcessEngine


def blanket(engine: Any, items: List[int], hits: List[int]) -> List[int]:
    def task(i):  # nested: exempt from R004
        hits[i] = 1  # repro: noqa
        return i

    return engine.parallel_for(items, task)


def targeted(fn: Callable[[], int]) -> Optional[int]:
    try:
        return fn()
    except:  # repro: noqa(R003)
        return None


def multi_code() -> float:
    return time.time()  # repro: noqa(R003, R005)


def undeclared_kernel(
    arrays: Mapping[str, Any], params: Mapping[str, Any], lo: int, hi: int,
) -> int:
    arrays["aux"][lo:hi] = 1
    return hi - lo


def dispatch_slab(engine: Any) -> None:
    engine.parallel_for_slabs(4, SlabTask(  # repro: noqa(R006)
        ref="noqa_suppressed:undeclared_kernel",
        arrays=("aux",),
        writes=(),
    ))


def dispatch_lambda(items: List[int]) -> List[int]:
    eng = ProcessEngine(threads=2)
    return eng.parallel_for(items, lambda x: x)  # repro: noqa(R007)


def emit(run: Any, cur: Any) -> None:
    run.dist[:] = cur  # repro: noqa(R008)
