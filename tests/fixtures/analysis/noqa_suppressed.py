"""Noqa fixture: every violation here carries a suppression comment,
so the whole file must lint clean under every rule."""

import time
from typing import Any, Callable, List, Optional


def blanket(engine: Any, items: List[int], hits: List[int]) -> List[int]:
    def task(i):  # nested: exempt from R004
        hits[i] = 1  # repro: noqa
        return i

    return engine.parallel_for(items, task)


def targeted(fn: Callable[[], int]) -> Optional[int]:
    try:
        return fn()
    except:  # repro: noqa(R003)
        return None


def multi_code() -> float:
    return time.time()  # repro: noqa(R003, R005)
