"""R003 fixture: narrow handlers that handle or re-raise."""

from repro.errors import EdgeError, GraphError


def narrow_with_fallback(fn, default):
    try:
        return fn()
    except EdgeError:
        return default  # narrow class, meaningful recovery


def broad_but_reraises(fn):
    try:
        return fn()
    except Exception as exc:
        raise GraphError(f"wrapped: {exc}") from exc


def narrow_with_logging(fn, log):
    try:
        return fn()
    except KeyError as exc:
        log.append(str(exc))
        raise
