"""Tests for incremental full-Pareto-front maintenance."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic import ChangeBatch, random_insert_batch
from repro.errors import AlgorithmError
from repro.graph import DiGraph, erdos_renyi
from repro.mosp import martins
from repro.mosp.dynamic_front import DynamicParetoFront
from repro.parallel import SerialEngine, SimulatedEngine, ThreadEngine


def fronts_equal(dpf, graph, source):
    ref = martins(graph, source)
    for v in range(graph.num_vertices):
        got = sorted(map(tuple, np.round(dpf.front(v), 9).tolist())) \
            if len(dpf.labels(v)) else []
        want = sorted(map(tuple, np.round(ref.front(v), 9).tolist())) \
            if ref.labels[v] else []
        assert got == want, f"vertex {v}: {got} != {want}"


class TestBasics:
    def test_initial_state_matches_martins(self):
        g = erdos_renyi(15, 60, k=2, seed=0)
        dpf = DynamicParetoFront(g, 0)
        fronts_equal(dpf, g, 0)

    def test_single_improving_insert(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (5.0, 5.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.insertions([(0, 1, (1.0, 9.0))])
        batch.apply_to(g)
        dpf.update(batch)
        assert sorted(map(tuple, dpf.front(1).tolist())) == [
            (1.0, 9.0), (5.0, 5.0)
        ]

    def test_dominating_insert_evicts(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (5.0, 5.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.insertions([(0, 1, (1.0, 1.0))])
        batch.apply_to(g)
        dpf.update(batch)
        assert dpf.front(1).tolist() == [[1.0, 1.0]]

    def test_noop_insert(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.insertions([(0, 1, (9.0, 9.0))])
        batch.apply_to(g)
        stats = dpf.update(batch)
        assert stats.accepted == 0
        assert dpf.front(1).tolist() == [[1.0, 1.0]]

    def test_connects_new_region(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        assert dpf.front(2).size == 0
        batch = ChangeBatch.insertions([(1, 2, (2.0, 3.0))])
        batch.apply_to(g)
        dpf.update(batch)
        assert dpf.front(2).tolist() == [[3.0, 4.0]]

    def test_self_loop_ignored(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.insertions([(1, 1, (0.5, 0.5))])
        batch.apply_to(g)
        dpf.update(batch)
        fronts_equal(dpf, g, 0)

    def test_unknown_mode_rejected(self):
        g = erdos_renyi(5, 15, k=2, seed=1)
        dpf = DynamicParetoFront(g, 0)
        with pytest.raises(AlgorithmError):
            dpf.update(ChangeBatch.insertions([]), mode="annealing")

    def test_paths_valid(self):
        g = erdos_renyi(12, 50, k=2, seed=2)
        dpf = DynamicParetoFront(g, 0)
        batch = random_insert_batch(g, 10, seed=3)
        batch.apply_to(g)
        dpf.update(batch)
        for v in range(12):
            for lab, path in zip(dpf.labels(v), dpf.paths(v)):
                assert path[0] == 0 and path[-1] == v


@pytest.mark.parametrize("engine", [
    None, SerialEngine(), ThreadEngine(threads=3),
    SimulatedEngine(threads=4),
], ids=lambda e: getattr(e, "name", "default"))
class TestEngines:
    def test_batch_update_matches_recompute(self, engine):
        g = erdos_renyi(15, 60, k=2, seed=4)
        dpf = DynamicParetoFront(g, 0, engine=engine)
        batch = random_insert_batch(g, 15, seed=5)
        batch.apply_to(g)
        stats = dpf.update(batch)
        fronts_equal(dpf, g, 0)
        assert stats.candidates >= stats.accepted


class TestStreams:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multiple_batches(self, seed):
        g = erdos_renyi(12, 40, k=2, seed=seed)
        dpf = DynamicParetoFront(g, 0)
        for step in range(3):
            batch = random_insert_batch(g, 8, seed=10 * seed + step)
            batch.apply_to(g)
            dpf.update(batch)
            fronts_equal(dpf, g, 0)

    def test_three_objectives(self):
        g = erdos_renyi(10, 35, k=3, seed=6)
        dpf = DynamicParetoFront(g, 0)
        batch = random_insert_batch(g, 10, seed=7)
        batch.apply_to(g)
        dpf.update(batch)
        fronts_equal(dpf, g, 0)


class TestDeletions:
    def test_delete_unique_path_empties_front(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.deletions([(1, 2)], k=2)
        batch.apply_to(g)
        stats = dpf.update(batch)
        assert dpf.front(2).size == 0
        assert stats.invalidated >= 1
        fronts_equal(dpf, g, 0)

    def test_delete_promotes_dominated_path(self):
        # the cheap route dominated the expensive one; deleting the
        # cheap route must resurrect the expensive one
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))   # cheap: (2, 2)
        g.add_edge(0, 2, (5.0, 5.0))   # dominated direct edge
        dpf = DynamicParetoFront(g, 0)
        assert dpf.front(2).tolist() == [[2.0, 2.0]]
        batch = ChangeBatch.deletions([(1, 2)], k=2)
        batch.apply_to(g)
        dpf.update(batch)
        assert dpf.front(2).tolist() == [[5.0, 5.0]]
        fronts_equal(dpf, g, 0)

    def test_delete_nonused_edge_noop(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        g.add_edge(0, 2, (9.0, 9.0))  # dominated, never a label hop
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.deletions([(0, 2)], k=2)
        batch.apply_to(g)
        stats = dpf.update(batch)
        assert stats.invalidated == 0
        fronts_equal(dpf, g, 0)

    def test_parallel_edge_survivor_keeps_label(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (3.0, 3.0))
        g.add_edge(0, 1, (3.0, 3.0))  # identical twin
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.deletions([(0, 1)], k=2)
        batch.apply_to(g)
        dpf.update(batch)
        assert dpf.front(1).tolist() == [[3.0, 3.0]]
        fronts_equal(dpf, g, 0)

    def test_cascading_invalidation(self):
        # a chain: deleting the first hop invalidates everything below
        g = DiGraph(5, k=2)
        for i in range(4):
            g.add_edge(i, i + 1, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.deletions([(0, 1)], k=2)
        batch.apply_to(g)
        stats = dpf.update(batch)
        assert stats.invalidated == 4
        for v in range(1, 5):
            assert dpf.front(v).size == 0
        fronts_equal(dpf, g, 0)

    def test_descendants_of_evicted_ancestors_found(self):
        """The hop-index regression case: an ancestor label is evicted
        by a later insertion, its descendant survives; deleting the
        ancestor's hop must still invalidate the descendant."""
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (5.0, 5.0))   # original hop (gets evicted)
        g.add_edge(1, 2, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        # insertion evicts the (5,5) label at vertex 1...
        ins = ChangeBatch.insertions([(0, 1, (1.0, 1.0))])
        ins.apply_to(g)
        dpf.update(ins)
        fronts_equal(dpf, g, 0)
        # ...now delete the NEW hop: the surviving front must fall back
        dele = ChangeBatch.deletions([(0, 1)], k=2)
        dele.apply_to(g)  # removes the (1,1) parallel edge (cheapest)
        dpf.update(dele)
        fronts_equal(dpf, g, 0)
        assert dpf.front(2).tolist() == [[6.0, 6.0]]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_deletion_batches(self, seed):
        from repro.dynamic import random_delete_batch

        g = erdos_renyi(12, 50, k=2, seed=seed)
        dpf = DynamicParetoFront(g, 0)
        batch = random_delete_batch(g, 10, seed=seed + 20)
        batch.apply_to(g)
        dpf.update(batch)
        fronts_equal(dpf, g, 0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_batches(self, seed):
        from repro.dynamic import random_mixed_batch

        g = erdos_renyi(12, 60, k=2, seed=seed)
        dpf = DynamicParetoFront(g, 0)
        for step in range(3):
            batch = random_mixed_batch(g, 10, insert_fraction=0.5,
                                       seed=seed * 7 + step)
            batch.apply_to(g)
            dpf.update(batch)
            fronts_equal(dpf, g, 0)


class TestProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_random_streams(self, seed):
        g = erdos_renyi(8, 25, k=2, seed=seed % 83)
        dpf = DynamicParetoFront(g, 0)
        for step in range(2):
            batch = random_insert_batch(g, 5, seed=seed + step)
            batch.apply_to(g)
            dpf.update(batch)
        fronts_equal(dpf, g, 0)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_fully_dynamic_streams(self, seed):
        from repro.dynamic import random_mixed_batch

        g = erdos_renyi(8, 30, k=2, seed=seed % 89)
        dpf = DynamicParetoFront(g, 0)
        for step in range(2):
            batch = random_mixed_batch(g, 6, insert_fraction=0.5,
                                       seed=seed + 31 * step)
            batch.apply_to(g)
            dpf.update(batch)
            fronts_equal(dpf, g, 0)
