"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.graph import DiGraph
from repro.graph.io import read_edge_list, write_edge_list


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def graph_file(tmp_path):
    g = DiGraph(4, k=2)
    g.add_edge(0, 1, (1.0, 4.0))
    g.add_edge(1, 2, (1.0, 4.0))
    g.add_edge(0, 2, (4.0, 1.0))
    g.add_edge(2, 3, (1.0, 1.0))
    p = tmp_path / "g.el"
    write_edge_list(g, p)
    return str(p)


class TestInfo:
    def test_exit_zero_and_mentions_paper(self):
        code, text = run(["info"])
        assert code == 0
        assert "3624062.3625134" in text
        assert "sosp_update" in text

    def test_reports_observability_build(self):
        code, text = run(["info"])
        assert code == 0
        assert "observability: tracer passive" in text
        assert "clock time.perf_counter" in text
        assert "jsonl" in text and "chrome-trace" in text
        assert "prometheus" in text

    def test_reports_worker_span_capability_per_backend(self):
        code, text = run(["info"])
        assert code == 0
        line = [ln for ln in text.splitlines()
                if ln.startswith("worker spans:")][0]
        assert "shm collected" in line
        assert "processes collected" in line
        assert "partitioned collected" in line
        assert "serial inline" in line
        assert "threads inline" in line


class TestGenerate:
    @pytest.mark.parametrize("family", ["road", "rgg", "er"])
    def test_families(self, family, tmp_path):
        out_file = tmp_path / "g.el"
        code, text = run(
            ["generate", family, str(out_file), "-n", "100", "--seed", "1"]
        )
        assert code == 0
        g = read_edge_list(out_file)
        assert g.num_vertices >= 100
        assert g.num_objectives == 2

    def test_er_edge_count(self, tmp_path):
        out_file = tmp_path / "g.el"
        run(["generate", "er", str(out_file), "-n", "50", "-m", "120"])
        assert read_edge_list(out_file).num_edges == 120


class TestSSSP:
    def test_summary(self, graph_file):
        code, text = run(["sssp", graph_file])
        assert code == 0
        assert "4/4 reachable" in text

    def test_path_output(self, graph_file):
        code, text = run(["sssp", graph_file, "--target", "3"])
        assert "0 -> 1 -> 2 -> 3" in text
        assert "distance: 3" in text

    def test_second_objective(self, graph_file):
        code, text = run(
            ["sssp", graph_file, "--target", "2", "--objective", "1"]
        )
        assert "0 -> 2" in text

    @pytest.mark.parametrize("algo", ["bellman_ford", "delta_stepping"])
    def test_algorithms(self, graph_file, algo):
        code, text = run(
            ["sssp", graph_file, "--target", "3", "--algorithm", algo]
        )
        assert code == 0 and "distance: 3" in text

    def test_missing_file_is_error(self):
        code, _ = run(["sssp", "/nonexistent.el"])
        assert code == 2

    def test_unreachable_target_is_error(self, tmp_path):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        p = tmp_path / "g.el"
        write_edge_list(g, p)
        code, _ = run(["sssp", str(p), "--target", "2"])
        assert code == 2


class TestMOSP:
    def test_balanced(self, graph_file):
        code, text = run(["mosp", graph_file, "--target", "3"])
        assert code == 0
        assert "path:" in text and "cost:" in text
        assert "objective 0 optimum" in text

    def test_priority(self, graph_file):
        code, text = run(
            ["mosp", graph_file, "--target", "2",
             "--weighting", "priority", "--priorities", "100", "1"]
        )
        assert code == 0
        assert "0 -> 1 -> 2" in text

    def test_simulated_engine(self, graph_file):
        code, _ = run(
            ["mosp", graph_file, "--target", "3",
             "--engine", "simulated", "--threads", "8"]
        )
        assert code == 0


class TestUpdateDemo:
    def test_synthetic_default(self):
        code, text = run(
            ["update-demo", "--steps", "2", "--batch-size", "10"]
        )
        assert code == 0
        assert "step 1:" in text and "step 2:" in text

    def test_from_file(self, tmp_path):
        g = DiGraph(20)
        for i in range(19):
            g.add_edge(i, i + 1, 1.0)
        p = tmp_path / "g.el"
        write_edge_list(g, p)
        code, text = run(
            ["update-demo", str(p), "--steps", "1", "--batch-size", "5"]
        )
        assert code == 0
        assert "20 vertices" in text

    def test_engine_selection(self):
        code, text = run(
            ["update-demo", "--steps", "1", "--batch-size", "5",
             "--engine", "threads", "--threads", "2"]
        )
        assert code == 0
        assert "engine: threads" in text

    def test_partitioned_engine_selection(self):
        # --threads 1 keeps the shard pools inline (no spawn) so the
        # demo stays fast; the partitioned path still shards the
        # snapshot and runs the exchange loop
        code, text = run(
            ["update-demo", "--steps", "1", "--batch-size", "5",
             "--engine", "partitioned", "--partitions", "2",
             "--threads", "1"]
        )
        assert code == 0
        assert "engine: partitioned" in text
        assert "csr kernels" in text


class TestObservabilityFlags:
    def test_update_demo_trace_is_valid_chrome_trace(self, tmp_path):
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        code, text = run(
            ["update-demo", "--steps", "2", "--batch-size", "10",
             "--trace", str(trace)]
        )
        assert code == 0
        assert f"trace events to {trace}" in text
        assert validate_chrome_trace(trace) == []

    def test_trace_spans_cover_steps_and_supersteps(self, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        run(["update-demo", "--steps", "1", "--batch-size", "10",
             "--engine", "threads", "--threads", "2",
             "--trace", str(trace)])
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"cli.update-demo", "sosp_update.step1",
                "sosp_update.step2", "superstep"} <= names
        by_id = {e["args"]["span_id"]: e for e in doc["traceEvents"]}
        for e in doc["traceEvents"]:
            if e["name"] != "superstep":
                continue
            parent = by_id[e["args"]["parent_id"]]
            assert parent["name"].startswith("sosp_update.step")
            assert "items" in e["args"]

    def test_jsonl_trace_variant(self, tmp_path):
        from repro.obs import read_jsonl

        trace = tmp_path / "spans.jsonl"
        code, text = run(
            ["update-demo", "--steps", "1", "--batch-size", "5",
             "--trace", str(trace)]
        )
        assert code == 0 and f"spans to {trace}" in text
        rows = read_jsonl(trace)
        assert any(r["name"] == "sosp_update.step2" for r in rows)

    def test_metrics_flag_writes_prometheus(self, tmp_path):
        from repro.obs import parse_prometheus

        prom = tmp_path / "m.prom"
        code, text = run(
            ["update-demo", "--steps", "2", "--batch-size", "10",
             "--metrics", str(prom)]
        )
        assert code == 0 and f"samples to {prom}" in text
        samples = parse_prometheus(prom.read_text())
        assert samples["sosp_updates_total"] == 2.0
        assert samples["engine_supersteps_total"] > 0

    def test_shm_merged_trace_has_worker_spans_and_coverage(self, tmp_path):
        """Acceptance: one merged Chrome trace from a real shm run —
        worker kernel spans as children of dispatching supersteps,
        validator-clean, and >=95% phase coverage via the report."""
        import json

        from repro.obs import validate_chrome_trace
        from repro.obs.__main__ import main as obs_main

        trace = tmp_path / "shm.json"
        code, _ = run(
            ["update-demo", "--steps", "1", "--batch-size", "30",
             "--engine", "shm", "--threads", "2",
             "--min-dispatch-items", "1", "--trace", str(trace)]
        )
        assert code == 0
        assert validate_chrome_trace(trace) == []
        doc = json.loads(trace.read_text())
        by_id = {e["args"]["span_id"]: e for e in doc["traceEvents"]}
        workers = [e for e in doc["traceEvents"]
                   if e["name"] == "worker.slab"]
        assert workers
        for w in workers:
            parent = by_id[w["args"]["parent_id"]]
            assert parent["name"] == "superstep"
            assert w["ts"] >= parent["ts"]
        out = io.StringIO()
        assert obs_main(
            ["report", str(trace), "--min-coverage", "0.95"], out=out
        ) == 0, out.getvalue()

    def test_mosp_trace(self, graph_file, tmp_path):
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "mosp.json"
        code, _ = run(
            ["mosp", graph_file, "--target", "3", "--trace", str(trace)]
        )
        assert code == 0
        assert validate_chrome_trace(trace) == []

    def test_sssp_trace(self, graph_file, tmp_path):
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "sssp.json"
        code, _ = run(["sssp", graph_file, "--trace", str(trace)])
        assert code == 0
        assert validate_chrome_trace(trace) == []


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
