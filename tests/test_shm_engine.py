"""Unit tests for :class:`SharedMemoryEngine` and the ProcessEngine
correctness fixes.

Covers, per the tentpole and satellites:

- plant / fingerprinted re-plant (zero-copy for unchanged CSR bases),
- zero per-superstep array pickling (the dispatch payload stays
  catalog-sized no matter how large the planted arrays get, and the
  guard pickler hard-fails on smuggled ndarrays),
- worker crash recovery (pool reset + inline re-run),
- double-close idempotency, segment unlinking, engine reuse,
- the worker-side unpickle fallback (satellite bug 3) on both process
  backends,
- graceful pool close (satellite bug 2),
- cross-backend work-accounting parity (satellite bug 1), and
- non-empty traced work distributions on the processes/shm backends.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import EngineError
from repro.obs.engine import TracedEngine
from repro.obs.tracer import Tracer, use_tracer
from repro.parallel import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    SimulatedEngine,
    SlabTask,
    ThreadEngine,
    resolve_engine,
)
from tests._shm_support import MainOnlyFn, square

DOUBLE = "tests._shm_support:double_slab"
PIDS = "tests._shm_support:pid_slab"
CRASH = "tests._shm_support:crash_if_worker_slab"
CRASH_AFTER_WRITE = "tests._shm_support:crash_after_write_slab"


@pytest.fixture()
def eng():
    e = SharedMemoryEngine(threads=2, min_dispatch_items=1)
    yield e
    e.close()


class TestPlant:
    def test_plant_copies_and_returns_view(self, eng):
        arr = np.arange(8, dtype=np.float64)
        view = eng.plant("out", arr)
        assert view is not arr
        np.testing.assert_array_equal(view, arr)
        arr[0] = 99.0  # caller's array is decoupled from the segment
        assert view[0] == 0.0

    def test_fingerprint_match_skips_copy(self, eng):
        a = np.arange(16, dtype=np.int64)
        v1 = eng.plant("csr.x", a, fingerprint=(7, 1))
        v2 = eng.plant("csr.x", a, fingerprint=(7, 1))
        assert v1 is v2
        assert eng.plant_stats["csr.x"]["copies"] == 1

    def test_fingerprint_change_recopies(self, eng):
        a = np.arange(16, dtype=np.int64)
        eng.plant("csr.x", a, fingerprint=(7, 1))
        eng.plant("csr.x", a + 1, fingerprint=(7, 2))
        assert eng.plant_stats["csr.x"]["copies"] == 2

    def test_capacity_reuse_and_growth(self, eng):
        eng.plant("out", np.zeros(8, dtype=np.float64))
        seg_small = eng.plant_stats["out"]["segment"]
        # shrinking fits in place: same segment, data re-copied
        eng.plant("out", np.ones(4, dtype=np.float64))
        assert eng.plant_stats["out"]["segment"] == seg_small
        assert eng.plant_stats["out"]["copies"] == 2
        # growth allocates a fresh segment and unlinks the old one
        eng.plant("out", np.zeros(4096, dtype=np.float64))
        assert eng.plant_stats["out"]["segment"] != seg_small
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=seg_small)

    def test_dtype_change_under_same_fingerprint_recopies(self, eng):
        eng.plant("x", np.zeros(8, dtype=np.float64), fingerprint=(1,))
        v = eng.plant("x", np.zeros(8, dtype=np.int32), fingerprint=(1,))
        assert v.dtype == np.int32


class TestSlabDispatch:
    def test_dispatch_runs_and_writes_shared(self, eng):
        data = np.arange(64, dtype=np.float64)
        view = eng.plant("out", data)
        task = SlabTask(ref=DOUBLE, arrays=("out",))
        results = eng.parallel_for_slabs(64, task)
        assert eng.dispatched_supersteps == 1
        np.testing.assert_array_equal(view, data * 2)
        assert sum(results) == float((data * 2).sum())

    def test_zero_per_superstep_array_pickling(self, eng):
        """Payload size is catalog-sized and independent of array size."""
        sizes = {}
        for n in (1 << 12, 1 << 16):
            eng.plant("out", np.ones(n, dtype=np.float64))
            eng.parallel_for_slabs(n, SlabTask(ref=DOUBLE, arrays=("out",)))
            sizes[n] = eng.last_dispatch_bytes
        assert all(b < 2048 for b in sizes.values()), sizes
        # 16x more array data, (near-)identical payload: nothing but
        # the catalog and the (lo, hi) spans ever crosses the boundary
        assert sizes[1 << 16] - sizes[1 << 12] < 256

    def test_guard_refuses_ndarray_in_params(self, eng):
        eng.plant("out", np.zeros(4096, dtype=np.float64))
        task = SlabTask(
            ref=DOUBLE, arrays=("out",),
            params={"smuggled": np.arange(3)},
        )
        with pytest.raises(EngineError, match="plant"):
            eng.parallel_for_slabs(4096, task)

    def test_unplanted_array_rejected(self, eng):
        task = SlabTask(ref=DOUBLE, arrays=("never-planted",))
        with pytest.raises(EngineError, match="unplanted"):
            eng.parallel_for_slabs(8, task)

    def test_runs_in_worker_processes(self, eng):
        view = eng.plant("out", np.zeros(4096, dtype=np.int64))
        results = eng.parallel_for_slabs(4096, SlabTask(ref=PIDS,
                                                        arrays=("out",)))
        pids = {pid for _, _, pid in results}
        assert pids and os.getpid() not in pids
        assert set(np.unique(view)) <= pids

    def test_small_supersteps_run_inline(self):
        e = SharedMemoryEngine(threads=2, min_dispatch_items=10_000)
        try:
            view = e.plant("out", np.ones(32, dtype=np.float64))
            e.parallel_for_slabs(32, SlabTask(ref=DOUBLE, arrays=("out",)))
            assert e.inline_supersteps == 1 and e.dispatched_supersteps == 0
            np.testing.assert_array_equal(view, np.full(32, 2.0))
        finally:
            e.close()

    def test_worker_crash_recovery(self, eng):
        view = eng.plant("out", np.zeros(4096, dtype=np.int64))
        task = SlabTask(ref=CRASH, arrays=("out",),
                        params={"master_pid": os.getpid()})
        with pytest.warns(RuntimeWarning, match="died mid-superstep"):
            results = eng.parallel_for_slabs(4096, task)
        # inline re-run completed the superstep on the shared views
        assert sum(results) == 4096
        np.testing.assert_array_equal(view, np.ones(4096, dtype=np.int64))
        # and the engine recovered: the next dispatch uses a fresh pool
        eng.plant("out", np.ones(4096, dtype=np.float64))
        out = eng.parallel_for_slabs(
            4096, SlabTask(ref=DOUBLE, arrays=("out",))
        )
        assert sum(out) == 2.0 * 4096

    def test_crash_after_write_loses_no_improvements(self, eng):
        """A worker that mutates its slab and then dies must not make
        the recovery re-run under-report: the engine snapshots the
        task's write set before dispatch and rolls it back, so every
        pre-crash write still tests as an improvement on the re-run.
        (Without the rollback the re-run sees the mutated state and
        silently drops those results — lost `affected` vertices in the
        real kernels.)"""
        view = eng.plant("out", np.zeros(4096, dtype=np.int64))
        task = SlabTask(ref=CRASH_AFTER_WRITE, arrays=("out",),
                        params={"master_pid": os.getpid()},
                        writes=("out",))
        with pytest.warns(RuntimeWarning, match="died mid-superstep"):
            results = eng.parallel_for_slabs(4096, task)
        assert sum(results) == 4096  # every improvement re-reported
        np.testing.assert_array_equal(view, np.ones(4096, dtype=np.int64))

    def test_undeclared_write_set_snapshots_whole_catalog(self, eng):
        """``writes=None`` (unknown) must stay conservative: the same
        crash-after-write recovery works with no ``writes`` declared."""
        eng.plant("out", np.zeros(4096, dtype=np.int64))
        task = SlabTask(ref=CRASH_AFTER_WRITE, arrays=("out",),
                        params={"master_pid": os.getpid()})
        with pytest.warns(RuntimeWarning, match="died mid-superstep"):
            results = eng.parallel_for_slabs(4096, task)
        assert sum(results) == 4096


class TestLifecycle:
    def test_double_close_idempotent_and_reusable(self):
        e = SharedMemoryEngine(threads=2, min_dispatch_items=1)
        e.plant("out", np.ones(128, dtype=np.float64))
        e.parallel_for_slabs(128, SlabTask(ref=DOUBLE, arrays=("out",)))
        seg = e.plant_stats["out"]["segment"]
        e.close()
        e.close()  # second close is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=seg)  # segment unlinked
        # reusable: plants and pool re-materialise lazily
        view = e.plant("out", np.ones(128, dtype=np.float64))
        e.parallel_for_slabs(128, SlabTask(ref=DOUBLE, arrays=("out",)))
        np.testing.assert_array_equal(view, np.full(128, 2.0))
        e.close()

    def test_context_manager_closes(self):
        with SharedMemoryEngine(threads=2) as e:
            e.plant("out", np.zeros(8))
            seg = e.plant_stats["out"]["segment"]
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=seg)

    def test_process_engine_graceful_close_and_reuse(self):
        e = ProcessEngine(threads=2, min_items_per_process=1)
        assert e.parallel_for(list(range(8)), square) == [
            i * i for i in range(8)
        ]
        e.close()
        e.close()
        # close() drained and joined; engine lazily rebuilds its pool
        assert e.parallel_for([3], square) == [9]
        e.close()


class TestUnpickleFallback:
    """Satellite bug 3: a worker-side unpickle failure must degrade to
    the serial fallback instead of poisoning the pool."""

    @pytest.mark.parametrize("engine_cls", [ProcessEngine,
                                            SharedMemoryEngine])
    def test_worker_unpickle_failure_falls_back(self, engine_cls):
        e = engine_cls(threads=2, min_items_per_process=1)
        try:
            fn = MainOnlyFn()  # pickles fine, refuses to unpickle
            with pytest.warns(RuntimeWarning, match="spawn round-trip"):
                out = e.parallel_for(list(range(10)), fn)
            assert out == [x + 1 for x in range(10)]
            # the pool survived: a well-behaved task still round-trips
            assert e.parallel_for(list(range(6)), square) == [
                i * i for i in range(6)
            ]
        finally:
            e.close()


class TestWorkAccountingParity:
    """Satellite bug 1: every backend accumulates the same work units
    for the same superstep (ProcessEngine used to drop ``work_fn``)."""

    def _engines(self):
        return [
            SerialEngine(),
            ThreadEngine(threads=2),
            ProcessEngine(threads=2, min_items_per_process=1),
            SharedMemoryEngine(threads=2, min_items_per_process=1),
            SimulatedEngine(threads=2),
        ]

    def test_with_work_fn(self):
        items = list(range(16))
        expected = float(sum(i + 2 for i in items))
        for e in self._engines():
            try:
                e.parallel_for(items, square,
                               work_fn=lambda i, r: i + 2)
                assert e.work_units == expected, e.name
            finally:
                getattr(e, "close", lambda: None)()

    def test_default_one_unit_per_task(self):
        items = list(range(11))
        for e in self._engines():
            try:
                e.parallel_for(items, square)
                assert e.work_units == float(len(items)), e.name
            finally:
                getattr(e, "close", lambda: None)()

    def test_fallback_path_still_accounts(self):
        e = ProcessEngine(threads=2, min_items_per_process=1)
        try:
            captured = []

            def closure(x):
                # unpicklable on purpose: exercises the fallback path
                captured.append(x)  # repro: noqa(R001)
                return x

            with pytest.warns(RuntimeWarning):
                e.parallel_for(list(range(5)), closure,  # repro: noqa(R007)
                               work_fn=lambda i, r: 3.0)
            assert e.work_units == 15.0
        finally:
            e.close()


class TestTracedSpans:
    """Acceptance: traced spans on processes/shm report non-empty work
    distributions."""

    def test_processes_spans_have_work_stats(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(ProcessEngine(threads=2,
                                           min_items_per_process=1))
            e.parallel_for(list(range(12)), square,
                           work_fn=lambda i, r: float(i + 1))
            e.close()
        spans = [s for s in tracer.drain() if s.name == "superstep"]
        assert spans
        sp = spans[0]
        assert sp.attrs["work_total"] == float(sum(range(1, 13)))
        assert sp.attrs["work_max"] == 12.0
        assert sp.attrs["work_p50"] > 0

    def test_shm_slab_spans_have_work_stats(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.ones(4096, dtype=np.float64))
            e.parallel_for_slabs(
                4096, SlabTask(ref=DOUBLE, arrays=("out",)),
                work_fn=lambda span, r: float(span[1] - span[0]),
            )
            e.close()
        spans = [s for s in tracer.drain() if s.name == "superstep"]
        assert spans
        sp = spans[0]
        assert sp.attrs["op"] == "parallel_for_slabs"
        assert sp.attrs["work_total"] == 4096.0
        assert sp.attrs["work_p50"] > 0
        assert sp.attrs["dispatch_bytes"] > 0  # dispatched, not inline
        assert sp.attrs["slabs"] >= 2


class TestWorkerSpanCollection:
    """Cross-process collection: worker spans ride the tagged reply and
    merge — clock-aligned, re-parented — under the dispatching
    superstep span; without a recording tracer the protocol is
    byte-identical to the pre-collection one."""

    def test_worker_slab_spans_merge_under_superstep(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.ones(4096, dtype=np.float64))
            e.parallel_for_slabs(4096, SlabTask(ref=DOUBLE,
                                                arrays=("out",)))
            assert e.inner.last_obs_bytes > 0
            e.close()
        spans = tracer.drain()
        supersteps = [s for s in spans if s.name == "superstep"]
        workers = [s for s in spans if s.name == "worker.slab"]
        assert len(supersteps) == 1 and len(workers) >= 2
        anchor = supersteps[0]
        for w in workers:
            assert w.parent_id == anchor.span_id
            # clock-aligned: merged spans sit inside the superstep
            assert anchor.start <= w.start <= w.end <= anchor.end
            assert w.attrs["kernel"] == DOUBLE
            assert int(w.attrs["worker"]) == w.thread != os.getpid()
            assert "clock_offset" in w.attrs

    def test_merged_trace_passes_chrome_validation(self, tmp_path):
        from repro.obs import export_chrome_trace, validate_chrome_trace

        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.ones(4096, dtype=np.float64))
            e.parallel_for_slabs(4096, SlabTask(ref=DOUBLE,
                                                arrays=("out",)))
            e.close()
        path = tmp_path / "trace.json"
        export_chrome_trace(tracer.drain(), path)
        assert validate_chrome_trace(path) == []

    def test_no_collection_without_recording_tracer(self, eng):
        eng.plant("out", np.ones(4096, dtype=np.float64))
        eng.parallel_for_slabs(4096, SlabTask(ref=DOUBLE, arrays=("out",)))
        assert eng.dispatched_supersteps == 1
        # passive default tracer: no header shipped, no report returned
        assert eng.last_obs_bytes == 0

    def test_reply_tag_byte_identical_without_header(self):
        """The generic chunk protocol only grows when a header rides
        along — ``REPRO_OBS=off`` replies keep the legacy ``b"R"``."""
        import pickle

        from repro.parallel.backends.processes import (
            _TAG_RESULTS,
            _TAG_RESULTS_OBS,
            _chunk_runner,
        )
        legacy = _chunk_runner(pickle.dumps((square, [1, 2, 3])))
        assert legacy.startswith(_TAG_RESULTS)
        assert pickle.loads(legacy[1:]) == [1, 4, 9]
        obs = _chunk_runner(pickle.dumps(
            (square, [1, 2, 3], {"t_send": 0.0})
        ))
        assert obs.startswith(_TAG_RESULTS_OBS)
        results, report = pickle.loads(obs[1:])
        assert results == [1, 4, 9]
        assert [r["name"] for r in report.spans] == ["worker.chunk"]

    def test_recovery_stamped_on_inline_rerun(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.zeros(4096, dtype=np.int64))
            task = SlabTask(ref=CRASH, arrays=("out",),
                            params={"master_pid": os.getpid()})
            with pytest.warns(RuntimeWarning, match="died mid-superstep"):
                results = e.parallel_for_slabs(4096, task)
            assert sum(results) == 4096
            e.close()
        sp = [s for s in tracer.drain() if s.name == "superstep"][0]
        assert sp.attrs.get("recovery") is True

    def test_healthy_superstep_has_no_recovery_attr(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.ones(64, dtype=np.float64))
            e.parallel_for_slabs(64, SlabTask(ref=DOUBLE, arrays=("out",)))
            e.close()
        sp = [s for s in tracer.drain() if s.name == "superstep"][0]
        assert "recovery" not in sp.attrs


class TestWorkerAttachCache:
    """Worker-side attach cache: a hit refreshes LRU order (plain FIFO
    used to evict the long-lived CSR base segments first — the hottest
    entries of all), and segments pinned by the chunk currently
    materialising its catalog are never evicted (numpy views do not
    keep the buffer exported, so closing one would silently dangle the
    view rather than fail loudly)."""

    @pytest.fixture()
    def cache(self, monkeypatch):
        from repro.parallel.backends import shm as shm_mod

        monkeypatch.setattr(shm_mod, "_SEGMENTS", {})
        monkeypatch.setattr(shm_mod, "_PINNED", set())
        owners = []
        yield shm_mod, owners
        for seg in shm_mod._SEGMENTS.values():
            try:
                seg.close()
            except BufferError:
                pass
        for seg in owners:
            seg.close()
            seg.unlink()

    def _create(self, owners, count):
        for _ in range(count):
            owners.append(shared_memory.SharedMemory(create=True, size=64))
        return [s.name for s in owners[-count:]]

    def test_hit_refreshes_lru_and_eviction_picks_cold_entry(
        self, cache, monkeypatch
    ):
        shm_mod, owners = cache
        monkeypatch.setattr(shm_mod, "_MAX_WORKER_SEGMENTS", 3)
        names = self._create(owners, 4)
        for name in names[:3]:
            shm_mod._attach_segment(name)
        # a cache hit marks the oldest segment most-recently-used (the
        # CSR-base access pattern: touched by every superstep)...
        shm_mod._attach_segment(names[0])
        # ...so a 4th attach evicts the coldest entry — names[1], not
        # the insertion-order-oldest names[0]
        shm_mod._attach_segment(names[3])
        assert names[0] in shm_mod._SEGMENTS
        assert names[1] not in shm_mod._SEGMENTS

    def test_pinned_segments_survive_eviction(self, cache, monkeypatch):
        shm_mod, owners = cache
        monkeypatch.setattr(shm_mod, "_MAX_WORKER_SEGMENTS", 2)
        names = self._create(owners, 4)
        views = [
            np.ndarray(8, dtype=np.int8,
                       buffer=shm_mod._attach_segment(n).buf)
            for n in names[:2]
        ]
        # both cached segments belong to the in-flight catalog: the
        # third attach must defer eviction (grow past the bound), never
        # close a segment those views are mapped over
        shm_mod._PINNED.update(names[:2])
        shm_mod._attach_segment(names[2])
        assert set(names[:3]) <= set(shm_mod._SEGMENTS)
        assert views[0][0] == 0 and views[1][0] == 0  # still backed
        del views
        # once the chunk finishes (pins cleared), eviction resumes
        shm_mod._PINNED.clear()
        shm_mod._attach_segment(names[3])
        assert len(shm_mod._SEGMENTS) <= 2
        assert names[3] in shm_mod._SEGMENTS


class TestKernelMirrorBack:
    """relax_batch_groups must mirror the planted views back to the
    caller's arrays even when slab dispatch raises mid-Step-1,
    matching propagate_csr's finally-block contract."""

    def test_relax_batch_groups_mirrors_on_dispatch_error(self):
        from repro.core.kernels import relax_batch_groups
        from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE

        class ExplodingEngine(SharedMemoryEngine):
            def parallel_for_slabs(self, n_items, task,
                                   work_fn=None, min_chunk=1):
                # mutate like a half-finished superstep, then die
                self._plants["sosp.dist"].view[1] = 0.5
                self._plants["sosp.marked"].view[1] = 1
                raise EngineError("worker army vanished")

        e = ExplodingEngine(threads=2, min_dispatch_items=1)
        try:
            n = 4
            dist = np.full(n, INF, dtype=DIST_DTYPE)
            dist[0] = 0.0
            parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
            marked = np.zeros(n, dtype=np.int8)
            with pytest.raises(EngineError, match="vanished"):
                relax_batch_groups(
                    np.array([0]), np.array([1]),
                    np.array([0.5], dtype=DIST_DTYPE),
                    dist, parent, marked, engine=e,
                )
            # the partial (monotone-valid) relaxation survived the error
            assert dist[1] == 0.5
            assert marked[1] == 1
        finally:
            e.close()


class TestResolveAndWrappers:
    def test_resolve_by_name(self):
        e = resolve_engine("shm", threads=3, checked=False)
        try:
            assert e.name == "shm"
            assert e.threads == 3
            assert e.supports_slab_dispatch
        finally:
            e.close()

    def test_checked_wrapper_forwards_slab_surface(self):
        e = resolve_engine("shm", threads=2, checked=True)
        try:
            assert e.name == "checked(shm)"
            assert getattr(e, "supports_slab_dispatch", False)
            e.plant("out", np.ones(256, dtype=np.float64))
            e.parallel_for_slabs(256, SlabTask(ref=DOUBLE,
                                               arrays=("out",)))
            assert e.tracker.supersteps >= 1
        finally:
            e.close()

    def test_close_is_safe_through_wrappers_on_any_backend(self):
        for name in ("serial", "threads", "processes", "shm",
                     "simulated"):
            e = resolve_engine(name, threads=2, checked=True)
            e.close()  # must never raise, even when inner has no pool


class TestTwoEngineLifecycle:
    """Satellite bug: two live engines must never unlink each other.

    Teardown is strictly per-instance and per-process: ``close()``
    releases only this engine's own segments, tolerates names that were
    already unlinked externally, and a forked child dropping its
    inherited engine copy must leave the parent's live segments (and
    pool workers) alone."""

    def test_two_engines_close_independently(self):
        a = SharedMemoryEngine(threads=2, min_dispatch_items=1)
        b = SharedMemoryEngine(threads=2, min_dispatch_items=1)
        try:
            a.plant("out", np.ones(8, dtype=np.float64))
            view_b = b.plant("out", np.full(8, 2.0))
            seg_b = b.plant_stats["out"]["segment"]
            a.close()
            # b's identically-named plant lives in its own segment and
            # must survive a's teardown intact...
            probe = shared_memory.SharedMemory(name=seg_b)
            probe.close()
            # ...and b must still dispatch real work afterwards
            b.parallel_for_slabs(8, SlabTask(ref=DOUBLE,
                                             arrays=("out",)))
            np.testing.assert_array_equal(view_b, np.full(8, 4.0))
        finally:
            b.close()
            a.close()  # second close of a dead engine: no-op

    def test_release_tolerates_external_unlink(self):
        e = SharedMemoryEngine(threads=2)
        e.plant("out", np.ones(8, dtype=np.float64))
        seg_name = e.plant_stats["out"]["segment"]
        ext = shared_memory.SharedMemory(name=seg_name)
        ext.unlink()  # e.g. the old double-unlink bug, or a janitor
        ext.close()
        e.close()  # must swallow FileNotFoundError, not raise

    def test_forked_child_close_leaves_parent_segments(self):
        if not hasattr(os, "fork"):
            pytest.skip("fork-only scenario")
        e = SharedMemoryEngine(threads=2)
        view = e.plant("out", np.arange(8, dtype=np.float64))
        seg_name = e.plant_stats["out"]["segment"]
        pid = os.fork()
        if pid == 0:
            # child: the inherited engine (and its atexit finalizer)
            # must close without unlinking the parent's segments
            code = 0
            try:
                e.close()
            except BaseException:
                code = 1
            os._exit(code)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        try:
            probe = shared_memory.SharedMemory(name=seg_name)
            probe.close()
            np.testing.assert_array_equal(
                view, np.arange(8, dtype=np.float64)
            )
        finally:
            e.close()


class TestPublishSnapshot:
    """MVCC epoch export: stamp-keyed, frozen, zero-copy on repeats."""

    def test_same_stamp_returns_cached_frozen_object(self, eng):
        dist = np.arange(4, dtype=np.float64)
        s1 = eng.publish_snapshot({"dist": dist}, ("s", 1))
        s2 = eng.publish_snapshot({"dist": dist}, ("s", 1))
        assert s1 is s2  # repeat export between batches is zero-copy
        assert eng.snapshot_copies == 1
        assert eng.snapshot_exports == 2
        assert not s1["dist"].flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            s1["dist"][0] = 99.0

    def test_new_stamp_recopies_and_decouples(self, eng):
        dist = np.arange(4, dtype=np.float64)
        s1 = eng.publish_snapshot({"dist": dist}, ("s", 1))
        dist[0] = 99.0  # a later in-place update...
        assert s1["dist"][0] == 0.0  # ...never reaches the old epoch
        s2 = eng.publish_snapshot({"dist": dist}, ("s", 2))
        assert s2 is not s1
        assert s2["dist"][0] == 99.0
        assert eng.snapshot_copies == 2

    def test_close_clears_snapshot_cache(self):
        e = SharedMemoryEngine(threads=2)
        s1 = e.publish_snapshot({"d": np.ones(2)}, ("s", 1))
        e.close()
        s2 = e.publish_snapshot({"d": np.ones(2)}, ("s", 1))
        assert s2 is not s1  # a closed engine never serves stale arrays
        e.close()

    def test_wrappers_forward_publish_snapshot(self):
        e = resolve_engine("shm", threads=2, checked=True)
        try:
            snap = e.publish_snapshot({"d": np.ones(2)}, ("s", 1))
            assert not snap["d"].flags.writeable
        finally:
            e.close()
