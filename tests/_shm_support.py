"""Picklable task functions for the process/shared-memory engine tests.

Spawn workers re-import task functions by module path, so anything a
worker must resolve lives here (a stable, importable module) rather
than inside a test function body.  ``SlabTask`` refs used by the tests
point at this module, e.g. ``"tests._shm_support:double_slab"``.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Tuple

import numpy as np


def square(x: int) -> int:
    return x * x


def add_one(x: int) -> int:
    return x + 1


def double_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> float:
    """Double ``out[lo:hi]`` in place; return the span sum."""
    out = arrays["out"]
    out[lo:hi] *= 2
    return float(out[lo:hi].sum())


def pid_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> Tuple[int, int, int]:
    """Stamp the executing pid over ``out[lo:hi]``; report it."""
    out = arrays["out"]
    out[lo:hi] = os.getpid()
    return lo, hi, os.getpid()


def crash_if_worker_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> int:
    """Kill the executing process — but only when it is a pool worker.

    The pid guard keeps the documented crash-recovery path (inline
    re-run on the master) from killing the test runner itself.
    """
    if os.getpid() != int(params["master_pid"]):
        os._exit(3)
    out = arrays["out"]
    out[lo:hi] = 1
    return hi - lo


def crash_after_write_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> int:
    """Relaxation-style kernel that dies AFTER mutating its slab.

    Counts the zero entries of its span (the "improvements"), writes
    them to 1, then kills the process — but only in a pool worker (pid
    guard as in :func:`crash_if_worker_slab`).  A recovery re-run that
    does not first roll the write set back sees the already-written 1s,
    reports 0 improvements for those spans, and under-counts — exactly
    how a lost `affected` vertex manifests in the real kernels.
    """
    out = arrays["out"]
    improved = int((out[lo:hi] == 0).sum())
    out[lo:hi] = 1
    if os.getpid() != int(params["master_pid"]):
        os._exit(3)
    return improved


def crash_then_propagate_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> Tuple[np.ndarray, int]:
    """Step-2 kernel stand-in that dies in pool workers, mid-write.

    Poisons the planted ``sosp.dist`` view and kills the process when
    running inside a spawn worker (``multiprocessing.parent_process()``
    is set there and ``None`` in the test runner), so the shared-memory
    engine's crash recovery must both roll the write set back and
    re-run the superstep.  The recovery re-run resolves this same ref
    inline on the master, where it delegates to the real
    :func:`repro.core.kernels._propagate_relax_slab` — the
    mixed-pipeline crash test monkeypatches
    ``repro.core.kernels._PROPAGATE_SLAB_REF`` to point here.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        arrays["sosp.dist"][lo:hi] = -1.0
        os._exit(3)
    from repro.core.kernels import _propagate_relax_slab

    return _propagate_relax_slab(arrays, params, lo, hi)


def crash_one_shard_propagate_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> Tuple[np.ndarray, int]:
    """Like :func:`crash_then_propagate_slab`, but kills only the shard
    pool whose planted ``sosp.dist`` has the length named by the
    ``REPRO_TEST_CRASH_DIST_LEN`` environment variable.

    The partitioned engine runs one shared-memory pool per shard, all
    dispatching the same slab ref with the same fixed params — the
    local dist length is the only per-shard discriminator a kernel can
    see, so the crash test sizes its shards to make it unique.  Spawn
    workers inherit the master's environment, so a ``monkeypatch.setenv``
    before the pools first dispatch reaches them.
    """
    import multiprocessing

    target = int(os.environ.get("REPRO_TEST_CRASH_DIST_LEN", "-1"))
    if (
        multiprocessing.parent_process() is not None
        and len(arrays["sosp.dist"]) == target
    ):
        arrays["sosp.dist"][lo:hi] = -1.0
        os._exit(3)
    from repro.core.kernels import _propagate_relax_slab

    return _propagate_relax_slab(arrays, params, lo, hi)


def sneaky_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> int:
    """Writes ``out`` as declared but also mutates ``aux`` — a kernel
    whose ``writes=("out",)`` declaration lies.  The write is a plain
    subscript store, so the static analyzer's inferred write-set
    catches it (CheckedEngine raises before dispatch)."""
    arrays["out"][lo:hi] += 1
    arrays["aux"][lo:hi] = 7
    return hi - lo


def dynamic_write_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> int:
    """Mutates the array named by ``params["victim"]`` — a dynamic
    catalog key static inference cannot resolve (the inferred write-set
    comes back incomplete), so only CheckedEngine's before/after
    content digest can catch the undeclared write."""
    arrays[params["victim"]][lo:hi] = 9
    return hi - lo


def _raise_on_load() -> None:
    raise RuntimeError("this callable refuses to unpickle")


class MainOnlyFn:
    """Callable that pickles on the master but cannot unpickle in a
    worker — the ``fn defined in __main__ under spawn`` failure mode
    that used to poison the pool."""

    def __call__(self, x: int) -> int:
        return x + 1

    def __reduce__(self):
        return (_raise_on_load, ())


def spam_spans_slab(
    arrays: Mapping[str, np.ndarray], params: Mapping[str, Any],
    lo: int, hi: int,
) -> float:
    """Emit ``params["spans"]`` tracer spans — far more than the
    worker's preallocated :class:`~repro.obs.collect.SpanBuffer` holds
    — so the buffer-overflow drop accounting runs through the real
    dispatch path (capture, tagged reply, merge)."""
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    for i in range(int(params.get("spans", 600))):
        with tracer.span("spam", i=i):
            pass
    out = arrays["out"]
    out[lo:hi] += 1
    return float(hi - lo)
