"""Unit and property tests for the partitioned engine's exchange loop.

Covers the boundary-exchange protocol invariants the differential
matrix can't see from the outside: superstep counts on chains that span
shard cuts, early termination when nothing crosses a cut, improvements
that ping-pong between two shards, degenerate partitions (one shard,
shards with no affected vertices), plan maintenance across incremental
batches, and lifecycle teardown.  Plus the ``resolve_engine`` registry
satellite: the picklable :class:`~repro.errors.UnknownEngineError`.
"""

from __future__ import annotations

import copy
import pickle

import numpy as np
import pytest

from repro.core import SOSPTree, apply_mixed_batch, sosp_update
from repro.dynamic import ChangeBatch
from repro.errors import EngineError, UnknownEngineError
from repro.graph import DiGraph
from repro.graph.analysis import (
    partition_by_ranges,
    partition_edgecut,
    refine_partition_greedy,
)
from repro.graph.csr import CSRGraph
from repro.graph.shards import build_shards
from repro.parallel import PartitionedEngine, resolve_engine


def _chain_graph(n):
    g = DiGraph(n, k=1)
    return g


def _insert(edges):
    return ChangeBatch.insertions([(u, v, [w]) for u, v, w in edges])


def _run(engine, g, tree, batch):
    batch.apply_to(g)
    return apply_mixed_batch(g, tree, batch, engine=engine)


# ---------------------------------------------------------------- protocol
class TestExchangeProtocol:
    def test_chain_crossing_every_cut_needs_one_superstep_per_shard(self):
        """A path inserted along 0→1→…→n−1 under contiguous ranges
        crosses every cut once: P supersteps, P−1 boundary messages."""
        for parts in (2, 3, 4):
            n = 4 * parts
            g = _chain_graph(n)
            tree = SOSPTree.build(g, 0, 0)
            batch = _insert([(i, i + 1, 1.0) for i in range(n - 1)])
            engine = PartitionedEngine(
                threads=1, partitions=parts, inner="serial"
            )
            try:
                _run(engine, g, tree, batch)
            finally:
                engine.close()
            assert engine.last_exchange_stats["supersteps"] == parts
            assert engine.last_exchange_stats["messages"] == parts - 1
            assert engine.last_exchange_stats["deliveries"] == parts - 1
            np.testing.assert_array_equal(
                tree.dist, np.arange(n, dtype=float)
            )
            tree.certify(g)

    def test_update_local_to_one_shard_exchanges_nothing(self):
        """An improvement confined to one shard's interior terminates
        after a single superstep with an empty exchange."""
        g = _chain_graph(8)
        base = _insert([(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)])
        base.apply_to(g)
        tree = SOSPTree.build(g, 0, 0)
        engine = PartitionedEngine(threads=1, partitions=2, inner="serial")
        try:
            batch = _insert([(1, 2, 1.0)])  # shortcut inside shard 0
            _run(engine, g, tree, batch)
        finally:
            engine.close()
        assert engine.last_exchange_stats == {
            "supersteps": 1, "messages": 0, "deliveries": 0,
        }
        assert tree.dist[3] == 3.0
        tree.certify(g)

    def test_no_improvement_runs_zero_supersteps(self):
        """A batch that cannot improve anything never propagates."""
        g = _chain_graph(6)
        base = _insert([(0, 1, 1.0), (1, 2, 1.0)])
        base.apply_to(g)
        tree = SOSPTree.build(g, 0, 0)
        engine = PartitionedEngine(threads=1, partitions=2, inner="serial")
        try:
            batch = _insert([(0, 1, 9.0)])  # worse parallel edge
            _run(engine, g, tree, batch)
        finally:
            engine.close()
        assert engine.last_exchange_stats == {
            "supersteps": 0, "messages": 0, "deliveries": 0,
        }
        tree.certify(g)

    def test_improvement_ping_pongs_between_two_shards(self):
        """A shortest path weaving 0→3→1→4→2 across the cut of
        part=[0,0,0,1,1] re-activates each shard twice: the cut edge's
        improvement bounces back and forth ≥ 2 times."""
        g = _chain_graph(5)
        tree = SOSPTree.build(g, 0, 0)
        batch = _insert([
            (0, 3, 1.0), (3, 1, 1.0), (1, 4, 1.0), (4, 2, 1.0),
        ])
        engine = PartitionedEngine(
            threads=1, partitions=2, inner="serial",
            assignment=np.array([0, 0, 0, 1, 1]),
        )
        try:
            _run(engine, g, tree, batch)
        finally:
            engine.close()
        stats = engine.last_exchange_stats
        assert stats["supersteps"] == 4   # 0→3 | →1 | →4 | →2
        assert stats["messages"] == 3     # 3, 1, 4 each cross once
        np.testing.assert_array_equal(
            tree.dist, np.array([0.0, 2.0, 4.0, 1.0, 3.0])
        )
        tree.certify(g)

    def test_single_partition_degenerates_to_plain_engine(self):
        """partitions=1: one shard owns everything — identical dist AND
        parents to the plain serial kernel path, zero messages."""
        rng = np.random.default_rng(5)
        n = 20
        g = DiGraph(n, k=1)
        for _ in range(60):
            g.add_edge(int(rng.integers(0, n)), int(rng.integers(0, n)),
                       [float(rng.integers(1, 9))])
        tree = SOSPTree.build(g, 0, 0)
        ref = copy.deepcopy(tree)
        g2 = copy.deepcopy(g)
        batch = _insert([
            (int(rng.integers(0, n)), int(rng.integers(0, n)),
             float(rng.integers(1, 4)))
            for _ in range(6)
        ])
        batch.apply_to(g2)
        snap = CSRGraph.from_digraph(g)
        snap.append_batch(batch)
        sosp_update(g2, ref, batch, use_csr_kernels=True)
        engine = PartitionedEngine(threads=1, partitions=1, inner="serial")
        try:
            batch.apply_to(g)
            sosp_update(g, tree, batch, engine=engine, csr=snap,
                        use_csr_kernels=True)
        finally:
            engine.close()
        np.testing.assert_array_equal(tree.dist, ref.dist)
        np.testing.assert_array_equal(tree.parent, ref.parent)
        assert engine.last_exchange_stats["messages"] == 0
        assert engine.last_exchange_stats["supersteps"] <= 1

    def test_shard_with_no_affected_vertices_stays_idle(self):
        """Shards the update never reaches are neither seeded nor
        activated (a chain far from the batch, in its own shard)."""
        g = _chain_graph(9)
        base = _insert([(6, 7, 1.0), (7, 8, 1.0)])  # island in shard 2
        base.apply_to(g)
        tree = SOSPTree.build(g, 0, 0)
        engine = PartitionedEngine(threads=1, partitions=3, inner="serial")
        try:
            batch = _insert([(0, 1, 1.0), (1, 2, 1.0)])  # shard 0 only
            _run(engine, g, tree, batch)
        finally:
            engine.close()
        assert engine.last_exchange_stats == {
            "supersteps": 1, "messages": 0, "deliveries": 0,
        }
        assert not np.isfinite(tree.dist[6:]).any()
        tree.certify(g)


# --------------------------------------------------------- plan maintenance
class TestPlanMaintenance:
    def test_incremental_batches_reuse_and_extend_the_plan(self):
        """Sequential batches against one snapshot go through the
        incremental shard-plan path (same plan object, updated stamp)
        and still match a from-scratch run."""
        rng = np.random.default_rng(9)
        n = 16
        g = DiGraph(n, k=1)
        for _ in range(40):
            g.add_edge(int(rng.integers(0, n)), int(rng.integers(0, n)),
                       [float(rng.integers(1, 9))])
        tree = SOSPTree.build(g, 0, 0)
        ref = copy.deepcopy(tree)
        g_ref = copy.deepcopy(g)
        snapshot = CSRGraph.from_digraph(g)
        engine = PartitionedEngine(threads=1, partitions=3, inner="serial")
        try:
            plan_ids = set()
            for step in range(4):
                batch = ChangeBatch(
                    rng.integers(0, n, 5),
                    rng.integers(0, n, 5),
                    rng.integers(1, 9, (5, 1)).astype(float),
                    rng.integers(0, 3, 5).astype(np.int8),
                )
                batch.apply_to(g)
                batch.apply_to(g_ref)
                snapshot.apply_batch(batch)
                apply_mixed_batch(g_ref, ref, batch)
                apply_mixed_batch(g, tree, batch, engine=engine,
                                  use_csr_kernels=True, csr=snapshot)
                plan_ids.add(id(engine._plan))
                np.testing.assert_array_equal(tree.dist, ref.dist)
                tree.certify(g)
            # the plan survived at least one incremental sync (it may
            # rebuild when an insert lands an unseen ghost, not always)
            assert len(plan_ids) >= 1
            total = sum(
                sh.csr.num_edges for sh in engine._plan.shards
            )
            assert total == snapshot.num_edges
        finally:
            engine.close()

    def test_stale_snapshot_is_rejected(self):
        g = _chain_graph(4)
        batch = _insert([(0, 1, 1.0)])
        tree = SOSPTree.build(g, 0, 0)
        snap = CSRGraph.from_digraph(g)  # NOT updated with the batch
        batch.apply_to(g)
        engine = PartitionedEngine(threads=1, partitions=2, inner="serial")
        try:
            from repro.errors import AlgorithmError

            with pytest.raises(AlgorithmError, match="keep them in sync"):
                sosp_update(g, tree, batch, engine=engine,
                            use_csr_kernels=True, csr=snap)
        finally:
            engine.close()


# ------------------------------------------------------------ partitioners
class TestPartitioners:
    def test_ranges_are_contiguous_and_balanced(self):
        part = partition_by_ranges(10, 3)
        assert part.shape == (10,)
        sizes = np.bincount(part, minlength=3)
        assert sizes.min() >= 3 and sizes.max() <= 4
        assert (np.diff(part) >= 0).all()  # contiguous

    def test_more_parts_than_vertices_leaves_empty_shards(self):
        part = partition_by_ranges(2, 4)
        assert part.shape == (2,)
        assert set(part.tolist()) <= {0, 1, 2, 3}
        # build_shards must still return one shard per partition
        g = DiGraph(2, k=1)
        g.add_edge(0, 1, [1.0])
        shards = build_shards(CSRGraph.from_digraph(g), part, parts=4)
        assert len(shards) == 4
        assert sum(sh.n_owned for sh in shards) == 2

    def test_greedy_refinement_never_raises_the_cut(self):
        rng = np.random.default_rng(2)
        n = 30
        g = DiGraph(n, k=1)
        perm = rng.permutation(n)  # destroy id locality
        for i in range(n - 1):
            g.add_edge(int(perm[i]), int(perm[i + 1]), [1.0])
        for _ in range(30):
            g.add_edge(int(rng.integers(0, n)), int(rng.integers(0, n)),
                       [1.0])
        part = partition_by_ranges(n, 3)
        refined = refine_partition_greedy(g, part)
        before = partition_edgecut(g, part)
        after = partition_edgecut(g, refined)
        assert after <= before
        sizes = np.bincount(refined, minlength=3)
        assert sizes.min() >= 1  # no shard starved


# ------------------------------------------------ crash recovery, lifecycle
class TestCrashAndLifecycle:
    def test_one_shard_worker_death_recovers_to_oracle(self, monkeypatch):
        """Kill one shard's shm worker mid-superstep (after it poisons
        its local dist slab): the pool's transactional rollback + inline
        re-run must keep the exchange loop on the oracle fixpoint.

        The crash kernel targets the pool by planted-dist length, so
        the shards are sized to differ: shard 0 owns {0..3} with no
        ghosts (length 4), shard 1 owns {4..7} plus ghosts {0, 3}
        (length 6).
        """
        from repro.core import kernels

        g = DiGraph(8, k=1)
        # shard 1's repair wave must fan out to >= 2 candidates (4 -> 5
        # AND 4 -> 6): single-span supersteps run inline on the master
        # and would never reach the worker pool, so nothing would crash
        base = _insert([
            (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0),
            (4, 5, 1.0), (4, 6, 1.0), (5, 7, 1.0), (6, 7, 2.0),
        ])
        base.apply_to(g)
        tree = SOSPTree.build(g, 0, 0)
        batch = _insert([(0, 4, 1.0)])  # shortcut: repairs live in shard 1

        g_ref = copy.deepcopy(g)
        ref = copy.deepcopy(tree)
        batch.apply_to(g_ref)
        apply_mixed_batch(g_ref, ref, batch)

        monkeypatch.setattr(
            kernels, "_PROPAGATE_SLAB_REF",
            "tests._shm_support:crash_one_shard_propagate_slab",
        )
        monkeypatch.setattr(kernels, "MIN_SLAB_ITEMS", 1)
        monkeypatch.setenv("REPRO_TEST_CRASH_DIST_LEN", "6")  # shard 1
        engine = PartitionedEngine(
            threads=2, partitions=2, inner="shm",
            inner_options={"min_dispatch_items": 1},
            parallel_shards=False,  # keep the warning on the main thread
        )
        try:
            batch.apply_to(g)
            with pytest.warns(RuntimeWarning, match="died mid-superstep"):
                apply_mixed_batch(g, tree, batch, engine=engine)
        finally:
            engine.close()
        np.testing.assert_array_equal(tree.dist, ref.dist)
        tree.certify(g)
        assert engine.last_exchange_stats["supersteps"] >= 1

    def test_close_unlinks_every_shard_pool_segment(self):
        """``close()`` tears down all shard pools: every shared-memory
        segment any pool planted must be unlinked (attach raises)."""
        from multiprocessing import shared_memory

        rng = np.random.default_rng(4)
        n = 24
        g = DiGraph(n, k=1)
        for _ in range(70):
            g.add_edge(int(rng.integers(0, n)), int(rng.integers(0, n)),
                       [float(rng.integers(1, 9))])
        tree = SOSPTree.build(g, 0, 0)
        engine = PartitionedEngine(
            threads=2, partitions=2, inner="shm",
            inner_options={"min_dispatch_items": 1},
        )
        batch = _insert([
            (int(rng.integers(0, n)), int(rng.integers(0, n)), 1.0)
            for _ in range(6)
        ])
        _run(engine, g, tree, batch)
        segments = [
            info["segment"]
            for pool in engine.shard_pools
            for info in pool.plant_stats.values()
        ]
        assert segments, "expected the shard pools to have planted arrays"
        engine.close()
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_engine_stays_usable(self):
        g = _chain_graph(6)
        tree = SOSPTree.build(g, 0, 0)
        engine = PartitionedEngine(threads=1, partitions=2, inner="serial")
        engine.close()
        engine.close()  # idempotent
        try:
            _run(engine, g, tree, _insert([(0, 1, 1.0), (1, 2, 1.0)]))
            np.testing.assert_array_equal(
                tree.dist[:3], np.array([0.0, 1.0, 2.0])
            )
        finally:
            engine.close()


# ------------------------------------------------- construction & registry
class TestConstructionAndRegistry:
    def test_resolve_by_name(self):
        e = resolve_engine("partitioned", threads=3)
        assert isinstance(e, PartitionedEngine)
        assert e.threads == 3
        assert e.partitions == 2
        assert e.supports_partitioned_update
        e.close()

    def test_unknown_engine_error_names_the_registry(self):
        with pytest.raises(UnknownEngineError) as exc_info:
            resolve_engine("gpu")
        err = exc_info.value
        assert err.name == "gpu"
        assert "partitioned" in err.valid
        assert "serial" in err.valid
        assert "partitioned" in str(err)
        assert isinstance(err, EngineError)  # old except clauses keep working

    def test_unknown_engine_error_round_trips_through_pickle(self):
        err = UnknownEngineError("gpu", ("serial", "partitioned"))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, UnknownEngineError)
        assert clone.name == "gpu"
        assert clone.valid == ("serial", "partitioned")
        assert str(clone) == str(err)

    def test_invalid_configurations_are_rejected(self):
        with pytest.raises(EngineError, match="partitions"):
            PartitionedEngine(partitions=0)
        with pytest.raises(EngineError, match="nest"):
            PartitionedEngine(inner="partitioned")
        with pytest.raises(EngineError, match="partition_mode"):
            PartitionedEngine(partition_mode="metis")
        with pytest.raises(EngineError, match="assignment"):
            PartitionedEngine(partitions=2, assignment=np.array([0, 2]))

    def test_generic_parallel_for_is_inline_and_accounted(self):
        engine = PartitionedEngine(threads=1, partitions=2, inner="serial")
        try:
            out = engine.parallel_for([1, 2, 3], lambda x: x * x)
            assert out == [1, 4, 9]
            assert engine.work_units == 3.0
        finally:
            engine.close()


class TestWorkerSpanCollection:
    """Worker spans from shard pools merge with per-shard labels."""

    def test_worker_spans_carry_shard_and_worker_labels(self):
        from repro.core import sosp_update
        from repro.dynamic import random_insert_batch
        from repro.graph import road_like
        from repro.obs.engine import TracedEngine
        from repro.obs.tracer import Tracer, use_tracer

        g = road_like(2000, k=1, seed=0)
        tree = SOSPTree.build(g, 0)
        snapshot = CSRGraph.from_digraph(g)
        batch = random_insert_batch(g, 50, seed=1)
        batch.apply_to(g)
        snapshot.append_batch(batch)
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            engine = TracedEngine(PartitionedEngine(
                threads=2, partitions=2,
                inner_options={"min_dispatch_items": 1},
            ))
            try:
                sosp_update(g, tree, batch, engine=engine,
                            use_csr_kernels=True, csr=snapshot)
            finally:
                engine.close()
        tree.certify(g)
        spans = tracer.drain()
        workers = [s for s in spans if s.name == "worker.slab"]
        assert workers, "expected dispatched worker spans"
        shards = {s.attrs["shard"] for s in workers}
        assert shards <= {"0", "1"} and shards
        by_id = {s.span_id: s for s in spans}
        for w in workers:
            assert "worker" in w.attrs
            anchor = by_id[w.parent_id]
            # re-parented under the shard pool's dispatching superstep,
            # itself inside the partitioned.superstep phase span
            assert anchor.name == "superstep"
            assert anchor.start <= w.start <= w.end <= anchor.end
