"""Tests for NAMOA* (point-to-point exact multi-objective search)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import VertexError
from repro.graph import DiGraph, attach_random_weights, erdos_renyi, layered_dag
from repro.mosp import martins, namoa_star


class TestSmallGraphs:
    def test_two_route_tradeoff(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 9.0))
        g.add_edge(1, 2, (1.0, 9.0))
        g.add_edge(0, 2, (9.0, 1.0))
        r = namoa_star(g, 0, 2)
        assert sorted(map(tuple, r.front().tolist())) == [
            (2.0, 18.0), (9.0, 1.0)
        ]

    def test_paths_reconstruct(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 9.0))
        g.add_edge(1, 2, (1.0, 9.0))
        g.add_edge(0, 2, (9.0, 1.0))
        paths = sorted(namoa_star(g, 0, 2).paths())
        assert paths == [[0, 1, 2], [0, 2]]

    def test_unreachable_destination(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        r = namoa_star(g, 0, 2)
        assert r.labels == []
        assert r.front().size == 0

    def test_source_is_destination(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        r = namoa_star(g, 0, 0)
        assert r.front().tolist() == [[0.0, 0.0]]

    def test_bad_vertices_rejected(self):
        g = DiGraph(2, k=2)
        with pytest.raises(VertexError):
            namoa_star(g, 5, 0)
        with pytest.raises(VertexError):
            namoa_star(g, 0, 5)


class TestAgainstMartins:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_same_front_er(self, seed):
        g = erdos_renyi(15, 60, k=2, seed=seed)
        dest = 7
        full = martins(g, 0)
        r = namoa_star(g, 0, dest)
        got = sorted(map(tuple, r.front().tolist())) if r.labels else []
        ref = sorted(map(tuple, full.front(dest).tolist())) \
            if full.labels[dest] else []
        assert got == ref

    @pytest.mark.parametrize("seed", [0, 1])
    def test_same_front_anticorrelated_dag(self, seed):
        g = layered_dag(6, 4, k=2, seed=seed, fanout=3)
        g = attach_random_weights(
            g, k=2, rng=np.random.default_rng(seed),
            distribution="anticorrelated",
        )
        dest = g.num_vertices - 1
        full = martins(g, 0)
        r = namoa_star(g, 0, dest)
        got = sorted(map(tuple, np.round(r.front(), 9).tolist()))
        ref = sorted(map(tuple, np.round(full.front(dest), 9).tolist()))
        assert got == ref

    def test_three_objectives(self):
        g = erdos_renyi(12, 50, k=3, seed=5)
        dest = 6
        full = martins(g, 0)
        r = namoa_star(g, 0, dest)
        got = sorted(map(tuple, r.front().tolist())) if r.labels else []
        ref = sorted(map(tuple, full.front(dest).tolist())) \
            if full.labels[dest] else []
        assert got == ref

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_settles_more_than_martins(self, seed):
        """The heuristic must prune: NAMOA* settles no more labels than
        the blind enumeration."""
        g = layered_dag(6, 4, k=2, seed=seed, fanout=3)
        g = attach_random_weights(
            g, k=2, rng=np.random.default_rng(seed + 50),
            distribution="anticorrelated",
        )
        dest = g.num_vertices - 1
        full = martins(g, 0)
        r = namoa_star(g, 0, dest)
        assert r.pops <= full.pops


class TestPropertyEquivalence:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000), st.integers(1, 9))
    def test_front_equivalence_random(self, seed, dest):
        g = erdos_renyi(10, 35, k=2, seed=seed % 211)
        full = martins(g, 0)
        r = namoa_star(g, 0, dest)
        got = sorted(map(tuple, r.front().tolist())) if r.labels else []
        ref = sorted(map(tuple, full.front(dest).tolist())) \
            if full.labels[dest] else []
        assert got == ref
