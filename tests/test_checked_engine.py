"""CheckedEngine: the ownership sanitizer one flag away on any backend."""

import numpy as np
import pytest

from repro.core.sosp_update import sosp_update
from repro.core.tree import SOSPTree
from repro.dynamic.changes import ChangeBatch
from repro.errors import OwnershipViolation
from repro.graph.digraph import DiGraph
from repro.parallel import (
    CheckedEngine,
    OwnershipTracker,
    SerialEngine,
    SimulatedEngine,
    ThreadEngine,
    resolve_engine,
)

FAMILIES = ["serial", "threads", "processes", "simulated"]


class TestWrapping:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_resolve_checked_wraps_every_family(self, family):
        eng = resolve_engine(family, threads=2, checked=True)
        assert isinstance(eng, CheckedEngine)
        assert eng.name == f"checked({eng.inner.name})"
        assert isinstance(eng.tracker, OwnershipTracker)
        if hasattr(eng.inner, "close"):
            eng.close()

    def test_instance_gets_wrapped(self):
        raw = SimulatedEngine(threads=4)
        eng = resolve_engine(raw, checked=True)
        assert isinstance(eng, CheckedEngine)
        assert eng.inner is raw

    def test_never_double_wrapped(self):
        eng = resolve_engine("serial", checked=True)
        again = resolve_engine(eng, checked=True)
        assert not isinstance(again.inner, CheckedEngine)
        rewrapped = CheckedEngine(eng)
        assert not isinstance(rewrapped.inner, CheckedEngine)

    def test_env_var_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKED_ENGINES", "1")
        assert isinstance(resolve_engine(None), CheckedEngine)

    def test_env_var_falsy_values_ignored(self, monkeypatch):
        for value in ("", "0", "false"):
            monkeypatch.setenv("REPRO_CHECKED_ENGINES", value)
            assert isinstance(resolve_engine(None), SerialEngine)

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKED_ENGINES", "1")
        assert isinstance(
            resolve_engine(None, checked=False), SerialEngine
        )


class TestDelegation:
    def test_results_unchanged(self):
        eng = CheckedEngine(SerialEngine())
        assert eng.parallel_for([1, 2, 3], lambda x: x * x) == [1, 4, 9]
        total = eng.map_reduce(
            [1, 2, 3], lambda x: x, lambda a, r: a + r, 0
        )
        assert total == 6

    def test_threads_property(self):
        eng = CheckedEngine(SimulatedEngine(threads=8))
        assert eng.threads == 8

    def test_backend_surface_reachable(self):
        eng = CheckedEngine(SimulatedEngine(threads=2))
        eng.parallel_for([1, 2], lambda x: x)
        assert eng.virtual_time > 0.0  # delegated attribute
        eng.charge(10.0)

    def test_superstep_advances_tracker(self):
        eng = CheckedEngine(SerialEngine())
        start = eng.tracker.supersteps
        eng.parallel_for([1], lambda x: x)
        eng.parallel_for([1], lambda x: x)
        assert eng.tracker.supersteps == start + 2


class TestViolationDetection:
    def test_double_write_same_superstep_raises(self):
        eng = CheckedEngine(SerialEngine())

        def task(item):
            task_id, v = item
            eng.tracker.record_write(v, task_id)
            return v

        # two tasks claim vertex 7 inside one superstep
        with pytest.raises(OwnershipViolation):
            eng.parallel_for(list(enumerate([7, 7])), task)

    def test_write_across_supersteps_legal(self):
        eng = CheckedEngine(SerialEngine())

        def task(item):
            task_id, v = item
            eng.tracker.record_write(v, task_id)
            return v

        eng.parallel_for(list(enumerate([7])), task)
        eng.parallel_for(list(enumerate([7])), task)  # new superstep
        assert eng.tracker.writes == 2

    def test_locked_tracker_thread_safe_on_disjoint_vertices(self):
        eng = CheckedEngine(ThreadEngine(threads=4, chunk_size=1))

        def task(item):
            task_id, v = item
            eng.tracker.record_write(v, task_id)
            return v

        items = list(enumerate(range(500)))
        assert eng.parallel_for(items, task) == list(range(500))
        assert eng.tracker.writes == 500
        eng.close()


class TestKernelsUnderCheckedEngines:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_sosp_update_correct_and_tracked(self, family):
        g = DiGraph(6, k=1)
        for u, v, w in [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0),
                        (0, 4, 9.0), (4, 5, 1.0)]:
            g.add_edge(u, v, (w,))
        tree = SOSPTree.build(g, 0, objective=0)
        eng = resolve_engine(family, threads=2, checked=True)
        batch = ChangeBatch.insertions([(3, 5, (1.0,)), (1, 4, (1.0,))])
        batch.apply_to(g)
        sosp_update(g, tree, batch, engine=eng)
        assert tree.dist[4] == pytest.approx(3.0)
        assert tree.dist[5] == pytest.approx(4.0)
        # the kernels picked the engine tracker up automatically
        assert eng.tracker.writes > 0
        if hasattr(eng.inner, "close"):
            eng.close()


class TestWriteSetCrossCheck:
    """CheckedEngine's runtime twin of lint rule R006."""

    def _engine(self):
        from repro.parallel.backends.shm import SharedMemoryEngine

        return CheckedEngine(
            SharedMemoryEngine(threads=1, min_dispatch_items=1)
        )

    def test_static_violation_rejected_before_dispatch(self):
        from repro.errors import WriteSetViolation
        from repro.parallel.api import SlabTask

        eng = self._engine()
        try:
            out = eng.plant("out", np.zeros(8, dtype=np.int64))
            eng.plant("aux", np.zeros(8, dtype=np.int64))
            with pytest.raises(WriteSetViolation, match="static"):
                # intentional drift: the violation under test
                eng.parallel_for_slabs(8, SlabTask(  # repro: noqa(R006)
                    ref="tests._shm_support:sneaky_slab",
                    arrays=("out", "aux"),
                    writes=("out",),
                ))
            # rejected before dispatch: nothing ran, nothing mutated
            assert not out.any()
        finally:
            eng.close()

    def test_dynamic_violation_caught_by_digest(self):
        # the victim key comes from params, so static inference returns
        # an incomplete write-set — only the before/after content
        # digest can see the undeclared mutation
        from repro.analysis import infer_ref_writes
        from repro.errors import WriteSetViolation
        from repro.parallel.api import SlabTask

        ws = infer_ref_writes("tests._shm_support:dynamic_write_slab")
        assert ws is not None and not ws.complete

        eng = self._engine()
        try:
            eng.plant("out", np.zeros(8, dtype=np.int64))
            eng.plant("aux", np.zeros(8, dtype=np.int64))
            with pytest.raises(WriteSetViolation, match="observed"):
                eng.parallel_for_slabs(8, SlabTask(
                    ref="tests._shm_support:dynamic_write_slab",
                    arrays=("out", "aux"),
                    params={"victim": "aux"},
                    writes=("out",),
                ))
        finally:
            eng.close()

    def test_declared_writes_pass(self):
        from repro.parallel.api import SlabTask

        eng = self._engine()
        try:
            out = eng.plant("out", np.ones(8, dtype=np.int64))
            res = eng.parallel_for_slabs(8, SlabTask(
                ref="tests._shm_support:double_slab",
                arrays=("out",),
                writes=("out",),
            ))
            assert sum(res) == 16.0
            assert (out == 2).all()
        finally:
            eng.close()

    def test_writes_none_skips_cross_check(self):
        # writes=None means "unknown: snapshot everything" — the
        # cross-check has no declaration to hold the kernel to
        from repro.parallel.api import SlabTask

        eng = self._engine()
        try:
            eng.plant("out", np.zeros(8, dtype=np.int64))
            eng.plant("aux", np.zeros(8, dtype=np.int64))
            eng.parallel_for_slabs(8, SlabTask(
                ref="tests._shm_support:sneaky_slab",
                arrays=("out", "aux"),
                writes=None,
            ))
        finally:
            eng.close()

    def test_violation_pickles(self):
        import pickle

        from repro.errors import WriteSetViolation

        e = WriteSetViolation("m:fn", ("aux",), "static write-set inference")
        e2 = pickle.loads(pickle.dumps(e))
        assert (e2.ref, e2.arrays, e2.how) == (e.ref, e.arrays, e.how)
        assert "aux" in str(e2)
