"""Unit and oracle tests for the multi-objective substrate."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.errors import AlgorithmError, NotReachableError
from repro.graph import DiGraph, erdos_renyi, layered_dag
from repro.mosp import (
    Label,
    LabelSet,
    MartinsResult,
    dominates,
    dominates_or_equal,
    front_distance,
    is_dominated_by_any,
    martins,
    merge_fronts,
    nondominated_against,
    pareto_filter,
    weighted_sum_path,
)
from repro.mosp.dominance import pareto_filter as pf


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 2), (2, 3))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (1, 2))
        assert not dominates((2, 1), (1, 2))

    def test_paper_figure1_examples(self):
        # §2.1: {u3: (9,10)} is dominated by {u4: (8,10)}
        assert dominates((8, 10), (9, 10))
        # {u4: (14,8)} is dominated by {u2: (11,7)}
        assert dominates((11, 7), (14, 8))

    def test_weak_dominance(self):
        assert dominates_or_equal((1, 2), (1, 2))
        assert dominates_or_equal((1, 2), (2, 2))
        assert not dominates_or_equal((3, 1), (2, 2))

    def test_is_dominated_by_any(self):
        front = np.array([[1.0, 5.0], [5.0, 1.0]])
        assert is_dominated_by_any((2, 6), front)
        assert not is_dominated_by_any((0.5, 0.5), front)
        assert not is_dominated_by_any((1.0, 5.0), front)  # equal, not dominated
        assert not is_dominated_by_any((2, 4), front)

    def test_empty_front_dominates_nothing(self):
        assert not is_dominated_by_any((1, 1), np.empty((0, 2)))

    def test_antisymmetry(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b = rng.uniform(0, 5, 2), rng.uniform(0, 5, 2)
            assert not (dominates(a, b) and dominates(b, a))

    def test_transitivity(self):
        rng = np.random.default_rng(1)
        for _ in range(200):
            a, b, c = rng.uniform(0, 5, (3, 3))
            if dominates(a, b) and dominates(b, c):
                assert dominates(a, c)


class TestParetoFilter:
    def test_basic(self):
        pts = np.array([[1, 5], [5, 1], [3, 3], [4, 4], [2, 6]])
        f = pareto_filter(pts)
        assert sorted(map(tuple, f.tolist())) == [(1, 5), (3, 3), (5, 1)]

    def test_duplicates_kept_once(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 0.5]])
        f = pareto_filter(pts)
        assert len(f) == 2

    def test_empty(self):
        f = pareto_filter(np.empty((0, 2)))
        assert f.shape[0] == 0

    def test_mask_matches_filter(self):
        pts = np.array([[1, 5], [5, 1], [3, 3], [4, 4]])
        f, mask = pareto_filter(pts, return_mask=True)
        assert mask.tolist() == [True, True, True, False]

    def test_single_point(self):
        f = pareto_filter(np.array([[3.0, 4.0]]))
        assert f.tolist() == [[3.0, 4.0]]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pareto_filter(np.array([1.0, 2.0]))

    def test_agrees_with_bruteforce(self):
        rng = np.random.default_rng(2)
        for k in (2, 3):
            pts = rng.integers(0, 6, size=(40, k)).astype(float)
            f = {tuple(r) for r in pareto_filter(pts).tolist()}
            brute = {
                tuple(p)
                for p in pts.tolist()
                if not any(dominates(q, p) for q in pts.tolist())
            }
            assert f == brute


class TestLabelSet:
    def test_insert_and_prune(self):
        s = LabelSet()
        assert s.insert(Label(0, (2.0, 5.0)))
        assert not s.insert(Label(0, (3.0, 6.0)))
        assert s.insert(Label(0, (5.0, 1.0)))
        assert s.insert(Label(0, (1.0, 1.0)))  # dominates everything
        assert len(s) == 1
        assert s.front().tolist() == [[1.0, 1.0]]

    def test_equal_vector_rejected(self):
        s = LabelSet()
        s.insert(Label(0, (2.0, 2.0)))
        assert not s.insert(Label(0, (2.0, 2.0)))

    def test_would_accept(self):
        s = LabelSet()
        s.insert(Label(0, (2.0, 2.0)))
        assert s.would_accept((1.0, 3.0))
        assert not s.would_accept((3.0, 3.0))

    def test_label_path_reconstruction(self):
        a = Label(0, (0.0,))
        b = Label(1, (1.0,), parent=0, parent_label=a)
        c = Label(2, (2.0,), parent=1, parent_label=b)
        assert c.path() == [0, 1, 2]


def brute_force_fronts(g: DiGraph, source: int):
    """Enumerate all simple paths and Pareto-filter their costs."""
    h = nx.MultiDiGraph()
    h.add_nodes_from(range(g.num_vertices))
    for u, v, eid in g.edges():
        h.add_edge(u, v, weight=tuple(g.weight(eid)))
    fronts = {}
    k = g.num_objectives
    for v in range(g.num_vertices):
        costs = []
        if v == source:
            costs.append(tuple([0.0] * k))
        else:
            for path in nx.all_simple_paths(h, source, v):
                # expand parallel-edge choices along the path
                edge_opts = []
                for a, b in zip(path, path[1:]):
                    edge_opts.append(
                        [d["weight"] for d in h.get_edge_data(a, b).values()]
                    )
                for combo in itertools.product(*edge_opts):
                    costs.append(tuple(np.sum(np.asarray(combo), axis=0)))
        if costs:
            fronts[v] = {
                tuple(r) for r in pf(np.asarray(costs, dtype=float)).tolist()
            }
        else:
            fronts[v] = set()
    return fronts


class TestMartins:
    def test_parallel_edges_both_kept(self):
        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (1.0, 10.0))
        g.add_edge(0, 1, (10.0, 1.0))
        r = martins(g, 0)
        assert sorted(map(tuple, r.front(1).tolist())) == [
            (1.0, 10.0),
            (10.0, 1.0),
        ]

    def test_dominated_path_pruned(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        g.add_edge(0, 2, (5.0, 5.0))  # dominated by the two-hop path
        r = martins(g, 0)
        assert r.front(2).tolist() == [[2.0, 2.0]]

    def test_source_front_is_zero(self):
        g = DiGraph(2, k=3)
        g.add_edge(0, 1, (1.0, 1.0, 1.0))
        r = martins(g, 0)
        assert r.front(0).tolist() == [[0.0, 0.0, 0.0]]

    def test_unreachable_empty(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        r = martins(g, 0)
        assert r.labels[2] == []
        assert r.front(2).size == 0

    def test_paths_consistent_with_labels(self):
        g = layered_dag(4, 3, k=2, seed=3)
        r = martins(g, 0)
        for v in range(g.num_vertices):
            for lab in r.labels[v]:
                path = lab.path()
                assert path[0] == 0 and path[-1] == v
                # each hop's distance increment must match some edge
                node = lab
                while node.parent_label is not None:
                    step = node.dist_array() - node.parent_label.dist_array()
                    opts = [
                        g.weight(eid)
                        for bb, eid in g.out_edges(node.parent)
                        if bb == node.vertex
                    ]
                    assert any(
                        np.allclose(step, w) for w in opts
                    ), f"hop ({node.parent}, {node.vertex}) has no matching edge"
                    node = node.parent_label

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_bruteforce_dag(self, seed):
        g = layered_dag(4, 3, k=2, seed=seed, fanout=2)
        r = martins(g, 0)
        ref = brute_force_fronts(g, 0)
        for v in range(g.num_vertices):
            got = {tuple(x) for x in r.front(v).tolist()} if r.labels[v] else set()
            assert got == ref[v], f"vertex {v}"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_against_bruteforce_cyclic(self, seed):
        g = erdos_renyi(8, 20, k=2, seed=seed)
        r = martins(g, 0)
        ref = brute_force_fronts(g, 0)
        for v in range(g.num_vertices):
            got = {tuple(x) for x in r.front(v).tolist()} if r.labels[v] else set()
            assert got == ref[v], f"vertex {v}"

    def test_three_objectives(self):
        g = erdos_renyi(7, 15, k=3, seed=4)
        r = martins(g, 0)
        ref = brute_force_fronts(g, 0)
        for v in range(g.num_vertices):
            got = {tuple(x) for x in r.front(v).tolist()} if r.labels[v] else set()
            assert got == ref[v]

    def test_max_labels_guard(self):
        g = layered_dag(5, 4, k=2, seed=0, fanout=4)
        with pytest.raises(AlgorithmError):
            martins(g, 0, max_labels=2)

    def test_counters_populated(self):
        g = erdos_renyi(10, 30, k=2, seed=0)
        r = martins(g, 0)
        assert r.pops >= 1 and r.inserts >= r.pops


class TestWeightedSum:
    @pytest.fixture
    def tri(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 9.0))
        g.add_edge(1, 2, (1.0, 9.0))
        g.add_edge(0, 2, (9.0, 2.0))
        return g

    def test_uniform_lambda(self, tri):
        path, cost = weighted_sum_path(tri, 0, 2)
        # uniform: (2,18) scores 10, (9,2) scores 5.5 -> direct edge
        assert path == [0, 2]
        assert cost.tolist() == [9.0, 2.0]

    def test_skewed_lambda(self, tri):
        path, cost = weighted_sum_path(tri, 0, 2, lambdas=(1.0, 0.0))
        assert path == [0, 1, 2]
        assert cost.tolist() == [2.0, 18.0]

    def test_result_on_pareto_front(self, tri):
        front = martins(tri, 0).front(2)
        _, cost = weighted_sum_path(tri, 0, 2)
        assert nondominated_against(cost, front)

    def test_unreachable_raises(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        with pytest.raises(NotReachableError):
            weighted_sum_path(g, 0, 2)

    def test_bad_lambdas_rejected(self, tri):
        with pytest.raises(AlgorithmError):
            weighted_sum_path(tri, 0, 2, lambdas=(1.0,))
        with pytest.raises(AlgorithmError):
            weighted_sum_path(tri, 0, 2, lambdas=(-1.0, 2.0))
        with pytest.raises(AlgorithmError):
            weighted_sum_path(tri, 0, 2, lambdas=(0.0, 0.0))


class TestFrontUtilities:
    def test_merge_fronts(self):
        a = np.array([[1.0, 5.0], [4.0, 4.0]])
        b = np.array([[5.0, 1.0], [2.0, 4.0]])
        m = merge_fronts(a, b)
        assert sorted(map(tuple, m.tolist())) == [
            (1.0, 5.0), (2.0, 4.0), (5.0, 1.0)
        ]

    def test_merge_empty(self):
        assert merge_fronts(np.empty((0, 2))).size == 0
        assert merge_fronts().size == 0

    def test_front_distance_on_front(self):
        front = np.array([[1.0, 5.0], [5.0, 1.0]])
        assert front_distance((1.0, 5.0), front) == 0.0

    def test_front_distance_above_front(self):
        front = np.array([[10.0, 10.0]])
        assert front_distance((11.0, 10.0), front) == pytest.approx(0.1)

    def test_front_distance_incomparable_is_zero(self):
        front = np.array([[1.0, 5.0]])
        assert front_distance((2.0, 1.0), front) == 0.0

    def test_front_distance_empty_front(self):
        assert front_distance((1.0, 1.0), np.empty((0, 2))) == 0.0
