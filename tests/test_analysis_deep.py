"""The interprocedural analyzer: R006-R008, formats, baseline, jobs.

Complements ``test_analysis_linter.py`` (the per-rule fixture-corpus
contract) with the machinery the deep rules ride on: write-set
inference through helper calls, report renderers and the SARIF
self-validation, the findings baseline, deterministic parallel runs,
and the stale-noqa pass.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    infer_ref_writes,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    render_findings,
    render_github,
    render_json,
    render_sarif,
    save_baseline,
    split_baselined,
    validate_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).parents[1]


def fixture_findings(name, code):
    return lint_file(
        str(FIXTURES / name), select={code}, respect_scope=False
    )


class TestR006WriteSets:
    def test_direct_undeclared_write_detected(self):
        findings = fixture_findings("r006_bad.py", "R006")
        assert any(
            "undeclared_kernel" in f.message and "marked" in f.message
            for f in findings
        )

    def test_helper_level_write_detected(self):
        # the acceptance case: the kernel itself never touches 'aux';
        # only the helper it passes the view to does
        findings = fixture_findings("r006_bad.py", "R006")
        helper = [f for f in findings if "helper_kernel" in f.message]
        assert len(helper) == 1
        assert "aux" in helper[0].message
        assert helper[0].severity == "error"

    def test_stale_declaration_is_warning(self):
        findings = fixture_findings("r006_bad.py", "R006")
        stale = [
            f for f in findings
            if "never_writes_marked_kernel" in f.message
        ]
        assert len(stale) == 1
        assert stale[0].severity == "warning"
        assert "never writes" in stale[0].message

    def test_phantom_declaration_is_error(self):
        findings = fixture_findings("r006_bad.py", "R006")
        phantom = [
            f for f in findings
            if "phantom_kernel" in f.message and f.severity == "error"
        ]
        assert len(phantom) == 1
        assert "absent from task.arrays" in phantom[0].message

    def test_shipped_kernels_pass(self):
        # meta-test: the real dispatch sites must satisfy their own rule
        for rel in ("src/repro/core/kernels.py", "src/repro/bench/engines.py"):
            findings = lint_file(str(REPO_ROOT / rel), select={"R006"})
            assert findings == [], "\n".join(f.format() for f in findings)

    def test_inference_matches_shipped_declaration(self):
        ws = infer_ref_writes("repro.bench.engines:_span_via_shm")
        assert ws is not None and ws.complete
        assert ws.writes == frozenset({"bench.dist"})

    def test_sosp_kernels_infer_full_write_set(self):
        ws = infer_ref_writes("repro.core.kernels:_propagate_relax_slab")
        assert ws is not None
        assert ws.writes == frozenset(
            {"sosp.dist", "sosp.parent", "sosp.marked"}
        )


class TestR007Scoping:
    def test_engine_vars_do_not_leak_across_functions(self):
        # a ProcessEngine-bound name in one function must not taint the
        # same name bound to an in-process engine in a sibling
        src = (
            "from repro.parallel.backends.processes import ProcessEngine\n"
            "from repro.parallel.backends.threads import ThreadEngine\n\n\n"
            "def uses_processes(items):\n"
            "    eng = ProcessEngine(threads=2)\n"
            "    return eng.parallel_for(items, _task)\n\n\n"
            "def uses_threads(items):\n"
            "    eng = ThreadEngine(threads=2)\n"
            "    return eng.parallel_for(items, lambda x: x)\n\n\n"
            "def _task(x):\n"
            "    return x\n"
        )
        findings = lint_source(
            src, path="tests/fx.py", select={"R007"}, respect_scope=False
        )
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_enclosing_engine_visible_to_nested_scope(self):
        src = (
            "from repro.parallel.backends.processes import ProcessEngine\n"
            "\n\ndef outer(items):\n"
            "    eng = ProcessEngine(threads=2)\n\n"
            "    def run():\n"
            "        return eng.parallel_for(items, lambda x: x)\n\n"
            "    return run()\n"
        )
        findings = lint_source(
            src, path="tests/fx.py", select={"R007"}, respect_scope=False
        )
        assert len(findings) == 1 and "lambda" in findings[0].message


class TestR008Messages:
    def test_nonstrict_guard_named_in_message(self):
        findings = fixture_findings("r008_bad.py", "R008")
        assert any("non-strict" in f.message for f in findings)

    def test_ghost_write_named_in_message(self):
        findings = fixture_findings("r008_bad.py", "R008")
        assert any("ghost_buf" in f.message for f in findings)

    def test_shipped_partitioned_backend_passes(self):
        findings = lint_file(
            str(REPO_ROOT / "src/repro/parallel/backends/partitioned.py"),
            select={"R008"},
        )
        assert findings == [], "\n".join(f.format() for f in findings)


SAMPLE = [
    Finding(path="src/repro/core/x.py", line=3, col=5, code="R006",
            message="drift", hint="declare it"),
    Finding(path="tests/t.py", line=9, col=1, code="R007",
            message="lambda", hint="hoist it", severity="warning"),
]


class TestFormats:
    def test_json_round_trips(self):
        doc = json.loads(render_json(SAMPLE))
        assert doc["count"] == 2
        assert doc["findings"][0]["code"] == "R006"

    def test_github_workflow_commands(self):
        lines = render_github(SAMPLE).splitlines()
        assert lines[0].startswith("::error file=src/repro/core/x.py,line=3,")
        assert lines[1].startswith("::warning file=tests/t.py,")
        assert "title=R006" in lines[0]

    def test_sarif_emitted_document_validates(self):
        doc = json.loads(render_sarif(SAMPLE))
        assert validate_sarif(doc) == []
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["R006", "R007"]
        assert results[0]["level"] == "error"
        assert results[1]["level"] == "warning"

    def test_sarif_validator_rejects_malformed(self):
        doc = json.loads(render_sarif(SAMPLE))
        doc["runs"][0]["results"][0]["ruleId"] = "R999"
        del doc["runs"][0]["results"][1]["message"]
        problems = validate_sarif(doc)
        assert any("R999" in p for p in problems)
        assert any("message.text" in p for p in problems)
        assert validate_sarif({"version": "2.1.0"})  # runs missing
        assert validate_sarif([1, 2])  # not an object

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown format"):
            render_findings(SAMPLE, "xml")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        p = tmp_path / "baseline.json"
        save_baseline(str(p), SAMPLE)
        fps = load_baseline(str(p))
        assert fps == {f.fingerprint for f in SAMPLE}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_split_partitions(self, tmp_path):
        p = tmp_path / "baseline.json"
        save_baseline(str(p), SAMPLE[:1])
        new, old = split_baselined(SAMPLE, load_baseline(str(p)))
        assert new == SAMPLE[1:]
        assert old == SAMPLE[:1]

    def test_fingerprint_is_line_number_free(self):
        moved = Finding(path=SAMPLE[0].path, line=99, col=2,
                        code=SAMPLE[0].code, message=SAMPLE[0].message,
                        hint=SAMPLE[0].hint)
        assert moved.fingerprint == SAMPLE[0].fingerprint

    def test_committed_baseline_is_empty(self):
        # repo policy: fix or suppress with justification, never
        # grandfather — the committed baseline must stay empty
        doc = json.loads(
            (REPO_ROOT / "analysis-baseline.json").read_text()
        )
        assert doc["findings"] == []


class TestFindingContract:
    def test_picklable(self):
        for f in SAMPLE:
            assert pickle.loads(pickle.dumps(f)) == f

    def test_stable_ordering(self):
        shuffled = [SAMPLE[1], SAMPLE[0]]
        assert sorted(shuffled, key=lambda f: f.sort_key) == SAMPLE


class TestJobs:
    def _tree(self, tmp_path):
        d = tmp_path / "src" / "repro" / "core"
        d.mkdir(parents=True)
        (d / "a.py").write_text(
            "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        )
        (d / "b.py").write_text(
            "def g(x):\n    return x\n"
        )
        return tmp_path

    def test_parallel_matches_serial(self, tmp_path):
        root = self._tree(tmp_path)
        serial = lint_paths([str(root)], jobs=1)
        parallel = lint_paths([str(root)], jobs=2)
        assert serial == parallel
        findings, errors = serial
        assert errors == []
        # path order: a.py's R005, then b.py's two R004s (param + return)
        assert [f.code for f in findings] == ["R005", "R004", "R004"]


class TestStaleNoqa:
    SRC = "def f(x: int) -> int:\n    return x  # repro: noqa(R003)\n"

    def test_stale_suppression_reported(self):
        findings = lint_source(self.SRC, path="src/repro/core/x.py")
        assert [f.code for f in findings] == ["R000"]
        assert findings[0].severity == "warning"
        assert "matches no finding" in findings[0].message

    def test_opt_out(self):
        assert lint_source(
            self.SRC, path="src/repro/core/x.py", stale_noqa=False
        ) == []

    def test_live_suppression_not_stale(self):
        src = (
            "def f() -> None:\n    try:\n        pass\n"
            "    except:  # repro: noqa(R003)\n        pass\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_narrow_select_skips_staleness(self):
        # without R000 selected, unused suppressions are indistinguishable
        # from suppressions of unselected rules — stay silent
        assert lint_source(
            self.SRC, path="src/repro/core/x.py", select={"R003"}
        ) == []

    def test_prose_mention_is_not_a_suppression(self):
        src = (
            '"""Docs may say # repro: noqa without suppressing."""\n'
            "X = 1  # see the repro: noqa docs\n"
        )
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestCLI:
    def run_cli(self, *args, cwd=None):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd or REPO_ROOT, env=env,
        )

    def _bad_tree(self, tmp_path):
        d = tmp_path / "src" / "repro" / "core"
        d.mkdir(parents=True)
        (d / "x.py").write_text(
            "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        )
        return tmp_path

    def test_unknown_rule_code_exits_two(self):
        proc = self.run_cli("--rules", "R999", "src")
        assert proc.returncode == 2
        assert "unknown rule code(s): R999" in proc.stderr
        assert "R001" in proc.stderr  # names the valid registry

    def test_rules_alias_matches_select(self):
        a = self.run_cli("--rules", "R005", "src")
        b = self.run_cli("--select", "R005", "src")
        assert (a.returncode, a.stdout) == (b.returncode, b.stdout)

    def test_sarif_output_validates_itself(self, tmp_path):
        root = self._bad_tree(tmp_path)
        out = tmp_path / "report.sarif"
        proc = self.run_cli(
            "--format", "sarif", "--output", str(out), "--no-baseline",
            str(root),
        )
        assert proc.returncode == 1, proc.stderr
        doc = json.loads(out.read_text())
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "R005"

    def test_github_format(self, tmp_path):
        root = self._bad_tree(tmp_path)
        proc = self.run_cli("--format", "github", "--no-baseline", str(root))
        assert proc.returncode == 1
        assert proc.stdout.startswith("::error file=")

    def test_update_baseline_then_clean(self, tmp_path):
        root = self._bad_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        proc = self.run_cli(
            "--baseline", str(baseline), "--update-baseline", str(root)
        )
        assert proc.returncode == 0, proc.stderr
        proc = self.run_cli("--baseline", str(baseline), str(root))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "baselined finding" in proc.stderr

    def test_jobs_output_deterministic(self, tmp_path):
        root = self._bad_tree(tmp_path)
        (root / "src" / "repro" / "core" / "y.py").write_text(
            "def g(x):\n    return x\n"
        )
        serial = self.run_cli("--no-baseline", str(root))
        parallel = self.run_cli("--no-baseline", "--jobs", "2", str(root))
        assert serial.stdout == parallel.stdout
        assert serial.returncode == parallel.returncode == 1

    def test_bad_jobs_exits_two(self):
        proc = self.run_cli("--jobs", "0", "src")
        assert proc.returncode == 2

    def test_no_stale_noqa_flag(self, tmp_path):
        d = tmp_path / "src" / "repro" / "core"
        d.mkdir(parents=True)
        (d / "x.py").write_text(
            "def f(x: int) -> int:\n    return x  # repro: noqa(R003)\n"
        )
        strict = self.run_cli("--no-baseline", str(tmp_path))
        relaxed = self.run_cli(
            "--no-baseline", "--no-stale-noqa", str(tmp_path)
        )
        assert strict.returncode == 1 and "R000" in strict.stdout
        assert relaxed.returncode == 0, relaxed.stdout + relaxed.stderr
