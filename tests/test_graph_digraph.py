"""Unit tests for repro.graph.digraph.DiGraph."""

import numpy as np
import pytest

from repro.errors import EdgeError, VertexError, WeightError
from repro.graph import DiGraph
from repro.graph.validation import validate_digraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.num_objectives == 1

    def test_vertices_only(self):
        g = DiGraph(5)
        assert g.num_vertices == 5
        assert len(g) == 5
        assert list(g.out_edges(0)) == []
        assert list(g.in_edges(4)) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(VertexError):
            DiGraph(-1)

    def test_zero_objectives_rejected(self):
        with pytest.raises(WeightError):
            DiGraph(3, k=0)

    def test_from_edge_list_scalar_weights(self):
        g = DiGraph.from_edge_list(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_edges == 2
        assert g.weight_scalar(0) == 2.0

    def test_from_edge_list_vector_weights(self):
        g = DiGraph.from_edge_list(3, [(0, 1, (2.0, 7.0))], k=2)
        assert g.num_objectives == 2
        assert g.weight(0).tolist() == [2.0, 7.0]


class TestEdgeInsertion:
    def test_add_edge_returns_sequential_ids(self):
        g = DiGraph(3)
        assert g.add_edge(0, 1, 1.0) == 0
        assert g.add_edge(1, 2, 1.0) == 1

    def test_add_edge_updates_both_adjacencies(self):
        g = DiGraph(3)
        eid = g.add_edge(0, 2, 5.0)
        assert list(g.out_edges(0)) == [(2, eid)]
        assert list(g.in_edges(2)) == [(0, eid)]

    def test_parallel_edges_allowed(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        assert g.num_edges == 2
        assert g.min_weight_between(0, 1) == 1.0

    def test_self_loop_allowed(self):
        g = DiGraph(2)
        g.add_edge(0, 0, 1.0)
        assert g.has_edge(0, 0)

    def test_out_of_range_endpoint_rejected(self):
        g = DiGraph(2)
        with pytest.raises(VertexError):
            g.add_edge(0, 2, 1.0)
        with pytest.raises(VertexError):
            g.add_edge(-1, 0, 1.0)

    def test_negative_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, -1.0)

    def test_nan_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, float("nan"))

    def test_inf_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, float("inf"))

    def test_wrong_arity_rejected(self):
        g = DiGraph(2, k=2)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, (1.0,))

    def test_many_inserts_grow_buffer(self):
        g = DiGraph(100)
        rng = np.random.default_rng(0)
        for _ in range(500):
            g.add_edge(int(rng.integers(100)), int(rng.integers(100)), 1.0)
        assert g.num_edges == 500
        validate_digraph(g)


class TestEdgeDeletion:
    def test_remove_edge_id(self):
        g = DiGraph(2)
        eid = g.add_edge(0, 1, 1.0)
        g.remove_edge_id(eid)
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)
        assert not g.is_alive(eid)

    def test_double_delete_rejected(self):
        g = DiGraph(2)
        eid = g.add_edge(0, 1, 1.0)
        g.remove_edge_id(eid)
        with pytest.raises(EdgeError):
            g.remove_edge_id(eid)

    def test_remove_by_endpoints_picks_cheapest_parallel(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 5.0)
        cheap = g.add_edge(0, 1, 1.0)
        removed = g.remove_edge(0, 1)
        assert removed == cheap
        assert g.min_weight_between(0, 1) == 5.0

    def test_remove_missing_edge_rejected(self):
        g = DiGraph(2)
        with pytest.raises(EdgeError):
            g.remove_edge(0, 1)

    def test_iteration_skips_tombstones(self):
        g = DiGraph(3)
        e0 = g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 2.0)
        g.remove_edge_id(e0)
        assert [(v) for v, _ in g.out_edges(0)] == [2]
        assert [u for u, _ in g.in_edges(1)] == []

    def test_compact_preserves_edges_and_resets_tombstones(self):
        g = DiGraph(4)
        ids = [g.add_edge(i, (i + 1) % 4, float(i + 1)) for i in range(4)]
        g.remove_edge_id(ids[1])
        g.compact()
        assert g.num_edges == 3
        assert g.num_edge_slots == 3
        weights = sorted(g.weight_scalar(e) for _, _, e in g.edges())
        assert weights == [1.0, 3.0, 4.0]
        validate_digraph(g)

    def test_compact_noop_when_clean(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.compact()
        assert g.num_edges == 1


class TestQueries:
    @pytest.fixture
    def diamond(self):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 2.0)
        g.add_edge(1, 3, 3.0)
        g.add_edge(2, 3, 4.0)
        return g

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2
        assert diamond.out_degree(3) == 0

    def test_successors_predecessors(self, diamond):
        assert sorted(diamond.successors(0)) == [1, 2]
        assert sorted(diamond.predecessors(3)) == [1, 2]

    def test_edges_iteration(self, diamond):
        edges = {(u, v) for u, v, _ in diamond.edges()}
        assert edges == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_edge_arrays_roundtrip(self, diamond):
        src, dst, w = diamond.edge_arrays()
        assert len(src) == 4
        assert w.shape == (4, 1)
        assert set(zip(src.tolist(), dst.tolist())) == {
            (0, 1), (0, 2), (1, 3), (2, 3)
        }

    def test_copy_is_independent(self, diamond):
        g2 = diamond.copy()
        g2.add_edge(3, 0, 1.0)
        assert diamond.num_edges == 4
        assert g2.num_edges == 5

    def test_reverse(self, diamond):
        r = diamond.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(3, 2)
        assert not r.has_edge(0, 1)

    def test_min_weight_between_missing_is_inf(self, diamond):
        assert diamond.min_weight_between(3, 0) == float("inf")


class TestVertexGrowth:
    def test_add_vertices(self):
        g = DiGraph(2)
        first = g.add_vertices(3)
        assert first == 2
        assert g.num_vertices == 5
        g.add_edge(0, 4, 1.0)
        assert g.has_edge(0, 4)

    def test_add_zero_vertices(self):
        g = DiGraph(2)
        assert g.add_vertices(0) == 2
        assert g.num_vertices == 2

    def test_add_negative_vertices_rejected(self):
        g = DiGraph(2)
        with pytest.raises(VertexError):
            g.add_vertices(-1)


class TestWeights:
    def test_set_weight(self):
        g = DiGraph(2, k=2)
        eid = g.add_edge(0, 1, (1.0, 2.0))
        g.set_weight(eid, (3.0, 4.0))
        assert g.weight(eid).tolist() == [3.0, 4.0]

    def test_set_weight_dead_edge_rejected(self):
        g = DiGraph(2)
        eid = g.add_edge(0, 1, 1.0)
        g.remove_edge_id(eid)
        with pytest.raises(EdgeError):
            g.set_weight(eid, 2.0)

    def test_weight_scalar_objective_selection(self):
        g = DiGraph(2, k=3)
        eid = g.add_edge(0, 1, (1.0, 2.0, 3.0))
        assert g.weight_scalar(eid, 2) == 3.0
