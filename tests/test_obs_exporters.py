"""Round-trip and schema tests for the three span/metric exporters."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    parse_prometheus,
    read_jsonl,
    use_tracer,
    validate_chrome_trace,
)


def _record_spans():
    t = Tracer(recording=True)
    with use_tracer(t):
        with t.span("phase", step="step2"):
            with t.span("superstep", items=4, work_p95=2.0):
                pass
    return t.drain()


class TestJSONL:
    def test_round_trip(self, tmp_path):
        spans = _record_spans()
        path = tmp_path / "spans.jsonl"
        n = export_jsonl(spans, path)
        assert n == 2
        rows = read_jsonl(path)
        assert [r["name"] for r in rows] == ["superstep", "phase"]
        assert rows == [s.to_dict() for s in spans]
        # parent linkage survives the round trip
        assert rows[0]["parent_id"] == rows[1]["span_id"]


class TestChromeTrace:
    def test_export_validates(self, tmp_path):
        spans = _record_spans()
        path = tmp_path / "trace.json"
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        n = export_chrome_trace(spans, path, metrics=reg)
        assert n == 2
        assert validate_chrome_trace(path) == []
        doc = json.loads(path.read_text())
        assert doc["otherData"]["metrics"]["c"] == 3.0
        # timestamps rebased: earliest event starts at 0 µs
        assert min(e["ts"] for e in doc["traceEvents"]) == 0.0

    def test_attrs_and_ids_land_in_args(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(_record_spans(), path)
        doc = json.loads(path.read_text())
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["superstep"]["args"]["items"] == 4
        assert by_name["superstep"]["args"]["parent_id"] == (
            by_name["phase"]["args"]["span_id"]
        )

    def test_open_spans_are_skipped(self, tmp_path):
        rows = [s.to_dict() for s in _record_spans()]
        rows.append({"name": "open", "span_id": 999, "parent_id": None,
                     "start": 1.0, "end": None, "elapsed": 0.0,
                     "thread": 1, "attrs": {}})
        path = tmp_path / "trace.json"
        assert export_chrome_trace(rows, path) == 2

    def test_validator_catches_corruption(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(_record_spans(), path)
        doc = json.loads(path.read_text())
        doc["traceEvents"][0]["ph"] = "B"
        del doc["traceEvents"][1]["args"]["span_id"]
        doc["traceEvents"].append({"name": "", "ph": "X", "ts": -1,
                                   "dur": "x", "pid": 0, "tid": "t",
                                   "args": {}})
        problems = validate_chrome_trace(doc)
        assert any("ph is 'B'" in p for p in problems)
        assert any("span_id" in p for p in problems)
        assert any("ts is not a non-negative number" in p
                   for p in problems)
        assert any("tid is not an integer" in p for p in problems)

    def test_validator_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        problems = validate_chrome_trace(path)
        assert problems and problems[0].startswith("not JSON")

    def test_validator_rejects_wrong_shapes(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]
        assert validate_chrome_trace({}) == ["missing traceEvents list"]
        assert validate_chrome_trace(
            {"traceEvents": ["nope"]}
        ) == ["traceEvents[0]: not an object"]


class TestPrometheus:
    def test_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("updates_total", "updates").inc(3)
        reg.gauge("frontier", "current frontier").set(17)
        h = reg.histogram("batch", "batch sizes")
        for v in (10, 20, 30):
            h.observe(v)
        path = tmp_path / "metrics.prom"
        n = export_prometheus(reg, path)
        samples = parse_prometheus(path.read_text())
        assert n == len(samples) == 6
        assert samples["updates_total"] == 3.0
        assert samples["frontier"] == 17.0
        assert samples['batch{quantile="0.50"}'] == 20.0
        assert samples["batch_sum"] == 60.0
        assert samples["batch_count"] == 3.0

    def test_empty_registry(self, tmp_path):
        path = tmp_path / "m.prom"
        assert export_prometheus(MetricsRegistry(), path) == 0
        assert parse_prometheus(path.read_text()) == {}

    def test_help_and_type_comments_present(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total", "my help").inc()
        text = reg.to_prometheus()
        assert "# HELP c_total my help" in text
        assert "# TYPE c_total counter" in text


class TestParentTimeConsistency:
    """Skewed-clock fixtures: a merged worker span whose timestamps were
    rebased with a broken (or unclamped) clock offset starts before its
    parent superstep — the validator must reject exactly that."""

    @staticmethod
    def _doc(child_ts):
        return {
            "traceEvents": [
                {"name": "superstep", "ph": "X", "ts": 1000.0, "dur": 500.0,
                 "pid": 0, "tid": 0, "args": {"span_id": 1}},
                {"name": "worker.slab", "ph": "X", "ts": child_ts,
                 "dur": 50.0, "pid": 0, "tid": 4711,
                 "args": {"span_id": 2, "parent_id": 1, "worker": "4711"}},
            ]
        }

    def test_rejects_child_starting_before_parent(self):
        problems = validate_chrome_trace(self._doc(child_ts=900.0))
        assert problems == [
            "traceEvents[1]: ts 900.0 precedes parent span 1's start 1000.0"
        ]

    def test_accepts_aligned_child(self):
        assert validate_chrome_trace(self._doc(child_ts=1000.0)) == []
        assert validate_chrome_trace(self._doc(child_ts=1200.0)) == []

    def test_unresolvable_parent_id_is_not_checked(self):
        doc = self._doc(child_ts=900.0)
        doc["traceEvents"][1]["args"]["parent_id"] = 99  # dangling
        assert validate_chrome_trace(doc) == []

    def test_skewed_merge_caught_end_to_end(self, tmp_path):
        """An unclamped negative-offset merge writes a child that leads
        its parent; the exported file must fail validation."""
        rows = [s.to_dict() for s in _record_spans()]
        parent = rows[1]
        skewed = {
            "name": "worker.slab", "span_id": 777,
            "parent_id": parent["span_id"],
            "start": parent["start"] - 10.0,
            "end": parent["start"] - 9.0, "elapsed": 1.0,
            "thread": 4711, "attrs": {"worker": "4711"},
        }
        path = tmp_path / "skewed.json"
        export_chrome_trace(rows + [skewed], path)
        problems = validate_chrome_trace(path)
        assert len(problems) == 1
        assert "precedes parent span" in problems[0]
