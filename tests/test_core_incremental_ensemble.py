"""Tests for the 'Probable Optimization' (IncrementalMOSP)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IncrementalMOSP, SOSPTree, mosp_update
from repro.dynamic import ChangeBatch, ChangeStream, random_insert_batch
from repro.errors import AlgorithmError
from repro.graph import DiGraph, erdos_renyi, grid_road
from repro.parallel import SimulatedEngine
from repro.sssp import dijkstra, frontier_bellman_ford


def build_inc(g, source=0, **kw):
    return IncrementalMOSP(g, source, **kw)


def assert_warm_state_correct(inc):
    """The warm ensemble tree must be a correct SSSP solution of the
    warm ensemble graph, and the per-objective trees must be exact."""
    inc.ensemble_tree.certify(inc.ensemble_graph)
    for i, t in enumerate(inc.trees):
        ref, _ = dijkstra(inc.graph, inc.source, i)
        np.testing.assert_allclose(t.dist, ref, rtol=1e-9)


class TestBootstrap:
    def test_initial_state_matches_from_scratch(self):
        g = erdos_renyi(30, 120, k=2, seed=0)
        inc = build_inc(g)
        assert_warm_state_correct(inc)
        # scalar ensemble distances match a fresh Bellman-Ford
        dist, _ = frontier_bellman_ford(inc.ensemble_graph, 0)
        np.testing.assert_allclose(inc.ensemble_tree.dist, dist)

    def test_result_without_batch(self):
        g = erdos_renyi(20, 80, k=2, seed=1)
        inc = build_inc(g)
        r = inc.result()
        fresh = mosp_update(
            g, [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        )
        # identical reachability; identical scalar optima imply the
        # same ensemble tree distances
        np.testing.assert_array_equal(
            np.isfinite(r.dist_vectors).all(axis=1),
            np.isfinite(fresh.dist_vectors).all(axis=1),
        )


class TestSingleUpdate:
    def test_shortcut_switches_path(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 2.0))
        g.add_edge(1, 2, (1.0, 2.0))
        inc = build_inc(g)
        assert inc.result().path_to(2) == [0, 1, 2]
        batch = ChangeBatch.insertions([(0, 2, (1.5, 1.5))])
        batch.apply_to(g)
        r = inc.update(batch)
        assert r.path_to(2) == [0, 2]
        assert_warm_state_correct(inc)

    def test_ensemble_distances_match_recompute(self):
        g = erdos_renyi(40, 160, k=2, seed=3)
        inc = build_inc(g)
        batch = random_insert_batch(g, 30, seed=4)
        batch.apply_to(g)
        inc.update(batch)
        dist, _ = frontier_bellman_ford(inc.ensemble_graph, 0)
        np.testing.assert_allclose(inc.ensemble_tree.dist, dist, rtol=1e-9)
        assert_warm_state_correct(inc)

    def test_step_timers_present(self):
        g = erdos_renyi(20, 80, k=2, seed=5)
        inc = build_inc(g, engine=SimulatedEngine(threads=4))
        batch = random_insert_batch(g, 10, seed=6)
        batch.apply_to(g)
        r = inc.update(batch)
        assert set(r.step_seconds) == {
            "sosp_update_0", "sosp_update_1", "ensemble",
            "bellman_ford", "reassign",
        }
        assert set(r.step_virtual_seconds) == set(r.step_seconds)

    def test_costs_are_real_path_costs(self):
        g = erdos_renyi(30, 120, k=2, seed=7)
        inc = build_inc(g)
        batch = random_insert_batch(g, 20, seed=8)
        batch.apply_to(g)
        r = inc.update(batch)
        for v in range(g.num_vertices):
            if not np.isfinite(r.dist_vectors[v]).all() or v == 0:
                continue
            path = r.path_to(v)
            cost = np.zeros(2)
            for a, b in zip(path, path[1:]):
                opts = sorted(
                    tuple(g.weight(eid))
                    for bb, eid in g.out_edges(a) if bb == b
                )
                cost += np.asarray(opts[0])
            np.testing.assert_allclose(r.cost_to(v), cost, rtol=1e-9)


class TestStream:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_many_steps_stay_correct(self, seed):
        g = grid_road(6, 6, k=2, seed=seed)
        inc = build_inc(g)
        stream = ChangeStream(g, batch_size=8, steps=5, seed=seed + 10)
        for batch in stream.batches():
            batch.apply_to(g)
            inc.update(batch)
            assert_warm_state_correct(inc)

    def test_matches_fresh_pipeline_each_step(self):
        g = erdos_renyi(25, 100, k=2, seed=9)
        g2 = g.copy()
        inc = build_inc(g)
        fresh_trees = [SOSPTree.build(g2, 0, objective=i) for i in range(2)]
        rng_batches = [random_insert_batch(g, 12, seed=s) for s in (1, 2, 3)]
        for batch in rng_batches:
            batch.apply_to(g)
            batch.apply_to(g2)
            r_inc = inc.update(batch)
            r_fresh = mosp_update(g2, fresh_trees, batch)
            # same ensemble (same trees) => same scalar tree distances
            dist_fresh, _ = frontier_bellman_ford(r_fresh.ensemble.csr, 0)
            np.testing.assert_allclose(
                inc.ensemble_tree.dist, dist_fresh, rtol=1e-9
            )


class TestValidation:
    def test_vertex_growth_rejected(self):
        g = erdos_renyi(10, 40, k=2, seed=0)
        inc = build_inc(g)
        g.add_vertices(1)
        with pytest.raises(AlgorithmError):
            inc.update(ChangeBatch.insertions([]))


class TestPropertyStream:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_random_streams_certified(self, seed):
        g = erdos_renyi(12, 40, k=2, seed=seed % 97)
        inc = build_inc(g)
        rng_seed = seed
        for step in range(3):
            batch = random_insert_batch(g, 5, seed=rng_seed + step)
            batch.apply_to(g)
            inc.update(batch)
        assert_warm_state_correct(inc)
