"""Tracer semantics: nesting, reparenting across backends, overhead.

The contract under test is the ISSUE's tentpole: every
``parallel_for`` superstep appears as a span annotated with phase,
item count, and work distribution, correctly *nested under* its
algorithm-phase span — including on pool threads that never inherited
the caller's context — and the disabled paths stay near-free.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    TracedEngine,
    Tracer,
    current_span,
    get_tracer,
    use_tracer,
)
from repro.parallel import resolve_engine

REPO_ROOT = Path(__file__).parents[1]


def _spawn_span(item):
    """Module-level (picklable) task that opens its own span."""
    with get_tracer().span("task", item=item):
        return item * 2


class TestSpanBasics:
    def test_times_and_elapsed(self):
        t = Tracer(recording=True)
        with use_tracer(t):
            with t.span("outer") as sp:
                assert sp.elapsed == 0.0  # still open
        assert sp.end is not None and sp.end >= sp.start
        assert sp.elapsed == sp.end - sp.start

    def test_nesting_sets_parent_ids(self):
        t = Tracer(recording=True)
        with use_tracer(t):
            with t.span("a") as a:
                with t.span("b") as b:
                    with t.span("c") as c:
                        assert current_span() is c
                assert current_span() is a
            assert current_span() is None
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id

    def test_finish_order_is_close_order(self):
        t = Tracer(recording=True)
        with use_tracer(t):
            with t.span("outer"):
                with t.span("inner"):
                    pass
        assert [s.name for s in t.drain()] == ["inner", "outer"]
        assert t.drain() == []  # drain empties

    def test_passive_tracer_times_but_retains_nothing(self):
        t = Tracer(recording=False)
        with use_tracer(t):
            with t.span("x") as sp:
                pass
        assert sp.elapsed >= 0.0 and sp.end is not None
        assert t.finished == []

    def test_set_attaches_attributes(self):
        sp = Span("s", foo=1)
        sp.set(bar=2)
        d = sp.to_dict()
        assert d["attrs"] == {"foo": 1, "bar": 2}
        assert d["name"] == "s" and d["span_id"] == sp.span_id


class TestNullTracer:
    def test_shared_span_zero_elapsed_nothing_recorded(self):
        t = NullTracer()
        with t.span("anything") as a, t.span("else") as b:
            assert a is b  # one shared dummy span
        assert a.elapsed == 0.0
        assert t.finished == []

    def test_repro_obs_off_selects_null_tracer(self):
        env = dict(os.environ)
        env["REPRO_OBS"] = "off"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import get_tracer; "
             "print(get_tracer().describe())"],
            capture_output=True, text=True, env=env,
        )
        assert proc.stdout.strip() == "off"

    def test_describe_states(self):
        assert NULL_TRACER.describe() == "off"
        assert Tracer(recording=False).describe() == "passive"
        assert Tracer(recording=True).describe() == "recording"


class TestTracedEngineNesting:
    def _run_phase(self, engine_name, threads=1):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            eng = resolve_engine(engine_name, threads=threads)
            assert isinstance(eng, TracedEngine)
            with tracer.span("phase") as phase:
                results = eng.parallel_for(
                    list(range(8)), _spawn_span,
                    work_fn=lambda item, r: 1 + item,
                )
        assert results == [i * 2 for i in range(8)]
        return phase, tracer.drain()

    def test_serial_superstep_nested_under_phase(self):
        phase, spans = self._run_phase("serial")
        ss = [s for s in spans if s.name == "superstep"]
        assert len(ss) == 1
        assert ss[0].parent_id == phase.span_id
        assert ss[0].attrs["phase"] == "phase"
        assert ss[0].attrs["backend"] == "serial"
        assert ss[0].attrs["items"] == 8
        assert ss[0].attrs["work_total"] == sum(1 + i for i in range(8))
        assert ss[0].attrs["work_max"] == 8.0

    def test_threads_worker_spans_reparent_to_superstep(self):
        # worker threads never inherited the caller's contextvars, so
        # reparenting only works through _TaskRunner's attach
        phase, spans = self._run_phase("threads", threads=3)
        ss = [s for s in spans if s.name == "superstep"]
        tasks = [s for s in spans if s.name == "task"]
        assert len(ss) == 1 and ss[0].parent_id == phase.span_id
        assert len(tasks) == 8
        assert {s.parent_id for s in tasks} == {ss[0].span_id}

    def test_processes_superstep_recorded(self):
        # worker processes keep their own (default) tracer; the
        # coordinating side still records the superstep span
        phase, spans = self._run_phase("processes", threads=2)
        ss = [s for s in spans if s.name == "superstep"]
        assert len(ss) == 1 and ss[0].parent_id == phase.span_id
        assert ss[0].attrs["items"] == 8

    def test_map_reduce_emits_superstep_span(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            eng = resolve_engine("serial")
            total = eng.map_reduce(
                [1, 2, 3], lambda x: x, lambda acc, r: acc + r, 0
            )
        assert total == 6
        ss = [s for s in tracer.drain() if s.name == "superstep"]
        assert len(ss) == 1 and ss[0].attrs["op"] == "map_reduce"

    def test_no_wrapping_without_recording_tracer(self):
        with use_tracer(Tracer(recording=False)):
            eng = resolve_engine("serial")
        assert not isinstance(eng, TracedEngine)

    def test_checked_engine_composes_under_tracer(self):
        from repro.parallel.checked import CheckedEngine

        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            eng = resolve_engine("serial", checked=True)
            assert isinstance(eng, TracedEngine)
            assert isinstance(eng.inner, CheckedEngine)
            assert eng.tracker is eng.inner.tracker  # delegation
            eng.parallel_for([0, 1], lambda x: x)
        assert [s.name for s in tracer.drain()] == ["superstep"]

    def test_never_double_wraps(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            eng = resolve_engine("serial")
            again = resolve_engine(eng)
            assert again is eng
            rewrapped = TracedEngine(eng)
            assert not isinstance(rewrapped.inner, TracedEngine)

    def test_simulated_engine_virtual_clock_still_reachable(self):
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            eng = resolve_engine("simulated", threads=4)
            eng.parallel_for([0, 1, 2], lambda x: x,
                             work_fn=lambda i, r: 5.0)
            assert eng.virtual_time > 0.0


class TestOverheadSmoke:
    def test_null_tracer_span_is_cheap(self):
        # not a benchmark — just catches an accidental O(n) or lock on
        # the fully disabled path
        import timeit

        t = NullTracer()

        def loop():
            with t.span("x"):
                pass

        per_call = min(timeit.repeat(loop, number=10_000, repeat=3)) / 10_000
        assert per_call < 50e-6  # generous absolute bound

    def test_overhead_gate_tool_runs(self):
        from repro.obs.__main__ import main as obs_main
        import io

        out = io.StringIO()
        # gate at an absurdly high ratio: this asserts the tool works,
        # CI enforces the real 1.10 budget
        code = obs_main(["overhead", "--gate", "100", "--repeats", "3"],
                        out=out)
        assert code == 0
        assert "ratio" in out.getvalue()
