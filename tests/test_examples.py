"""Smoke tests: every example must run to completion and print the
expected landmarks.  Examples are sized for humans, so the heavier
ones are executed once with reduced scope via environment-free
subprocess runs (they are already small enough for CI)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "fastest" in out and "balanced" in out
    assert "after inserting 2 edges" in out
    # the inserted lean bypass must win the fuel objective
    assert "leanest   route 0->5: [0, 2, 5]" in out


def test_road_traffic():
    out = run_example("road_traffic.py")
    assert "eco-prio" in out        # rush-hour priority switch happened
    assert "per-objective optima" in out
    assert out.count("balanced") >= 3


def test_wsn_data_collection():
    out = run_example("wsn_data_collection.py")
    assert "latency-optimal" in out
    assert "energy-optimal" in out
    assert "balanced MOSP" in out
    assert "updated incrementally" in out


def test_drone_delivery():
    out = run_example("drone_delivery.py")
    # all of the paper's policy branches must appear across missions
    assert "fast" in out
    assert "lean" in out or "balanced" in out
    assert "recharge" in out


def test_pareto_alternatives():
    out = run_example("pareto_alternatives.py")
    assert "Pareto-optimal alternatives" in out
    assert "paper heuristic" in out
    assert "NAMOA*" in out
    assert "front labels changed" in out
