"""Differential-oracle certification of the fully dynamic mixed pipeline.

``apply_mixed_batch`` must leave the SOSP tree *identical* to a
from-scratch Dijkstra recompute of the updated graph — distances
bitwise equal (integer weights make double sums exact) and parents
tree-certified — for arbitrary interleavings of insertions, deletions,
and weight raises/drops, including duplicate and self-cancelling edits
of one edge inside a single batch.  The property is certified on both
the pointer-chasing reference path and the CSR kernel path (driven
through the incremental ``CSRGraph.apply_batch`` mutation), across
single batches and multi-batch sequences.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SOSPTree, apply_mixed_batch, sosp_update
from repro.dynamic import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_WEIGHT,
    ChangeBatch,
    random_mixed_batch,
)
from repro.errors import AlgorithmError
from repro.graph import DiGraph, grid_road
from repro.graph.csr import CSRGraph
from repro.sssp import dijkstra


def build_graph(n, k, edges):
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


def make_batch(records, k):
    """``records`` = [(kind, u, v, weight_vector), ...] in order."""
    return ChangeBatch(
        np.array([r[1] for r in records], dtype=np.int64),
        np.array([r[2] for r in records], dtype=np.int64),
        np.array([r[3] for r in records], dtype=np.float64).reshape(
            len(records), k
        ),
        np.array([r[0] for r in records], dtype=np.int8),
    )


@st.composite
def graph_and_mixed_batches(draw, k=1, max_n=14, max_batches=1):
    """A random digraph plus mixed batches biased to hit live edges.

    Half the delete / weight-change records aim at base-graph edges (so
    tree edges actually get cut or re-weighted); the rest use uniform
    endpoints, covering no-op edits of absent edges.  Duplicate
    ``(u, v)`` records and insert-then-delete interleavings arise
    naturally from independent draws.
    """
    n = draw(st.integers(min_value=2, max_value=max_n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    wvec = st.tuples(*([weight] * k))
    vertex = st.integers(0, n - 1)
    edge = st.tuples(vertex, vertex, wvec)
    base = draw(st.lists(edge, min_size=0, max_size=3 * n))
    pair = st.tuples(vertex, vertex)
    if base:
        pair = st.one_of(
            st.sampled_from([(u, v) for u, v, _ in base]), pair
        )
    record = st.tuples(
        st.sampled_from([KIND_DELETE, KIND_INSERT, KIND_WEIGHT]),
        pair,
        wvec,
    ).map(lambda r: (r[0], r[1][0], r[1][1], r[2]))
    n_batches = draw(st.integers(1, max_batches))
    batches = [
        make_batch(draw(st.lists(record, min_size=1, max_size=10)), k)
        for _ in range(n_batches)
    ]
    return build_graph(n, k, base), batches


def assert_matches_dijkstra(g, tree, exact=True):
    ref, _ = dijkstra(g, tree.source, tree.objective)
    if exact:  # integer weights: double sums are exact, demand bitwise
        np.testing.assert_array_equal(tree.dist, ref)
    else:
        np.testing.assert_allclose(tree.dist, ref, rtol=1e-9)
    tree.certify(g)


@pytest.mark.slow
class TestDifferentialOracle:
    @given(data=graph_and_mixed_batches())
    def test_reference_path_equals_dijkstra(self, data):
        g, batches = data
        tree = SOSPTree.build(g, 0)
        for batch in batches:
            batch.apply_to(g)
            apply_mixed_batch(g, tree, batch)
        assert_matches_dijkstra(g, tree)

    @given(data=graph_and_mixed_batches(max_batches=3))
    def test_csr_path_equals_dijkstra_incrementally(self, data):
        """Kernel path, with the snapshot mutated via ``apply_batch``
        instead of re-frozen — certifying the CSR tombstone/overwrite
        machinery against the DiGraph as a side effect."""
        g, batches = data
        tree = SOSPTree.build(g, 0)
        snapshot = CSRGraph.from_digraph(g)
        for batch in batches:
            batch.apply_to(g)
            snapshot.apply_batch(batch)
            assert snapshot.num_edges == g.num_edges
            apply_mixed_batch(
                g, tree, batch, use_csr_kernels=True, csr=snapshot
            )
        assert_matches_dijkstra(g, tree)
        su, sv, sw = g.edge_arrays()
        expected = sorted(zip(su.tolist(), sv.tolist(), sw.tolist()))
        got = sorted((u, v, np.atleast_1d(w).tolist())
                     for u, v, w in snapshot.edges())
        assert got == expected

    @given(data=graph_and_mixed_batches(k=2, max_n=10))
    def test_second_objective_tree(self, data):
        g, batches = data
        tree = SOSPTree.build(g, 0, objective=1)
        for batch in batches:
            batch.apply_to(g)
            apply_mixed_batch(g, tree, batch)
        assert_matches_dijkstra(g, tree)

    @settings(max_examples=50)
    @given(seed=st.integers(0, 10**6))
    def test_generator_batches_on_road_grid(self, seed):
        """The benchmark-shaped workload: generator mixed batches over
        a road grid, reference and CSR paths in lockstep."""
        g = grid_road(5, 5, seed=seed % 97)
        g2 = copy.deepcopy(g)
        tree = SOSPTree.build(g, 0)
        tree2 = SOSPTree.build(g2, 0)
        snapshot = CSRGraph.from_digraph(g2)
        batch = random_mixed_batch(
            g, 25, insert_fraction=0.4, seed=seed,
            weight_change_fraction=0.3,
        )
        batch.apply_to(g)
        apply_mixed_batch(g, tree, batch)
        batch.apply_to(g2)
        snapshot.apply_batch(batch)
        apply_mixed_batch(
            g2, tree2, batch, use_csr_kernels=True, csr=snapshot
        )
        assert_matches_dijkstra(g, tree, exact=False)
        np.testing.assert_array_equal(tree2.dist, tree.dist)
        tree2.certify(g2)


class TestEdgeCases:
    """Deterministic regressions for the trickiest interleavings."""

    def _updated(self, g, batch, use_csr=False):
        tree = SOSPTree.build(g, 0)
        snapshot = CSRGraph.from_digraph(g) if use_csr else None
        batch.apply_to(g)
        if snapshot is not None:
            snapshot.apply_batch(batch)
        stats = apply_mixed_batch(
            g, tree, batch, use_csr_kernels=use_csr, csr=snapshot
        )
        assert_matches_dijkstra(g, tree)
        return tree, stats

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_weight_raise_on_tree_edge_reroutes(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        batch = ChangeBatch.weight_changes([(1, 2, 9.0)])
        tree, stats = self._updated(g, batch, use_csr)
        assert tree.dist[2] == 5.0 and tree.parent[2] == 0
        assert stats.invalidated == 1

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_weight_drop_on_tree_edge_improves_without_invalidate(
        self, use_csr
    ):
        g = build_graph(4, 1, [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
        batch = ChangeBatch.weight_changes([(0, 1, 1.0)])
        tree, stats = self._updated(g, batch, use_csr)
        assert tree.dist.tolist() == [0.0, 1.0, 3.0, 5.0]
        assert stats.invalidated == 0  # drops never invalidate

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_weight_drop_on_nontree_edge_steals_subtree(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        batch = ChangeBatch.weight_changes([(0, 2, 1.0)])
        tree, _ = self._updated(g, batch, use_csr)
        assert tree.dist[2] == 1.0 and tree.parent[2] == 0

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_weight_raise_on_nontree_edge_noop(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        batch = ChangeBatch.weight_changes([(0, 2, 9.0)])
        tree, stats = self._updated(g, batch, use_csr)
        assert tree.dist[2] == 2.0
        assert stats.invalidated == 0

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_self_cancelling_insert_then_delete(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 4.0)])
        batch = make_batch(
            [(KIND_INSERT, 1, 2, (1.0,)), (KIND_DELETE, 1, 2, (0.0,))],
            k=1,
        )
        tree, _ = self._updated(g, batch, use_csr)
        assert np.isinf(tree.dist[2])

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_delete_then_reinsert_same_edge(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 1.0), (1, 2, 1.0)])
        batch = make_batch(
            [(KIND_DELETE, 1, 2, (0.0,)), (KIND_INSERT, 1, 2, (4.0,))],
            k=1,
        )
        tree, _ = self._updated(g, batch, use_csr)
        assert tree.dist[2] == 5.0

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_duplicate_weight_changes_last_wins(self, use_csr):
        g = build_graph(2, 1, [(0, 1, 5.0)])
        batch = ChangeBatch.weight_changes([(0, 1, 9.0), (0, 1, 2.0)])
        tree, _ = self._updated(g, batch, use_csr)
        assert tree.dist[1] == 2.0

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_weight_change_of_absent_edge_noop(self, use_csr):
        g = build_graph(3, 1, [(0, 1, 1.0)])
        batch = ChangeBatch.weight_changes([(1, 2, 3.0)])
        tree, stats = self._updated(g, batch, use_csr)
        assert np.isinf(tree.dist[2])
        assert stats.invalidated == 0

    @pytest.mark.parametrize("use_csr", [False, True])
    def test_parallel_edge_shields_weight_raise(self, use_csr):
        g = build_graph(2, 1, [(0, 1, 3.0), (0, 1, 3.0)])
        batch = ChangeBatch.weight_changes([(0, 1, 8.0)])
        tree, stats = self._updated(g, batch, use_csr)
        assert tree.dist[1] == 3.0  # the twin still certifies
        assert stats.invalidated == 0

    def test_sosp_update_rejects_weight_changes(self):
        g = build_graph(2, 1, [(0, 1, 1.0)])
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.weight_changes([(0, 1, 2.0)])
        with pytest.raises(AlgorithmError, match="weight changes"):
            sosp_update(g, tree, batch)

    def test_csr_out_of_sync_rejected(self):
        g = build_graph(3, 1, [(0, 1, 1.0), (1, 2, 1.0)])
        tree = SOSPTree.build(g, 0)
        snapshot = CSRGraph.from_digraph(g)
        batch = ChangeBatch.deletions([(1, 2)])
        batch.apply_to(g)  # snapshot NOT updated
        with pytest.raises(AlgorithmError, match="apply_batch"):
            apply_mixed_batch(
                g, tree, batch, use_csr_kernels=True, csr=snapshot
            )

    def test_dynamic_front_rejects_weight_changes(self):
        from repro.mosp.dynamic_front import DynamicParetoFront

        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.weight_changes([(0, 1, (2.0, 2.0))])
        batch.apply_to(g)
        with pytest.raises(AlgorithmError, match="weight-change"):
            dpf.update(batch)

    def test_mosp_update_routes_mixed_batches(self):
        g = build_graph(
            4, 2,
            [
                (0, 1, (1.0, 4.0)),
                (1, 2, (1.0, 4.0)),
                (0, 2, (4.0, 1.0)),
                (2, 3, (1.0, 1.0)),
            ],
        )
        from repro.core import mosp_update

        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        batch = make_batch(
            [
                (KIND_WEIGHT, 1, 2, (9.0, 9.0)),
                (KIND_DELETE, 2, 3, (0.0, 0.0)),
                (KIND_INSERT, 0, 3, (2.0, 2.0)),
            ],
            k=2,
        )
        batch.apply_to(g)
        r = mosp_update(g, trees, batch, use_csr_kernels=True)
        for i, t in enumerate(trees):
            ref, _ = dijkstra(g, 0, i)
            np.testing.assert_array_equal(t.dist, ref)
        assert r.cost_to(3).tolist() == [2.0, 2.0]
