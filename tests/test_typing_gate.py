"""Typing/lint gate: runs mypy and ruff when available, skips otherwise.

The container running tier-1 may not ship the dev tools (they install
via ``pip install -e .[dev]``); CI's ``lint-typecheck`` job always has
them, so these tests enforce the gate wherever the tools exist without
making the bare-environment suite fail.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parents[1]


def run_tool(*argv):
    return subprocess.run(
        argv, capture_output=True, text=True, cwd=REPO_ROOT
    )


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_clean():
    proc = run_tool("mypy", "--strict", "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = run_tool("ruff", "check", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()


def test_package_data_declares_py_typed():
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "py.typed" in text


def test_linter_needs_no_extra_tooling():
    # the custom analyzer must run on a bare interpreter
    proc = run_tool(sys.executable, "-c", "import ast, re")
    assert proc.returncode == 0
