"""Tests for repro.dynamic: batches, generators, streams, workloads."""

import numpy as np
import pytest

from repro.dynamic import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_WEIGHT,
    ChangeBatch,
    ChangeStream,
    local_insert_batch,
    random_delete_batch,
    random_insert_batch,
    random_mixed_batch,
    random_weight_change_batch,
)
from repro.dynamic.workloads import (
    drone_delivery_scenario,
    road_traffic_scenario,
    wsn_scenario,
)
from repro.errors import BatchError
from repro.graph import DiGraph, erdos_renyi, grid_road
from repro.graph.analysis import bfs_hops


class TestChangeBatch:
    def test_insertions_constructor(self):
        b = ChangeBatch.insertions([(0, 1, 2.0), (1, 2, (3.0,))])
        assert b.num_insertions == 2
        assert b.num_objectives == 1

    def test_empty_insertions(self):
        b = ChangeBatch.insertions([])
        assert len(b) == 0

    def test_deletions_constructor(self):
        b = ChangeBatch.deletions([(0, 1)], k=2)
        assert b.num_deletions == 1
        assert b.num_objectives == 2

    def test_mixed_arity_rejected(self):
        with pytest.raises(BatchError):
            ChangeBatch.insertions([(0, 1, (1.0,)), (1, 2, (1.0, 2.0))])

    def test_length_mismatch_rejected(self):
        with pytest.raises(BatchError):
            ChangeBatch([0], [1, 2], np.ones((1, 1)), [True])

    def test_negative_vertex_rejected(self):
        with pytest.raises(BatchError):
            ChangeBatch.insertions([(-1, 0, 1.0)])

    def test_nan_insert_weight_rejected(self):
        with pytest.raises(BatchError):
            ChangeBatch.insertions([(0, 1, float("nan"))])

    def test_concat_preserves_order(self):
        a = ChangeBatch.insertions([(0, 1, 1.0)])
        b = ChangeBatch.deletions([(2, 3)])
        c = ChangeBatch.concat(a, b)
        assert c.num_changes == 2
        assert c.insert_mask.tolist() == [True, False]

    def test_concat_k_mismatch_rejected(self):
        a = ChangeBatch.insertions([(0, 1, 1.0)])
        b = ChangeBatch.insertions([(0, 1, (1.0, 2.0))])
        with pytest.raises(BatchError):
            ChangeBatch.concat(a, b)

    def test_concat_empty_rejected(self):
        with pytest.raises(BatchError):
            ChangeBatch.concat()

    def test_only_filters(self):
        c = ChangeBatch.concat(
            ChangeBatch.insertions([(0, 1, 1.0)]),
            ChangeBatch.deletions([(2, 3)]),
        )
        assert c.only_insertions().num_changes == 1
        assert c.only_deletions().num_changes == 1

    def test_apply_to_inserts_and_deletes(self):
        g = DiGraph(4)
        g.add_edge(2, 3, 1.0)
        batch = ChangeBatch.concat(
            ChangeBatch.insertions([(0, 1, 5.0)]),
            ChangeBatch.deletions([(2, 3)]),
        )
        eids = batch.apply_to(g)
        assert g.has_edge(0, 1)
        assert not g.has_edge(2, 3)
        assert len(eids) == 1

    def test_apply_missing_deletion_is_noop(self):
        g = DiGraph(3)
        ChangeBatch.deletions([(0, 1)]).apply_to(g)  # nothing to delete
        assert g.num_edges == 0

    def test_apply_out_of_range_rejected(self):
        g = DiGraph(2)
        with pytest.raises(BatchError):
            ChangeBatch.insertions([(0, 5, 1.0)]).apply_to(g)

    def test_apply_k_mismatch_rejected(self):
        g = DiGraph(2, k=2)
        with pytest.raises(BatchError):
            ChangeBatch.insertions([(0, 1, 1.0)]).apply_to(g)

    # -- mixed-kind record semantics (fully dynamic pipeline) ----------
    def test_weight_changes_constructor(self):
        b = ChangeBatch.weight_changes([(0, 1, 2.0), (1, 2, (3.0,))])
        assert b.num_weight_changes == 2
        assert b.num_insertions == 0 and b.num_deletions == 0
        assert b.kind.tolist() == [KIND_WEIGHT, KIND_WEIGHT]

    def test_apply_weight_change_overwrites_live_edge(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 5.0)
        ChangeBatch.weight_changes([(0, 1, 2.0)]).apply_to(g)
        assert g.num_edges == 1
        assert g.min_weight_between(0, 1, 0) == 2.0

    def test_apply_weight_change_missing_edge_is_noop(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        ChangeBatch.weight_changes([(1, 2, 9.0)]).apply_to(g)
        assert g.num_edges == 1
        assert not g.has_edge(1, 2)

    def test_apply_weight_change_targets_lex_min_parallel_edge(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 4.0)
        ChangeBatch.weight_changes([(0, 1, 9.0)]).apply_to(g)
        # the w=1 twin is rewritten; the w=4 twin survives untouched
        assert g.min_weight_between(0, 1, 0) == 4.0

    def test_apply_duplicate_deletions_remove_distinct_edges(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        b = ChangeBatch.deletions([(0, 1), (0, 1), (0, 1)])
        b.apply_to(g)  # third record finds nothing: idempotent skip
        assert g.num_edges == 0

    def test_apply_delete_removes_same_batch_insert(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        b = ChangeBatch(
            np.array([1, 1], dtype=np.int64),
            np.array([2, 2], dtype=np.int64),
            np.array([[7.0], [0.0]]),
            np.array([KIND_INSERT, KIND_DELETE], dtype=np.int8),
        )
        b.apply_to(g)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1

    def test_apply_consecutive_weight_changes_last_wins(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 5.0)
        ChangeBatch.weight_changes([(0, 1, 9.0), (0, 1, 2.0)]).apply_to(g)
        assert g.num_edges == 1
        assert g.min_weight_between(0, 1, 0) == 2.0

    def test_concat_reconciles_deletion_arity(self):
        # deletion-only batches are k-agnostic: their zero weights pad
        # to the weighted batches' arity instead of raising
        c = ChangeBatch.concat(
            ChangeBatch.insertions([(0, 1, (1.0, 2.0))]),
            ChangeBatch.deletions([(2, 3)]),  # built with default k=1
        )
        assert c.num_objectives == 2
        assert c.num_insertions == 1 and c.num_deletions == 1

    def test_concat_weighted_arity_conflict_still_rejected(self):
        a = ChangeBatch.weight_changes([(0, 1, 1.0)])
        b = ChangeBatch.insertions([(0, 1, (1.0, 2.0))])
        with pytest.raises(BatchError):
            ChangeBatch.concat(a, b)

    def test_only_weight_changes_filter(self):
        c = ChangeBatch.concat(
            ChangeBatch.insertions([(0, 1, 1.0)]),
            ChangeBatch.weight_changes([(1, 2, 3.0)]),
            ChangeBatch.deletions([(2, 3)]),
        )
        w = c.only_weight_changes()
        assert w.num_changes == 1 and w.num_weight_changes == 1
        assert c.only_deletions().num_changes == 1


class TestGenerators:
    def test_random_insert_size_and_range(self):
        g = erdos_renyi(20, 60, seed=0)
        b = random_insert_batch(g, 100, seed=1)
        assert b.num_insertions == 100
        assert b.src.max() < 20 and b.dst.max() < 20
        assert (b.src != b.dst).all()

    def test_random_insert_deterministic(self):
        g = erdos_renyi(20, 60, seed=0)
        b1 = random_insert_batch(g, 30, seed=5)
        b2 = random_insert_batch(g, 30, seed=5)
        np.testing.assert_array_equal(b1.src, b2.src)
        np.testing.assert_array_equal(b1.weights, b2.weights)

    def test_random_insert_too_small_graph(self):
        with pytest.raises(BatchError):
            random_insert_batch(DiGraph(1), 5)

    def test_local_insert_endpoints_close(self):
        g = grid_road(10, 10, seed=0, drop_fraction=0.0)
        b = local_insert_batch(g, 40, hops=3, seed=2)
        for u, v in zip(b.src.tolist(), b.dst.tolist()):
            hops = bfs_hops(g, u)
            assert 1 <= hops[v] <= 3

    def test_local_insert_needs_edges(self):
        with pytest.raises(BatchError):
            local_insert_batch(DiGraph(5), 3)

    def test_local_insert_bad_hops(self):
        g = erdos_renyi(10, 30, seed=0)
        with pytest.raises(BatchError):
            local_insert_batch(g, 3, hops=0)

    def test_delete_batch_from_live_edges(self):
        g = erdos_renyi(15, 40, seed=3)
        live = {(u, v) for u, v, _ in g.edges()}
        b = random_delete_batch(g, 10, seed=4)
        assert b.num_deletions == 10
        for u, v in zip(b.src.tolist(), b.dst.tolist()):
            assert (u, v) in live

    def test_delete_more_than_live_rejected(self):
        g = erdos_renyi(5, 6, seed=0)
        with pytest.raises(BatchError):
            random_delete_batch(g, 100)

    def test_mixed_fraction(self):
        g = erdos_renyi(30, 200, seed=5)
        b = random_mixed_batch(g, 40, insert_fraction=0.75, seed=6)
        assert b.num_insertions == 30
        assert b.num_deletions == 10

    def test_mixed_bad_fraction(self):
        g = erdos_renyi(5, 10, seed=0)
        with pytest.raises(BatchError):
            random_mixed_batch(g, 4, insert_fraction=1.5)

    def test_weight_change_batch_targets_live_edges(self):
        g = erdos_renyi(15, 40, seed=3)
        live = {(u, v) for u, v, _ in g.edges()}
        b = random_weight_change_batch(g, 10, seed=4)
        assert b.num_weight_changes == 10
        assert len(b) == 10
        for u, v in zip(b.src.tolist(), b.dst.tolist()):
            assert (u, v) in live

    def test_weight_change_batch_too_large_rejected(self):
        g = erdos_renyi(5, 6, seed=0)
        with pytest.raises(BatchError):
            random_weight_change_batch(g, 100)

    def test_mixed_with_weight_changes_counts(self):
        g = erdos_renyi(30, 200, seed=5)
        b = random_mixed_batch(g, 40, insert_fraction=0.5, seed=6,
                               weight_change_fraction=0.25)
        assert b.num_insertions == 20
        assert b.num_weight_changes == 10
        assert b.num_deletions == 10

    def test_mixed_shuffle_preserves_kinds(self):
        # regression: the shuffle used to rebuild the batch from
        # insert_mask, silently collapsing weight changes into deletions
        g = erdos_renyi(30, 200, seed=7)
        b = random_mixed_batch(g, 30, insert_fraction=0.4, seed=8,
                               weight_change_fraction=0.3)
        kinds = sorted(b.kind.tolist())
        assert kinds.count(KIND_INSERT) == 12
        assert kinds.count(KIND_WEIGHT) == 9
        assert kinds.count(KIND_DELETE) == 9

    def test_mixed_weight_change_fraction_overflow_rejected(self):
        g = erdos_renyi(10, 30, seed=0)
        with pytest.raises(BatchError):
            random_mixed_batch(g, 10, insert_fraction=0.8,
                               weight_change_fraction=0.5)


class TestChangeStream:
    def test_batches_do_not_mutate(self):
        g = erdos_renyi(10, 30, seed=0)
        before = g.num_edges
        stream = ChangeStream(g, batch_size=5, steps=3, seed=1)
        batches = list(stream.batches())
        assert len(batches) == 3
        assert g.num_edges == before

    def test_play_applies_and_calls_back(self):
        g = erdos_renyi(10, 30, seed=0)
        before = g.num_edges
        seen = []
        stream = ChangeStream(g, batch_size=5, steps=4, seed=1)
        steps = stream.play(on_batch=lambda t, b: seen.append((t, len(b))))
        assert steps == 4
        assert g.num_edges == before + 20
        assert seen == [(0, 5), (1, 5), (2, 5), (3, 5)]

    def test_mixed_stream(self):
        g = erdos_renyi(20, 100, seed=2)
        stream = ChangeStream(g, batch_size=10, steps=2,
                              insert_fraction=0.5, seed=3)
        for b in stream.batches():
            assert b.num_deletions > 0

    def test_stream_with_weight_changes(self):
        g = erdos_renyi(20, 100, seed=2)
        stream = ChangeStream(g, batch_size=10, steps=2,
                              insert_fraction=0.5,
                              weight_change_fraction=0.2, seed=3)
        for b in stream.batches():
            assert b.num_weight_changes > 0
            assert b.num_insertions > 0

    def test_bad_params(self):
        g = erdos_renyi(5, 10, seed=0)
        with pytest.raises(BatchError):
            ChangeStream(g, batch_size=-1, steps=1)
        with pytest.raises(BatchError):
            ChangeStream(g, batch_size=1, steps=-1)


class TestWorkloads:
    @pytest.mark.parametrize("builder", [
        lambda: road_traffic_scenario(n=200, steps=2, batch_size=5),
        lambda: wsn_scenario(n=200, steps=2, batch_size=5),
        lambda: drone_delivery_scenario(n=200, steps=2, batch_size=5),
    ])
    def test_scenarios_well_formed(self, builder):
        s = builder()
        assert s.graph.num_objectives == 2
        assert 0 <= s.source < s.graph.num_vertices
        assert len(s.objective_names) == 2
        batches = list(s.stream.batches())
        assert len(batches) == 2

    def test_anticorrelated_objectives(self):
        s = road_traffic_scenario(n=400, steps=1, batch_size=1)
        w = np.array([s.graph.weight(e) for _, _, e in s.graph.edges()])
        r = np.corrcoef(w[:, 0], w[:, 1])[0, 1]
        assert r < -0.2  # time/fuel trade-off present

    def test_scenarios_deterministic(self):
        a = road_traffic_scenario(n=150, seed=9)
        b = road_traffic_scenario(n=150, seed=9)
        assert a.graph.num_edges == b.graph.num_edges


class TestPlayFailureResync:
    """Satellite bug: ``play`` mutates the graph before the callback.

    A consumer that raises used to leave the graph silently one batch
    ahead of the tree it maintained.  The applied-but-unconsumed batch
    must now be parked on :attr:`pending`, ``play`` must refuse to run
    until it is resynced, and ``resync`` hands it back exactly once."""

    def _failing_stream(self):
        g = erdos_renyi(10, 30, seed=0)
        stream = ChangeStream(g, batch_size=5, steps=4, seed=1)
        seen = []

        def boom(t, batch):
            if t == 1:
                raise RuntimeError("consumer died mid-stream")
            seen.append((t, batch))

        return g, stream, seen, boom

    def test_failed_callback_parks_the_applied_batch(self):
        g, stream, seen, boom = self._failing_stream()
        before = g.num_edges
        with pytest.raises(RuntimeError):
            stream.play(on_batch=boom)
        # two batches reached the graph, the consumer only saw one
        assert g.num_edges == before + 10
        assert len(seen) == 1
        assert stream.pending is not None
        assert stream.pending.num_changes == 5

    def test_play_refuses_until_resynced(self):
        g, stream, _, boom = self._failing_stream()
        with pytest.raises(RuntimeError):
            stream.play(on_batch=boom)
        with pytest.raises(BatchError, match="pending"):
            stream.play()
        parked = stream.resync()
        assert parked is not None and parked.num_changes == 5
        assert stream.pending is None
        assert stream.resync() is None  # handed back exactly once
        # caught up: the stream is usable again
        assert stream.play() == 4

    def test_clean_play_leaves_nothing_pending(self):
        g = erdos_renyi(10, 30, seed=0)
        stream = ChangeStream(g, batch_size=5, steps=3, seed=1)
        assert stream.play() == 3
        assert stream.pending is None


class TestEditFeed:
    """Flattening batches to per-edge edits and back (service ingest)."""

    def test_round_trip_preserves_records(self):
        from repro.dynamic import batch_of, edits_of

        b = ChangeBatch(
            np.array([0, 1, 2]), np.array([1, 2, 3]),
            np.array([[2.0], [0.0], [4.0]]),
            np.array([KIND_INSERT, KIND_DELETE, KIND_WEIGHT],
                     dtype=np.int8),
        )
        edits = list(edits_of(b))
        assert [e.kind for e in edits] == [
            KIND_INSERT, KIND_DELETE, KIND_WEIGHT
        ]
        assert edits[1].weights is None  # deletions carry no weights
        rb = batch_of(edits, k=1)
        np.testing.assert_array_equal(rb.src, b.src)
        np.testing.assert_array_equal(rb.dst, b.dst)
        np.testing.assert_array_equal(rb.kind, b.kind)
        np.testing.assert_array_equal(rb.weights, b.weights)

    def test_batch_of_validates_arity(self):
        from repro.dynamic import EdgeEdit, batch_of

        with pytest.raises(BatchError):
            batch_of([EdgeEdit(KIND_INSERT, 0, 1, (1.0, 2.0))], k=1)
        with pytest.raises(BatchError):
            batch_of([EdgeEdit(KIND_WEIGHT, 0, 1, None)], k=1)
        assert batch_of([], k=1).num_changes == 0

    def test_stream_edits_applies_and_flattens(self):
        from itertools import islice

        from repro.dynamic import stream_edits

        g = erdos_renyi(10, 30, seed=0)
        before = g.num_edges
        stream = ChangeStream(g, batch_size=5, steps=2, seed=1)
        edits = list(islice(stream_edits(stream), 10))
        assert len(edits) == 10
        assert g.num_edges == before + 10
