"""Worker-side collection: buffers, capture scopes, clock-aligned merge."""

import pickle

import pytest

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    WorkerCapture,
    WorkerReport,
    estimate_offset,
    merge_report,
    merge_reports,
    obs_header,
    use_metrics,
    use_tracer,
)
from repro.obs.collect import SpanBuffer, WorkerCollector
from repro.obs.tracer import NULL_TRACER, Span


class TestSpanBuffer:
    def test_appends_in_order(self):
        buf = SpanBuffer(capacity=4)
        for name in ("a", "b", "c"):
            buf.append(Span(name))
        assert [s.name for s in buf.spans()] == ["a", "b", "c"]
        assert len(buf) == 3
        assert buf.dropped == 0

    def test_overflow_drops_and_counts_instead_of_growing(self):
        buf = SpanBuffer(capacity=2)
        slots_before = buf._slots
        for i in range(5):
            buf.append(Span(f"s{i}"))
        assert len(buf) == 2
        assert buf.dropped == 3
        assert [s.name for s in buf.spans()] == ["s0", "s1"]
        # the preallocated slot list is never replaced or grown
        assert buf._slots is slots_before
        assert len(buf._slots) == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ReproError):
            SpanBuffer(capacity=0)


class TestWorkerCollector:
    def test_records_closed_spans_into_buffer(self):
        c = WorkerCollector(capacity=8)
        with c.span("outer"):
            with c.span("inner"):
                pass
        names = [s.name for s in c.buffer.spans()]
        assert names == ["inner", "outer"]  # completion order
        assert c.describe() == "collecting"

    def test_drain_swaps_buffer(self):
        c = WorkerCollector(capacity=8)
        with c.span("one"):
            pass
        assert [s.name for s in c.drain()] == ["one"]
        assert len(c.buffer) == 0

    def test_drain_preserves_cumulative_drop_count(self):
        """Satellite bug: drain() used to swap in a buffer with
        ``dropped = 0``, so a collector drained mid-chunk under-counted
        ``worker_spans_dropped_total`` — the counter must keep
        counting, never reset."""
        c = WorkerCollector(capacity=2)
        for i in range(5):
            with c.span(f"s{i}"):
                pass
        assert c.buffer.dropped == 3
        c.drain()
        assert c.buffer.dropped == 3  # carried, not reset
        for i in range(4):
            with c.span(f"t{i}"):
                pass
        # 2 recorded into the fresh buffer, 2 more dropped on top
        assert c.buffer.dropped == 5
        assert len(c.buffer) == 2


class TestWorkerCapture:
    def test_capture_installs_and_restores_process_state(self):
        header = {"t_send": 0.0, "capacity": 16.0}
        tracer = Tracer(recording=False)
        with use_tracer(tracer):
            with WorkerCapture(header) as cap:
                with cap.task("worker.slab", lo=0, hi=4) as sp:
                    pass
                assert sp.attrs == {"lo": 0, "hi": 4}
            report = cap.report()
        assert report.pid > 0
        assert report.t_reply >= report.t_recv
        assert [r["name"] for r in report.spans] == ["worker.slab"]
        assert report.metrics["worker_tasks_total"][0] == "counter"
        assert report.metrics["worker_tasks_total"][1] == 1.0
        assert report.dropped == 0

    def test_report_round_trips_through_pickle(self):
        with WorkerCapture({"t_send": 0.0}) as cap:
            with cap.task("worker.chunk"):
                pass
        report = pickle.loads(pickle.dumps(cap.report()))
        assert isinstance(report, WorkerReport)
        assert [r["name"] for r in report.spans] == ["worker.chunk"]

    def test_capacity_flows_from_header(self):
        with WorkerCapture({"t_send": 0.0, "capacity": 2.0}) as cap:
            for i in range(5):
                with cap.task(f"t{i}"):
                    pass
        report = cap.report()
        assert len(report.spans) == 2
        assert report.dropped == 3


class TestObsHeader:
    def test_none_unless_recording(self):
        with use_tracer(Tracer(recording=False)):
            assert obs_header() is None
        with use_tracer(NULL_TRACER):
            assert obs_header() is None

    def test_header_when_recording(self):
        with use_tracer(Tracer(recording=True)):
            header = obs_header(capacity=64)
        assert header is not None
        assert header["capacity"] == 64.0
        assert header["t_send"] > 0.0


class TestEstimateOffset:
    def test_recovers_known_skew(self):
        # worker clock runs 100s ahead; symmetric 1ms dispatch legs
        skew = 100.0
        t_send, t_done = 10.0, 10.012
        t_recv = t_send + 0.001 + skew
        t_reply = t_done - 0.001 + skew
        assert estimate_offset(t_send, t_recv, t_reply, t_done) == (
            pytest.approx(skew, abs=1e-9)
        )

    def test_asymmetry_error_bounded_by_round_trip(self):
        # all dispatch latency on the send leg: worst-case asymmetry
        est = estimate_offset(0.0, 0.010, 0.010, 0.010)
        assert abs(est - 0.0) <= 0.010 / 2 + 1e-12


def _skewed_report(skew, *, parent_chain=True, foreign_parent=None):
    """A report whose worker clock runs ``skew`` seconds off."""
    outer = {"name": "worker.outer", "span_id": 1, "parent_id": foreign_parent,
             "start": 5.0 + skew, "end": 5.4 + skew, "elapsed": 0.4,
             "thread": 1, "attrs": {"kernel": "k"}}
    inner = {"name": "worker.inner", "span_id": 2,
             "parent_id": 1 if parent_chain else None,
             "start": 5.1 + skew, "end": 5.2 + skew, "elapsed": 0.1,
             "thread": 1, "attrs": {}}
    return WorkerReport(
        pid=4711, t_recv=5.0 + skew, t_reply=5.4 + skew,
        spans=[inner, outer],  # completion order: child first
        metrics={"worker_tasks_total": ("counter", 2.0)},
        dropped=1,
    )


class TestMergeReport:
    def test_reparents_rebases_and_labels(self):
        skew = 1000.0
        report = _skewed_report(skew)
        tracer = Tracer(recording=True)
        registry = MetricsRegistry(enabled=True)
        with use_tracer(tracer), use_metrics(registry):
            with tracer.span("superstep") as anchor:
                n = merge_reports([report], t_send=5.0, anchor=anchor,
                                  labels={"shard": "3"})
        assert n == 2
        spans = {s.name: s for s in tracer.drain()}
        outer, inner = spans["worker.outer"], spans["worker.inner"]
        # top-level worker span hangs off the anchor; nesting preserved
        assert outer.parent_id == anchor.span_id
        assert inner.parent_id == outer.span_id
        # fresh master ids, not the worker's colliding counters
        assert outer.span_id not in (1, 2)
        # rebased onto the master clock: inside the anchor window
        assert anchor.start <= outer.start <= outer.end <= (
            anchor.end + 0.5
        )
        assert outer.attrs["worker"] == "4711"
        assert outer.attrs["shard"] == "3"
        assert "clock_offset" in outer.attrs
        assert outer.thread == 4711
        snap = registry.snapshot()
        assert snap['worker_tasks_total{shard="3",worker="4711"}'] == 2.0
        assert snap["worker_spans_dropped_total"] == 1.0

    def test_start_clamped_to_anchor(self):
        # worker claims to have started *before* the dispatch: the
        # merged span must be clamped to the anchor's start
        report = _skewed_report(0.0)
        report.spans[1]["start"] = -50.0
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            with tracer.span("superstep") as anchor:
                merge_report(report, t_send=5.0, t_done=5.5, anchor=anchor)
        outer = [s for s in tracer.drain() if s.name == "worker.outer"][0]
        assert outer.start >= anchor.start
        assert outer.end >= outer.start

    def test_unresolvable_parent_falls_back_to_anchor(self):
        # a pickled closure can attach the *master's* span id inside
        # the worker; that id must not leak into the merged trace
        report = _skewed_report(0.0, parent_chain=True, foreign_parent=999)
        tracer = Tracer(recording=True)
        with use_tracer(tracer):
            with tracer.span("superstep") as anchor:
                merge_report(report, t_send=5.0, t_done=5.5, anchor=anchor)
        outer = [s for s in tracer.drain() if s.name == "worker.outer"][0]
        assert outer.parent_id == anchor.span_id

    def test_passive_tracer_merges_metrics_only(self):
        report = _skewed_report(0.0)
        tracer = Tracer(recording=False)
        registry = MetricsRegistry(enabled=True)
        n = merge_report(report, t_send=5.0, t_done=5.5,
                         tracer=tracer, registry=registry)
        assert n == 0
        assert registry.snapshot()['worker_tasks_total{worker="4711"}'] == 2.0


class TestBufferOverflowE2E:
    """Satellite fixture: overflow through the *real* dispatch path.

    A slab kernel emits far more spans than the worker's preallocated
    buffer holds; the drop count must accumulate master-side across
    chunks and supersteps (keep counting, not saturate) while the
    merged trace still validates."""

    def test_dispatch_overflow_counts_and_trace_validates(self, tmp_path):
        import numpy as np

        from repro.obs import (
            export_chrome_trace,
            get_metrics,
            validate_chrome_trace,
        )
        from repro.obs.engine import TracedEngine
        from repro.parallel import SharedMemoryEngine, SlabTask

        spam = "tests._shm_support:spam_spans_slab"
        tracer = Tracer(recording=True)
        with use_tracer(tracer), use_metrics():
            e = TracedEngine(SharedMemoryEngine(threads=2,
                                                min_dispatch_items=1))
            e.plant("out", np.zeros(4, dtype=np.float64))
            task = SlabTask(ref=spam, arrays=("out",),
                            params={"spans": 600}, writes=("out",))
            e.parallel_for_slabs(4, task)
            registry = get_metrics()
            first = registry.snapshot()["worker_spans_dropped_total"]
            # each slab span costs capacity; 600 spans/slab >> 512 slots
            assert first > 0
            e.parallel_for_slabs(4, task)
            second = registry.snapshot()["worker_spans_dropped_total"]
            # accumulates across supersteps — no saturation, no reset
            assert second > first
            e.close()
        spans = tracer.drain()
        assert sum(1 for s in spans if s.name == "spam") > 0
        path = tmp_path / "overflow-trace.json"
        export_chrome_trace(spans, path)
        assert validate_chrome_trace(path) == []
