"""Property-based round-trip and cross-representation invariants."""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, DiGraph
from repro.graph.io import edge_list_to_string, read_edge_list
from repro.graph.validation import validate_csr, validate_digraph
from repro.sssp import bellman_ford, delta_stepping, dijkstra, frontier_bellman_ford

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, k_choices=(1, 2, 3), max_n=12):
    n = draw(st.integers(1, max_n))
    k = draw(st.sampled_from(k_choices))
    weight = st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
                       width=32)
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.tuples(*([weight] * k)),
    )
    edges = draw(st.lists(edge, max_size=4 * n))
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    return g


def edge_multiset(g):
    return sorted(
        (u, v, tuple(np.round(g.weight(e), 6))) for u, v, e in g.edges()
    )


class TestRoundTrips:
    @SETTINGS
    @given(small_graphs())
    def test_edge_list_roundtrip(self, g):
        h = read_edge_list(io.StringIO(edge_list_to_string(g)))
        assert h.num_vertices == g.num_vertices
        assert h.num_objectives == g.num_objectives
        assert edge_multiset(h) == edge_multiset(g)

    @SETTINGS
    @given(small_graphs())
    def test_csr_roundtrip(self, g):
        csr = CSRGraph.from_digraph(g)
        validate_csr(csr)
        h = csr.to_digraph()
        assert edge_multiset(h) == edge_multiset(g)

    @SETTINGS
    @given(small_graphs())
    def test_copy_and_reverse_involution(self, g):
        validate_digraph(g)
        rr = g.reverse().reverse()
        assert edge_multiset(rr) == edge_multiset(g)
        assert edge_multiset(g.copy()) == edge_multiset(g)


class TestSolverAgreement:
    @SETTINGS
    @given(small_graphs(k_choices=(1,)), st.integers(0, 11))
    def test_all_solvers_agree(self, g, source_raw):
        source = source_raw % g.num_vertices
        d1, _ = dijkstra(g, source)
        d2, _ = bellman_ford(g, source)
        d3, _ = delta_stepping(g, source)
        d4, _ = frontier_bellman_ford(g, source)
        np.testing.assert_allclose(d1, d2, rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(d1, d3, rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(d1, d4, rtol=1e-6, atol=1e-9)

    @SETTINGS
    @given(small_graphs(k_choices=(2,)), st.integers(0, 11))
    def test_objectives_independent(self, g, source_raw):
        """Solving objective i must ignore the other columns."""
        source = source_raw % g.num_vertices
        for i in range(2):
            di, _ = dijkstra(g, source, objective=i)
            # rebuild a single-objective graph from column i
            h = DiGraph(g.num_vertices, k=1)
            for u, v, e in g.edges():
                h.add_edge(u, v, (g.weight_scalar(e, i),))
            dh, _ = dijkstra(h, source)
            np.testing.assert_allclose(di, dh, rtol=1e-9)
