"""Unit tests for repro.graph.csr.CSRGraph."""

import numpy as np
import pytest

from repro.errors import GraphError, VertexError
from repro.graph import CSRGraph, DiGraph
from repro.graph.generators import erdos_renyi, grid_road
from repro.graph.validation import validate_csr


@pytest.fixture
def diamond_csr():
    g = DiGraph(4, k=2)
    g.add_edge(0, 1, (1.0, 10.0))
    g.add_edge(0, 2, (2.0, 20.0))
    g.add_edge(1, 3, (3.0, 30.0))
    g.add_edge(2, 3, (4.0, 40.0))
    return CSRGraph.from_digraph(g)


class TestConstruction:
    def test_shapes(self, diamond_csr):
        c = diamond_csr
        assert c.n == 4 and c.m == 4 and c.k == 2
        assert c.indptr.shape == (5,)
        assert c.indices.shape == (4,)
        assert c.weights.shape == (4, 2)

    def test_empty(self):
        c = CSRGraph(3, np.empty(0, np.int64), np.empty(0, np.int64),
                     np.empty((0, 1)))
        assert c.m == 0
        assert c.out_neighbors(0).size == 0
        assert c.in_neighbors(2).size == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0]), np.array([1, 0]), np.array([[1.0]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(VertexError):
            CSRGraph(2, np.array([0]), np.array([5]), np.array([[1.0]]))

    def test_1d_weights_promoted(self):
        c = CSRGraph(2, np.array([0]), np.array([1]), np.array([3.0]))
        assert c.k == 1
        assert c.weights.shape == (1, 1)


class TestAdjacency:
    def test_out_neighbors(self, diamond_csr):
        assert sorted(diamond_csr.out_neighbors(0).tolist()) == [1, 2]
        assert diamond_csr.out_neighbors(3).size == 0

    def test_in_neighbors(self, diamond_csr):
        assert sorted(diamond_csr.in_neighbors(3).tolist()) == [1, 2]
        assert diamond_csr.in_neighbors(0).size == 0

    def test_out_weights_aligned(self, diamond_csr):
        nbrs = diamond_csr.out_neighbors(0).tolist()
        ws = diamond_csr.out_weights(0).tolist()
        pairs = dict(zip(nbrs, ws))
        assert pairs == {1: 1.0, 2: 2.0}

    def test_in_weights_aligned(self, diamond_csr):
        nbrs = diamond_csr.in_neighbors(3).tolist()
        ws = diamond_csr.in_weights(3).tolist()
        pairs = dict(zip(nbrs, ws))
        assert pairs == {1: 3.0, 2: 4.0}

    def test_in_weight_vectors(self, diamond_csr):
        nbrs = diamond_csr.in_neighbors(3).tolist()
        wvs = diamond_csr.in_weight_vectors(3)
        pairs = {n: tuple(w) for n, w in zip(nbrs, wvs.tolist())}
        assert pairs == {1: (3.0, 30.0), 2: (4.0, 40.0)}

    def test_degrees(self, diamond_csr):
        assert diamond_csr.out_degree(0) == 2
        assert diamond_csr.in_degree(3) == 2
        assert diamond_csr.average_degree() == 1.0

    def test_edges_iteration(self, diamond_csr):
        edges = {(u, v) for u, v, _ in diamond_csr.edges()}
        assert edges == {(0, 1), (0, 2), (1, 3), (2, 3)}


class TestRoundTrips:
    def test_to_digraph_roundtrip(self, diamond_csr):
        g = diamond_csr.to_digraph()
        c2 = CSRGraph.from_digraph(g)
        assert c2.m == diamond_csr.m
        assert sorted(zip(c2.src.tolist(), c2.indices.tolist())) == sorted(
            zip(diamond_csr.src.tolist(), diamond_csr.indices.tolist())
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graph_validates(self, seed):
        g = erdos_renyi(50, 200, seed=seed)
        c = CSRGraph.from_digraph(g)
        validate_csr(c)

    def test_grid_road_validates(self):
        g = grid_road(8, 9, seed=3)
        validate_csr(CSRGraph.from_digraph(g))

    def test_tombstoned_edges_excluded(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        dead = g.add_edge(1, 2, 1.0)
        g.remove_edge_id(dead)
        c = CSRGraph.from_digraph(g)
        assert c.m == 1
        assert c.out_neighbors(1).size == 0

    def test_parallel_edges_preserved(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        c = CSRGraph.from_digraph(g)
        assert c.m == 2
        assert c.out_neighbors(0).tolist() == [1, 1]
        assert sorted(c.out_weights(0).tolist()) == [1.0, 2.0]
        assert sorted(c.in_weights(1).tolist()) == [1.0, 2.0]


class TestSnapshotIdentity:
    """Duplicated snapshots must not inherit the original's uid: a
    pickle/deepcopy clone sharing ``(uid, version)`` fingerprints would
    let a shared-memory engine skip re-planting and run kernels on
    stale planted data."""

    def test_pickle_roundtrip_reassigns_uid(self, diamond_csr):
        import pickle

        clone = pickle.loads(pickle.dumps(diamond_csr))
        assert clone.uid != diamond_csr.uid
        assert clone.base_stamp != diamond_csr.base_stamp
        assert clone.tail_stamp != diamond_csr.tail_stamp
        # contents and behaviour survive the round trip
        np.testing.assert_array_equal(clone.indptr, diamond_csr.indptr)
        np.testing.assert_array_equal(clone.indices, diamond_csr.indices)
        np.testing.assert_array_equal(clone.weights, diamond_csr.weights)
        assert clone.in_neighbors(3).tolist() == \
            diamond_csr.in_neighbors(3).tolist()

    def test_deepcopy_reassigns_uid(self, diamond_csr):
        import copy

        clone = copy.deepcopy(diamond_csr)
        assert clone.base_stamp != diamond_csr.base_stamp
        # the clones diverge independently afterwards
        clone.append_edges(np.array([3]), np.array([0]),
                           np.array([[1.0, 1.0]]))
        assert diamond_csr.num_tail_edges == 0
        assert clone.num_tail_edges == 1
