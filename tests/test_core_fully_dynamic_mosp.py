"""Mixed insert/delete batches through the full MOSP pipelines."""

import numpy as np
import pytest

from repro.core import IncrementalMOSP, SOSPTree, mosp_update
from repro.dynamic import ChangeBatch, random_mixed_batch
from repro.graph import erdos_renyi, grid_road
from repro.sssp import dijkstra, frontier_bellman_ford


def trees_correct(g, trees):
    for i, t in enumerate(trees):
        ref, _ = dijkstra(g, t.source, i)
        np.testing.assert_allclose(t.dist, ref, rtol=1e-9)


class TestMospUpdateMixed:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_batch_trees_correct(self, seed):
        g = erdos_renyi(40, 200, k=2, seed=seed)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        batch = random_mixed_batch(g, 40, insert_fraction=0.5,
                                   seed=seed + 9)
        batch.apply_to(g)
        r = mosp_update(g, trees, batch)
        trees_correct(g, trees)
        # returned costs are real path costs
        for v in range(g.num_vertices):
            if np.isfinite(r.dist_vectors[v]).all() and v != 0:
                path = r.path_to(v)
                assert path[0] == 0 and path[-1] == v

    def test_deletion_only_batch(self):
        g = grid_road(6, 6, k=2, seed=3)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        batch = ChangeBatch.deletions(
            [next(iter((u, v) for u, v, _ in g.edges()))], k=2
        )
        batch.apply_to(g)
        mosp_update(g, trees, batch)
        trees_correct(g, trees)

    def test_step_timers_with_mixed_batch(self):
        g = erdos_renyi(25, 120, k=2, seed=4)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        batch = random_mixed_batch(g, 20, insert_fraction=0.5, seed=5)
        batch.apply_to(g)
        r = mosp_update(g, trees, batch)
        assert "sosp_update_0" in r.step_seconds
        assert "bellman_ford" in r.step_seconds


class TestInsertThenDeleteSameEdge:
    """Regression: a mixed batch may insert an edge and then delete it
    (records apply in order, deletion removes the cheapest live twin).
    Updates must seed from the *live* graph, never from a phantom
    record weight — hypothesis originally found this via
    test_mosp_dynamic_front.py::TestProperty::test_fully_dynamic_streams.
    """

    def make_batch(self, k):
        # insert a very cheap (0, 2) edge, then delete (0, 2): the
        # deletion removes the cheap twin, leaving only the original
        return ChangeBatch.concat(
            ChangeBatch.insertions([(0, 2, tuple([0.1] * k))]),
            ChangeBatch.deletions([(0, 2)], k=k),
        )

    def test_sosp_update_fulldynamic(self):
        from repro.core import sosp_update_fulldynamic
        from repro.graph import DiGraph

        g = DiGraph(3, k=1)
        g.add_edge(0, 1, (1.0,))
        g.add_edge(1, 2, (1.0,))
        g.add_edge(0, 2, (9.0,))
        tree = SOSPTree.build(g, 0)
        batch = self.make_batch(1)
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert tree.dist[2] == 2.0  # not 0.1
        tree.certify(g)

    def test_dynamic_pareto_front(self):
        from repro.graph import DiGraph
        from repro.mosp import DynamicParetoFront, martins

        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        g.add_edge(0, 2, (9.0, 0.5))
        dpf = DynamicParetoFront(g, 0)
        batch = self.make_batch(2)
        batch.apply_to(g)
        dpf.update(batch)
        ref = martins(g, 0)
        got = sorted(map(tuple, dpf.front(2).tolist()))
        want = sorted(map(tuple, ref.front(2).tolist()))
        assert got == want
        assert (0.1, 0.1) not in got  # the phantom cost

    def test_incremental_mosp(self):
        from repro.graph import DiGraph

        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        g.add_edge(0, 2, (9.0, 9.0))
        inc = IncrementalMOSP(g, 0)
        batch = self.make_batch(2)
        batch.apply_to(g)
        r = inc.update(batch)
        trees_correct(g, inc.trees)
        assert r.cost_to(2).tolist() == [2.0, 2.0]


class TestIncrementalMOSPMixed:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_stream_stays_correct(self, seed):
        g = erdos_renyi(30, 150, k=2, seed=seed)
        inc = IncrementalMOSP(g, 0)
        for step in range(3):
            batch = random_mixed_batch(g, 20, insert_fraction=0.6,
                                       seed=seed * 11 + step)
            batch.apply_to(g)
            inc.update(batch)
            trees_correct(g, inc.trees)
            inc.ensemble_tree.certify(inc.ensemble_graph)
            dist, _ = frontier_bellman_ford(inc.ensemble_graph, 0)
            np.testing.assert_allclose(inc.ensemble_tree.dist, dist,
                                       rtol=1e-9)

    def test_disconnecting_deletion(self):
        from repro.graph import DiGraph

        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 2, (1.0, 1.0))
        inc = IncrementalMOSP(g, 0)
        assert inc.result().path_to(2) == [0, 1, 2]
        batch = ChangeBatch.deletions([(1, 2)], k=2)
        batch.apply_to(g)
        r = inc.update(batch)
        assert not np.isfinite(r.dist_vectors[2]).all()
        inc.ensemble_tree.certify(inc.ensemble_graph)
