"""Tests for Algorithm 2 (mosp_update): pipeline, theorems, quality."""

import numpy as np
import pytest

from repro.core import SOSPTree, mosp_update
from repro.dynamic import ChangeBatch, random_insert_batch
from repro.errors import AlgorithmError, NotReachableError
from repro.graph import DiGraph, erdos_renyi, grid_road
from repro.mosp import martins, nondominated_against
from repro.parallel import SerialEngine, SimulatedEngine, ThreadEngine
from repro.sssp import dijkstra


def build_trees(g, source=0):
    return [SOSPTree.build(g, source, objective=i)
            for i in range(g.num_objectives)]


def path_cost(g, path):
    """True multi-objective cost of a vertex path (min parallel edge
    by lexicographic weight, matching _representative_weight)."""
    k = g.num_objectives
    cost = np.zeros(k)
    for u, v in zip(path, path[1:]):
        opts = sorted(
            tuple(g.weight(eid)) for vv, eid in g.out_edges(u) if vv == v
        )
        assert opts, f"missing edge ({u}, {v})"
        cost += np.asarray(opts[0])
    return cost


class TestPipelineBasics:
    def test_static_recombine_no_batch(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 4.0))
        g.add_edge(1, 2, (1.0, 4.0))
        g.add_edge(0, 2, (4.0, 1.0))
        trees = build_trees(g)
        r = mosp_update(g, trees)
        # both candidate paths are Pareto optimal; result must be one
        assert r.path_to(2) in ([0, 1, 2], [0, 2])
        np.testing.assert_allclose(r.cost_to(2), path_cost(g, r.path_to(2)))

    def test_dist_vectors_consistent_with_paths(self):
        g = erdos_renyi(30, 150, k=2, seed=0)
        trees = build_trees(g)
        r = mosp_update(g, trees)
        for v in range(g.num_vertices):
            if np.isfinite(r.dist_vectors[v]).all() and v != 0:
                p = r.path_to(v)
                np.testing.assert_allclose(
                    r.cost_to(v), path_cost(g, p), rtol=1e-9
                )

    def test_source_cost_zero(self):
        g = erdos_renyi(10, 40, k=2, seed=1)
        r = mosp_update(g, build_trees(g))
        assert r.cost_to(0).tolist() == [0.0, 0.0]

    def test_unreachable_vertex_raises(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 1.0))
        r = mosp_update(g, build_trees(g))
        with pytest.raises(NotReachableError):
            r.path_to(2)

    def test_reachability_matches_sosp(self):
        g = erdos_renyi(40, 120, k=2, seed=2)
        trees = build_trees(g)
        r = mosp_update(g, trees)
        d0, _ = dijkstra(g, 0, 0)
        finite = np.isfinite(r.dist_vectors).all(axis=1)
        np.testing.assert_array_equal(finite, np.isfinite(d0))

    def test_per_objective_cost_lower_bounded_by_sosp(self):
        # no path can beat the per-objective optimum
        g = erdos_renyi(40, 200, k=2, seed=3)
        trees = build_trees(g)
        r = mosp_update(g, trees)
        for i in range(2):
            di, _ = dijkstra(g, 0, i)
            reach = np.isfinite(di)
            assert np.all(r.dist_vectors[reach, i] >= di[reach] - 1e-9)


class TestWithBatch:
    @pytest.mark.parametrize("engine", [
        None, SerialEngine(), ThreadEngine(threads=3),
        SimulatedEngine(threads=4),
    ], ids=lambda e: getattr(e, "name", "default"))
    def test_update_then_recombine(self, engine):
        g = erdos_renyi(50, 200, k=2, seed=4)
        trees = build_trees(g)
        batch = random_insert_batch(g, 60, seed=5)
        batch.apply_to(g)
        r = mosp_update(g, trees, batch, engine=engine)
        # step 1 must leave each tree a correct SSSP solution
        for i, t in enumerate(trees):
            ref, _ = dijkstra(g, 0, i)
            np.testing.assert_allclose(t.dist, ref, rtol=1e-9)
        assert len(r.update_stats) == 2
        # and the MOSP costs must be real path costs
        for v in range(g.num_vertices):
            if np.isfinite(r.dist_vectors[v]).all() and v != 0:
                np.testing.assert_allclose(
                    r.cost_to(v), path_cost(g, r.path_to(v)), rtol=1e-9
                )

    def test_step_timers_populated(self):
        g = erdos_renyi(30, 120, k=2, seed=6)
        trees = build_trees(g)
        batch = random_insert_batch(g, 30, seed=7)
        batch.apply_to(g)
        r = mosp_update(g, trees, batch)
        assert set(r.step_seconds) == {
            "sosp_update_0", "sosp_update_1", "ensemble",
            "bellman_ford", "reassign",
        }
        assert all(v >= 0 for v in r.step_seconds.values())

    def test_virtual_timers_with_simulated_engine(self):
        g = erdos_renyi(30, 120, k=2, seed=6)
        trees = build_trees(g)
        batch = random_insert_batch(g, 30, seed=7)
        batch.apply_to(g)
        eng = SimulatedEngine(threads=4)
        r = mosp_update(g, trees, batch, engine=eng)
        assert set(r.step_virtual_seconds) == set(r.step_seconds)
        assert sum(r.step_virtual_seconds.values()) <= eng.virtual_time + 1e-12


class TestStatsEmission:
    """Every Step-1 tree update emits stats exactly once — through
    ``_record_tree_stats`` — on both Algorithm-2 drivers."""

    def _counted(self, fn):
        from repro.obs import use_metrics

        with use_metrics() as reg:
            r = fn()
        snap = reg.snapshot()
        return r, snap.get("mosp_tree_updates_total", 0.0)

    def test_insert_batch_exactly_once_per_tree(self):
        g = erdos_renyi(40, 160, k=2, seed=20)
        trees = build_trees(g)
        batch = random_insert_batch(g, 30, seed=21)
        batch.apply_to(g)
        r, count = self._counted(lambda: mosp_update(g, trees, batch))
        assert count == 2.0
        assert len(r.update_stats) == 2

    def test_mixed_batch_exactly_once_per_tree(self):
        g = erdos_renyi(40, 200, k=2, seed=22)
        trees = build_trees(g)
        edges = list(g.edges())
        dels = [(u, v) for u, v, _ in edges[:5]]
        batch = ChangeBatch.concat(
            ChangeBatch.deletions(dels, k=2),
            random_insert_batch(g, 20, seed=23),
        )
        batch.apply_to(g)
        r, count = self._counted(lambda: mosp_update(g, trees, batch))
        assert count == 2.0
        # the fully dynamic path appends at most one stats per tree
        assert len(r.update_stats) <= 2

    def test_no_batch_emits_nothing(self):
        g = erdos_renyi(20, 80, k=2, seed=24)
        trees = build_trees(g)
        r, count = self._counted(lambda: mosp_update(g, trees))
        assert count == 0.0
        assert r.update_stats == []

    def test_incremental_driver_exactly_once_per_tree(self):
        from repro.core.incremental_ensemble import IncrementalMOSP

        g = erdos_renyi(40, 160, k=2, seed=25)
        inc = IncrementalMOSP(g, source=0)
        batch = random_insert_batch(g, 25, seed=26)
        batch.apply_to(g)
        r, count = self._counted(lambda: inc.update(batch))
        assert count == 2.0
        assert len(r.update_stats) == 2


class TestTheorems:
    def test_theorem1_unique_trees_pareto_optimal(self):
        """Theorem 3 construction: unique SOSP trees => the heuristic's
        path is Pareto optimal (checked against Martins' full front)."""
        rng = np.random.default_rng(8)
        for trial in range(10):
            # random weights with distinct sums make ties (and thus
            # non-unique trees) measure-zero
            g = erdos_renyi(12, 40, k=2, seed=trial + 100)
            trees = build_trees(g)
            r = mosp_update(g, trees)
            full = martins(g, 0)
            for v in range(g.num_vertices):
                if not np.isfinite(r.dist_vectors[v]).all():
                    continue
                front = full.front(v)
                assert nondominated_against(r.cost_to(v), front), (
                    f"trial {trial} vertex {v}: {r.cost_to(v)} dominated "
                    f"by front {front}"
                )

    def test_balanced_weighting_prefers_shared_edges(self):
        """Step 2's k-x+1 weighting: an edge in both trees must be
        chosen over two single-tree edges of the same hop count."""
        g = DiGraph(4, k=2)
        # two routes 0->3: via 1 (shared optimal for both objectives)
        # and via 2 (optimal for neither... but in tree for neither)
        g.add_edge(0, 1, (1.0, 1.0))
        g.add_edge(1, 3, (1.0, 1.0))
        g.add_edge(0, 2, (5.0, 5.0))
        g.add_edge(2, 3, (5.0, 5.0))
        trees = build_trees(g)
        r = mosp_update(g, trees)
        assert r.path_to(3) == [0, 1, 3]

    def test_priority_weighting_steers_path(self):
        """Prioritising objective 1 must pick objective 1's optimum."""
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 9.0))
        g.add_edge(1, 2, (1.0, 9.0))
        g.add_edge(0, 2, (9.0, 1.0))
        trees = build_trees(g)
        r_fast = mosp_update(g, trees, weighting="priority",
                             priorities=(100.0, 1.0))
        assert r_fast.path_to(2) == [0, 1, 2]
        r_lean = mosp_update(g, trees, weighting="priority",
                             priorities=(1.0, 100.0))
        assert r_lean.path_to(2) == [0, 2]


class TestValidation:
    def test_tree_count_mismatch_rejected(self):
        g = erdos_renyi(10, 30, k=2, seed=0)
        with pytest.raises(AlgorithmError):
            mosp_update(g, [SOSPTree.build(g, 0, objective=0)])

    def test_tree_order_enforced(self):
        g = erdos_renyi(10, 30, k=2, seed=0)
        trees = build_trees(g)
        with pytest.raises(AlgorithmError):
            mosp_update(g, trees[::-1])

    def test_no_trees_rejected(self):
        g = erdos_renyi(10, 30, k=2, seed=0)
        with pytest.raises(AlgorithmError):
            mosp_update(g, [])


class TestCSRKernelPath:
    """``use_csr_kernels=True`` is a drop-in replacement for the
    reference pipeline: same MOSP output, same timing surface."""

    @pytest.mark.parametrize("step3", ["frontier", "rounds"])
    def test_kernel_path_matches_reference(self, step3):
        """Everything uniquely determined must match exactly: per-tree
        SOSP distances, the ensemble graph, and the set of reachable
        vertices.  Combined-graph parents are tie-broken differently by
        the pull-based kernel, so MOSP vectors are checked for path
        realism (cost == real weight of the reported path) rather than
        compared entrywise against the reference."""
        import copy

        g = erdos_renyi(50, 200, k=2, seed=4)
        trees_ref = build_trees(g)
        trees_csr = copy.deepcopy(trees_ref)
        batch = random_insert_batch(g, 60, seed=5)
        batch.apply_to(g)
        ref = mosp_update(g, trees_ref, batch, step3=step3)
        fast = mosp_update(g, trees_csr, batch, step3=step3,
                           use_csr_kernels=True)
        for t_r, t_c in zip(trees_ref, trees_csr):
            np.testing.assert_array_equal(t_c.dist, t_r.dist)
            t_c.certify(g)
        assert fast.ensemble.occurrences == ref.ensemble.occurrences
        fin_fast = np.isfinite(fast.dist_vectors).all(axis=1)
        fin_ref = np.isfinite(ref.dist_vectors).all(axis=1)
        np.testing.assert_array_equal(fin_fast, fin_ref)
        for v in np.flatnonzero(fin_fast):
            v = int(v)
            if v != 0:
                np.testing.assert_allclose(
                    fast.cost_to(v), path_cost(g, fast.path_to(v)),
                    rtol=1e-9,
                )

    def test_kernel_path_step_timers(self):
        """The kernel path reports the exact same per-step timing keys
        (Figure 6 depends on this surface staying stable)."""
        g = erdos_renyi(30, 120, k=2, seed=6)
        trees = build_trees(g)
        batch = random_insert_batch(g, 30, seed=7)
        batch.apply_to(g)
        r = mosp_update(g, trees, batch, use_csr_kernels=True)
        assert set(r.step_seconds) == {
            "sosp_update_0", "sosp_update_1", "ensemble",
            "bellman_ford", "reassign",
        }
        assert all(v >= 0 for v in r.step_seconds.values())
        # per-tree Algorithm-1 stats expose the kernel sub-step timers
        for stats in r.update_stats:
            assert set(stats.step_seconds) == {"step1", "step2"}

    def test_kernel_path_with_maintained_snapshot(self):
        from repro.graph.csr import CSRGraph

        g = erdos_renyi(40, 160, k=2, seed=8)
        trees = build_trees(g)
        snapshot = CSRGraph.from_digraph(g)
        for seed in (11, 12, 13):
            batch = random_insert_batch(g, 25, seed=seed)
            batch.apply_to(g)
            snapshot.append_batch(batch)
            r = mosp_update(g, trees, batch, use_csr_kernels=True,
                            csr=snapshot)
            for i, t in enumerate(trees):
                ref, _ = dijkstra(g, 0, i)
                np.testing.assert_allclose(t.dist, ref, rtol=1e-9)
        assert snapshot.num_edges == g.num_edges
