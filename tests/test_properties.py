"""Property-based tests (hypothesis) for the core invariants.

The master invariant of the whole reproduction: **after any sequence of
changes, the incrementally updated tree equals a from-scratch
recomputation** — over random graphs, random batches, every engine.
Plus dominance-order laws and Pareto-front closure properties.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SOSPTree, mosp_update, sosp_update, sosp_update_fulldynamic
from repro.dynamic import ChangeBatch
from repro.graph import DiGraph
from repro.mosp import dominates, martins, nondominated_against, pareto_filter
from repro.mosp.dominance import is_dominated_by_any
from repro.parallel import SimulatedEngine
from repro.sssp import dijkstra

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_batches(draw, k=1, max_n=14, max_batches=3):
    """A random digraph plus a sequence of random insertion batches."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.tuples(*([weight] * k)),
    )
    edges = draw(st.lists(edge, min_size=0, max_size=m))
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    n_batches = draw(st.integers(1, max_batches))
    batches = []
    for _ in range(n_batches):
        ins = draw(st.lists(edge, min_size=1, max_size=8))
        batches.append(ChangeBatch.insertions(ins))
    return g, batches


@st.composite
def mixed_change_sequence(draw, max_n=12):
    """A digraph plus batches mixing insertions and deletions."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    edge = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1), weight)
    edges = draw(st.lists(edge, min_size=1, max_size=3 * n))
    g = DiGraph(n, k=1)
    for u, v, w in edges:
        g.add_edge(u, v, (w,))
    ops = draw(
        st.lists(
            st.one_of(
                edge.map(lambda e: ("ins", e)),
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).map(
                    lambda p: ("del", p)
                ),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return g, ops


# ----------------------------------------------------------------------
# master invariant: update == recompute
# ----------------------------------------------------------------------


class TestUpdateEqualsRecompute:
    @SETTINGS
    @given(graph_and_batches())
    def test_incremental_updates(self, gb):
        g, batches = gb
        tree = SOSPTree.build(g, 0)
        for batch in batches:
            batch.apply_to(g)
            sosp_update(g, tree, batch, check_ownership=True)
            ref, _ = dijkstra(g, 0)
            np.testing.assert_allclose(tree.dist, ref, rtol=1e-12)
            tree.certify(g)

    @SETTINGS
    @given(graph_and_batches(), st.integers(2, 8))
    def test_incremental_updates_simulated_engine(self, gb, threads):
        g, batches = gb
        tree = SOSPTree.build(g, 0)
        eng = SimulatedEngine(threads=threads)
        for batch in batches:
            batch.apply_to(g)
            sosp_update(g, tree, batch, engine=eng)
            ref, _ = dijkstra(g, 0)
            np.testing.assert_allclose(tree.dist, ref, rtol=1e-12)

    @SETTINGS
    @given(graph_and_batches())
    def test_ungrouped_ablation_same_results(self, gb):
        g, batches = gb
        tree = SOSPTree.build(g, 0)
        for batch in batches:
            batch.apply_to(g)
            sosp_update(g, tree, batch, use_grouping=False)
            ref, _ = dijkstra(g, 0)
            np.testing.assert_allclose(tree.dist, ref, rtol=1e-12)

    @SETTINGS
    @given(mixed_change_sequence())
    def test_fully_dynamic_sequence(self, gops):
        g, ops = gops
        tree = SOSPTree.build(g, 0)
        for kind, payload in ops:
            if kind == "ins":
                u, v, w = payload
                batch = ChangeBatch.insertions([(u, v, (w,))])
            else:
                u, v = payload
                if not g.has_edge(u, v):
                    continue
                batch = ChangeBatch.deletions([(u, v)])
            batch.apply_to(g)
            sosp_update_fulldynamic(g, tree, batch)
            ref, _ = dijkstra(g, 0)
            np.testing.assert_allclose(tree.dist, ref, rtol=1e-12)
            tree.certify(g)


# ----------------------------------------------------------------------
# MOSP pipeline invariants
# ----------------------------------------------------------------------


class TestMOSPInvariants:
    @SETTINGS
    @given(graph_and_batches(k=2, max_n=9, max_batches=2))
    def test_mosp_paths_valid_and_bounded(self, gb):
        g, batches = gb
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        for batch in batches:
            batch.apply_to(g)
            r = mosp_update(g, trees, batch)
            for i in range(2):
                ref, _ = dijkstra(g, 0, i)
                np.testing.assert_allclose(trees[i].dist, ref, rtol=1e-12)
            # every returned cost is a real path cost and respects the
            # per-objective lower bound
            for v in range(g.num_vertices):
                if not np.isfinite(r.dist_vectors[v]).all():
                    continue
                path = r.path_to(v)
                assert path[0] == 0 and path[-1] == v
                for i in range(2):
                    ref, _ = dijkstra(g, 0, i)
                    assert r.dist_vectors[v, i] >= ref[v] - 1e-9

    @SETTINGS
    @given(graph_and_batches(k=2, max_n=8, max_batches=1))
    def test_mosp_not_dominated_when_fronts_small(self, gb):
        """On integer-weight graphs ties are common, so unique-tree
        preconditions fail; the heuristic still must not be *strictly*
        dominated in well-posed cases where the tree is unique.

        Well-posed additionally requires a *simple* graph: among
        parallel edges, different trees can certify different parallel
        edges for the same ensemble hop, and no single representative
        weight vector (``_representative_weight``) makes every pricing
        nondominated — e.g. parallel ``u→v`` weights ``(a, B)`` and
        ``(b, A)`` with ``a < b``, ``A < B``: whichever is chosen, the
        other may complete the front row that dominates the result.
        """
        g, batches = gb
        batches[0].apply_to(g)
        # perturb weights to break ties (unique SOSP trees w.h.p.) and
        # drop parallel edges (keep the first per (u, v) pair) so the
        # representative-weight pricing of each hop is unambiguous
        rng = np.random.default_rng(0)
        h = DiGraph(g.num_vertices, 2)
        seen = set()
        for u, v, eid in g.edges():
            w = np.asarray(g.weight(eid)) + rng.uniform(0, 1e-3, 2)
            if (u, v) in seen:
                continue
            seen.add((u, v))
            h.add_edge(u, v, w)
        trees = [SOSPTree.build(h, 0, objective=i) for i in range(2)]
        r = mosp_update(h, trees)
        full = martins(h, 0)
        for v in range(h.num_vertices):
            if np.isfinite(r.dist_vectors[v]).all():
                assert nondominated_against(r.cost_to(v), full.front(v))


# ----------------------------------------------------------------------
# dominance laws
# ----------------------------------------------------------------------

vectors = st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2,
    max_size=2,
).map(tuple)


class TestDominanceLaws:
    @SETTINGS
    @given(vectors)
    def test_irreflexive(self, a):
        assert not dominates(a, a)

    @SETTINGS
    @given(vectors, vectors)
    def test_asymmetric(self, a, b):
        if dominates(a, b):
            assert not dominates(b, a)

    @SETTINGS
    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @SETTINGS
    @given(st.lists(vectors, min_size=1, max_size=25))
    def test_pareto_filter_is_antichain(self, pts):
        front = pareto_filter(np.asarray(pts))
        rows = [tuple(r) for r in front.tolist()]
        for i, a in enumerate(rows):
            for j, b in enumerate(rows):
                if i != j:
                    assert not dominates(a, b)

    @SETTINGS
    @given(st.lists(vectors, min_size=1, max_size=25))
    def test_pareto_filter_covers_input(self, pts):
        arr = np.asarray(pts)
        front = pareto_filter(arr)
        for p in arr:
            # every input point is dominated-or-equalled by the front
            assert any(
                tuple(f) == tuple(p) for f in front
            ) or is_dominated_by_any(p, front)

    @SETTINGS
    @given(st.lists(vectors, min_size=1, max_size=20))
    def test_pareto_filter_idempotent(self, pts):
        once = pareto_filter(np.asarray(pts))
        twice = pareto_filter(once)
        assert sorted(map(tuple, once.tolist())) == sorted(
            map(tuple, twice.tolist())
        )
