"""Tests for bidirectional Dijkstra and ALT search."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError, NotReachableError, VertexError
from repro.graph import DiGraph, erdos_renyi, grid_road
from repro.sssp import dijkstra
from repro.sssp.point_to_point import ALTIndex, alt_search, bidirectional_dijkstra


def path_cost(g, path, objective=0):
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += g.min_weight_between(u, v, objective)
    return total


ALGOS = [
    ("bidir", lambda g, s, t: bidirectional_dijkstra(g, s, t)),
    ("alt", lambda g, s, t: alt_search(g, s, t)),
]


@pytest.mark.parametrize("name,algo", ALGOS)
class TestPointToPoint:
    def test_line(self, name, algo):
        g = DiGraph.from_edge_list(
            4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        )
        path, d = algo(g, 0, 3)
        assert path == [0, 1, 2, 3]
        assert d == 6.0

    def test_source_equals_destination(self, name, algo):
        g = DiGraph.from_edge_list(2, [(0, 1, 1.0)])
        path, d = algo(g, 0, 0)
        assert path == [0]
        assert d == 0.0

    def test_unreachable_raises(self, name, algo):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(NotReachableError):
            algo(g, 0, 2)

    def test_bad_vertices(self, name, algo):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(VertexError):
            algo(g, 9, 0)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_distance_matches_dijkstra_er(self, name, algo, seed):
        g = erdos_renyi(50, 250, seed=seed)
        ref, _ = dijkstra(g, 0)
        for t in (1, 17, 33, 49):
            if not np.isfinite(ref[t]):
                continue
            path, d = algo(g, 0, t)
            assert d == pytest.approx(ref[t])
            assert path[0] == 0 and path[-1] == t
            assert path_cost(g, path) == pytest.approx(d)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_grid(self, name, algo, seed):
        g = grid_road(8, 8, seed=seed)
        ref, _ = dijkstra(g, 0)
        t = 63
        if np.isfinite(ref[t]):
            _, d = algo(g, 0, t)
            assert d == pytest.approx(ref[t])


class TestALTIndex:
    def test_lower_bound_admissible(self):
        g = erdos_renyi(40, 200, seed=7)
        idx = ALTIndex(g, num_landmarks=4, seed=1)
        ref, _ = dijkstra(g, 3)
        for t in range(40):
            if np.isfinite(ref[t]):
                assert idx.lower_bound(3, t) <= ref[t] + 1e-9

    def test_lower_bound_nonnegative(self):
        g = erdos_renyi(20, 80, seed=8)
        idx = ALTIndex(g, num_landmarks=3)
        for v in range(20):
            assert idx.lower_bound(v, 5) >= 0.0

    def test_reused_index_many_queries(self):
        g = grid_road(7, 7, seed=2)
        idx = ALTIndex(g, num_landmarks=4)
        ref, _ = dijkstra(g, 0)
        for t in (10, 20, 30, 48):
            if np.isfinite(ref[t]):
                _, d = alt_search(g, 0, t, index=idx)
                assert d == pytest.approx(ref[t])

    def test_objective_mismatch_rejected(self):
        g = erdos_renyi(10, 40, k=2, seed=0)
        idx = ALTIndex(g, objective=0)
        with pytest.raises(AlgorithmError):
            alt_search(g, 0, 1, index=idx, objective=1)

    def test_zero_landmarks_rejected(self):
        g = erdos_renyi(5, 10, seed=0)
        with pytest.raises(AlgorithmError):
            ALTIndex(g, num_landmarks=0)

    def test_second_objective(self):
        g = erdos_renyi(30, 150, k=2, seed=9)
        ref, _ = dijkstra(g, 0, objective=1)
        idx = ALTIndex(g, objective=1)
        t = 20
        if np.isfinite(ref[t]):
            _, d = alt_search(g, 0, t, index=idx, objective=1)
            assert d == pytest.approx(ref[t])


class TestPropertyEquivalence:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 5000), st.integers(0, 19), st.integers(0, 19))
    def test_bidirectional_matches_dijkstra(self, seed, s, t):
        g = erdos_renyi(20, 70, seed=seed % 101)
        ref, _ = dijkstra(g, s)
        if np.isfinite(ref[t]):
            _, d = bidirectional_dijkstra(g, s, t)
            assert d == pytest.approx(ref[t])
        else:
            with pytest.raises(NotReachableError):
                bidirectional_dijkstra(g, s, t)
