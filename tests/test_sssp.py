"""Unit and cross-validation tests for the SSSP substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import AlgorithmError, TreeInvariantError, VertexError
from repro.graph import CSRGraph, DiGraph, erdos_renyi, grid_road, random_geometric
from repro.parallel import SerialEngine, SimulatedEngine, ThreadEngine, WorkMeter
from repro.sssp import (
    bellman_ford,
    certify_sssp,
    delta_stepping,
    dijkstra,
    is_valid_sssp,
    parallel_bellman_ford,
    recompute_sssp,
)

ALGOS = [
    ("dijkstra", dijkstra),
    ("bellman_ford", bellman_ford),
    ("delta_stepping", delta_stepping),
]


def to_networkx(g: DiGraph, objective: int = 0) -> nx.DiGraph:
    h = nx.DiGraph()
    h.add_nodes_from(range(g.num_vertices))
    for u, v, eid in g.edges():
        w = g.weight_scalar(eid, objective)
        if h.has_edge(u, v):
            if w < h[u][v]["weight"]:
                h[u][v]["weight"] = w
        else:
            h.add_edge(u, v, weight=w)
    return h


def reference_dist(g: DiGraph, source: int, objective: int = 0):
    h = to_networkx(g, objective)
    lengths = nx.single_source_dijkstra_path_length(h, source)
    out = np.full(g.num_vertices, np.inf)
    for v, d in lengths.items():
        out[v] = d
    return out


@pytest.fixture
def small_graph():
    # the classic diamond-with-shortcut
    return DiGraph.from_edge_list(
        5,
        [
            (0, 1, 10.0),
            (0, 2, 3.0),
            (2, 1, 4.0),
            (1, 3, 2.0),
            (2, 3, 8.0),
            (3, 4, 7.0),
            (2, 4, 50.0),
        ],
    )


@pytest.mark.parametrize("name,algo", ALGOS)
class TestAgainstHand:
    def test_small_graph_distances(self, name, algo, small_graph):
        dist, parent = algo(small_graph, 0)
        assert dist.tolist() == [0.0, 7.0, 3.0, 9.0, 16.0]

    def test_small_graph_certified(self, name, algo, small_graph):
        dist, parent = algo(small_graph, 0)
        certify_sssp(small_graph, 0, dist, parent)

    def test_unreachable(self, name, algo):
        g = DiGraph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        dist, parent = algo(g, 0)
        assert dist[2] == np.inf and dist[3] == np.inf
        assert parent[2] == -1 and parent[3] == -1
        certify_sssp(g, 0, dist, parent)

    def test_single_vertex(self, name, algo):
        g = DiGraph(1)
        dist, parent = algo(g, 0)
        assert dist.tolist() == [0.0]
        assert parent.tolist() == [-1]

    def test_source_out_of_range(self, name, algo):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(VertexError):
            algo(g, 5)

    def test_zero_weight_edges(self, name, algo):
        g = DiGraph.from_edge_list(3, [(0, 1, 0.0), (1, 2, 0.0)])
        dist, _ = algo(g, 0)
        assert dist.tolist() == [0.0, 0.0, 0.0]

    def test_parallel_edges_use_cheapest(self, name, algo):
        g = DiGraph(2)
        g.add_edge(0, 1, 9.0)
        g.add_edge(0, 1, 2.0)
        dist, _ = algo(g, 0)
        assert dist[1] == 2.0

    def test_second_objective(self, name, algo):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.0, 100.0))
        g.add_edge(0, 2, (100.0, 1.0))
        g.add_edge(1, 2, (1.0, 100.0))
        d0, _ = algo(g, 0, objective=0)
        d1, _ = algo(g, 0, objective=1)
        assert d0[2] == 2.0
        assert d1[2] == 1.0


@pytest.mark.parametrize("name,algo", ALGOS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
class TestAgainstNetworkx:
    def test_erdos_renyi(self, name, algo, seed):
        g = erdos_renyi(60, 300, seed=seed)
        dist, parent = algo(g, 0)
        np.testing.assert_allclose(dist, reference_dist(g, 0), rtol=1e-9)
        certify_sssp(g, 0, dist, parent)

    def test_grid_road(self, name, algo, seed):
        g = grid_road(7, 8, seed=seed)
        dist, parent = algo(g, 3)
        np.testing.assert_allclose(dist, reference_dist(g, 3), rtol=1e-9)
        certify_sssp(g, 3, dist, parent)


class TestParallelBellmanFord:
    @pytest.mark.parametrize("engine", [
        None,
        SerialEngine(),
        ThreadEngine(threads=3),
        SimulatedEngine(threads=4),
    ])
    def test_matches_dijkstra(self, engine):
        g = erdos_renyi(80, 400, seed=5)
        dist, parent = parallel_bellman_ford(g, 0, engine=engine,
                                             chunk_edges=64)
        ref, _ = dijkstra(g, 0)
        np.testing.assert_allclose(dist, ref, rtol=1e-9)
        certify_sssp(g, 0, dist, parent)

    def test_simulated_engine_charges_rounds(self):
        g = grid_road(10, 10, seed=0)
        eng = SimulatedEngine(threads=4)
        parallel_bellman_ford(g, 0, engine=eng, chunk_edges=32)
        assert eng.supersteps >= 2  # at least a couple of rounds
        assert eng.virtual_time > 0

    def test_empty_graph(self):
        g = DiGraph(3)
        dist, parent = parallel_bellman_ford(g, 1)
        assert dist.tolist() == [np.inf, 0.0, np.inf]


class TestRecomputeDispatch:
    def test_all_algorithms(self):
        g = erdos_renyi(30, 120, seed=0)
        ref = reference_dist(g, 0)
        for name in ("dijkstra", "bellman_ford", "delta_stepping"):
            dist, parent = recompute_sssp(g, 0, algorithm=name)
            np.testing.assert_allclose(dist, ref, rtol=1e-9)

    def test_unknown_rejected(self):
        g = DiGraph(2)
        with pytest.raises(AlgorithmError):
            recompute_sssp(g, 0, algorithm="astar")

    def test_meter_counts_work(self):
        g = erdos_renyi(30, 120, seed=0)
        m = WorkMeter()
        recompute_sssp(g, 0, algorithm="dijkstra", meter=m)
        assert m.total > 0


class TestDeltaSteppingParams:
    def test_explicit_delta(self):
        g = erdos_renyi(40, 160, seed=1)
        ref = reference_dist(g, 0)
        for delta in (0.5, 2.0, 100.0):
            dist, _ = delta_stepping(g, 0, delta=delta)
            np.testing.assert_allclose(dist, ref, rtol=1e-9)

    def test_nonpositive_delta_rejected(self):
        g = erdos_renyi(5, 10, seed=0)
        with pytest.raises(AlgorithmError):
            delta_stepping(g, 0, delta=0.0)

    def test_rgg(self):
        g = random_geometric(300, seed=2)
        dist, parent = delta_stepping(g, 0)
        ref, _ = dijkstra(g, 0)
        np.testing.assert_allclose(dist, ref, rtol=1e-9)


class TestCertifier:
    def test_rejects_too_small_distance(self, ):
        g = DiGraph.from_edge_list(2, [(0, 1, 5.0)])
        dist, parent = dijkstra(g, 0)
        dist[1] = 1.0  # claims better than possible -> parent not tight
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, dist, parent)

    def test_rejects_too_large_distance(self):
        g = DiGraph.from_edge_list(2, [(0, 1, 5.0)])
        dist, parent = dijkstra(g, 0)
        dist[1] = 9.0  # relaxable edge remains
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, dist, parent)

    def test_rejects_bad_parent(self):
        g = DiGraph.from_edge_list(3, [(0, 1, 1.0), (0, 2, 1.0)])
        dist, parent = dijkstra(g, 0)
        parent[1] = 2  # no (2, 1) edge
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, dist, parent)

    def test_rejects_nonzero_source(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        dist, parent = dijkstra(g, 0)
        dist[0] = 1.0
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, dist, parent)

    def test_rejects_parent_on_unreachable(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        dist, parent = dijkstra(g, 0)
        parent[2] = 0
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, dist, parent)

    def test_rejects_shape_mismatch(self):
        g = DiGraph(3)
        with pytest.raises(TreeInvariantError):
            certify_sssp(g, 0, np.zeros(2), np.zeros(3, dtype=int))

    def test_is_valid_boolean(self):
        g = DiGraph.from_edge_list(2, [(0, 1, 5.0)])
        dist, parent = dijkstra(g, 0)
        assert is_valid_sssp(g, 0, dist, parent)
        dist[1] = 0.0
        assert not is_valid_sssp(g, 0, dist, parent)
