"""Differential oracle certifying the vectorised CSR kernels.

Three implementations of the same mathematical object are available for
every update:

1. the reference pointer-chasing path (``use_csr_kernels=False``),
2. the batched CSR kernel path (``use_csr_kernels=True``), and
3. a from-scratch Dijkstra recompute on the updated graph.

All three must agree **exactly** (the label-correcting fixpoint is
unique, and every path uses the same float64 additions), over random
graphs, random insertion batches, and every engine family — that
agreement is what lets the fast path replace the reference path
anywhere.  Parent arrays are certified structurally via
:meth:`SOSPTree.certify` rather than compared entrywise, because
equal-weight parallel edges admit multiple valid witness parents.

Example budget comes from the hypothesis profile registered in
``conftest.py`` (200 locally, capped under ``HYPOTHESIS_PROFILE=ci``).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SOSPTree, mosp_update, sosp_update
from repro.dynamic import ChangeBatch
from repro.graph import DiGraph
from repro.graph.csr import CSRGraph
from repro.parallel import SerialEngine, SimulatedEngine, ThreadEngine
from repro.sssp import dijkstra
from repro.types import NO_PARENT

pytestmark = pytest.mark.slow

#: One engine per backend family the kernels claim to support.  Shared
#: instances: engines hold no cross-call state that affects results.
ENGINES = [
    SerialEngine(),
    ThreadEngine(threads=2),
    SimulatedEngine(threads=4),
]


@st.composite
def graph_and_batches(draw, k=1, max_n=14, max_batches=3):
    """A random digraph plus a sequence of random insertion batches."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.tuples(*([weight] * k)),
    )
    edges = draw(st.lists(edge, min_size=0, max_size=m))
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    n_batches = draw(st.integers(1, max_batches))
    batches = [
        ChangeBatch.insertions(draw(st.lists(edge, min_size=1, max_size=8)))
        for _ in range(n_batches)
    ]
    return g, batches


@given(data=graph_and_batches(), engine_idx=st.integers(0, len(ENGINES) - 1))
def test_sosp_kernels_equal_reference_and_dijkstra(data, engine_idx):
    """CSR path ≡ reference path ≡ Dijkstra recompute, per batch."""
    g, batches = data
    engine = ENGINES[engine_idx]
    t_ref = SOSPTree.build(g, 0)
    t_csr = copy.deepcopy(t_ref)
    for batch in batches:
        batch.apply_to(g)
        sosp_update(g, t_ref, batch, engine=engine)
        sosp_update(
            g, t_csr, batch, engine=engine,
            use_csr_kernels=True, csr=CSRGraph.from_digraph(g),
        )
        oracle, _ = dijkstra(g, 0)
        np.testing.assert_array_equal(t_csr.dist, oracle)
        np.testing.assert_array_equal(t_ref.dist, oracle)
        t_csr.certify(g)


@given(data=graph_and_batches(max_batches=4),
       engine_idx=st.integers(0, len(ENGINES) - 1))
def test_sosp_kernels_with_incremental_snapshot(data, engine_idx):
    """The appended-tail snapshot is as good as a fresh freeze.

    One ``CSRGraph`` maintained with ``append_batch`` across the whole
    batch sequence (never explicitly compacted) must drive the kernels
    to the same fixpoint as a from-scratch recompute after every batch.
    """
    g, batches = data
    engine = ENGINES[engine_idx]
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.append_batch(batch)
        sosp_update(
            g, tree, batch, engine=engine,
            use_csr_kernels=True, csr=snapshot,
        )
        oracle, _ = dijkstra(g, 0)
        np.testing.assert_array_equal(tree.dist, oracle)
        tree.certify(g)
    assert snapshot.num_edges == g.num_edges


def certify_combined_parents(result):
    """Every finite vertex's parent must be a real combined-graph edge
    that achieves the vertex's exact combined-graph distance.

    This is the sound Step-3 invariant: combined-graph *distances* are
    a unique fixpoint, but the witness parent is not — the push-based
    reference kernel keeps the first arrival among equally short
    parents while the pull-based CSR kernel takes the first in
    reverse-CSR order.  Certifying optimality (rather than comparing
    parents entrywise) accepts every valid tie-break and nothing else.
    """
    csr = result.ensemble.csr
    dist_c, _ = dijkstra(csr, result.source)
    for v in range(csr.n):
        p = int(result.parent[v])
        if v == result.source or p == NO_PARENT:
            continue
        preds = csr.in_neighbors(v).tolist()
        assert p in preds, (v, p)
        w = min(
            wt for u, wt in zip(preds, csr.in_weights(v).tolist()) if u == p
        )
        assert dist_c[p] + w == dist_c[v], (v, p)
    return dist_c


@given(data=graph_and_batches(k=2, max_n=12, max_batches=2),
       engine_idx=st.integers(0, len(ENGINES) - 1),
       step3=st.sampled_from(["frontier", "rounds"]))
def test_mosp_kernels_equal_reference(data, engine_idx, step3):
    """Algorithm 2 with kernels ≡ Algorithm 2 without.

    Exact equality holds for everything uniquely determined: per-tree
    SOSP distances, the vectorised-vs-loop ensemble build *on the same
    trees* (byte-identical CSR arrays and occurrence counts), and the
    set of reachable vertices.  Witness parents are NOT unique — on a
    tie, Step 1/2 kernels and the reference relaxation may keep
    different (equally optimal) tree parents, so the two pipelines'
    ensembles can legitimately differ edge-for-edge.  Parents are
    therefore certified optimal instead of compared entrywise, and
    each reported MOSP cost vector must be the true multi-weight of
    the reported path.
    """
    from repro.core.ensemble import build_ensemble

    g, batches = data
    engine = ENGINES[engine_idx]
    trees_ref = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
    trees_csr = copy.deepcopy(trees_ref)
    for batch in batches:
        batch.apply_to(g)
        ref = mosp_update(g, trees_ref, batch, engine=engine, step3=step3)
        fast = mosp_update(
            g, trees_csr, batch, engine=engine, step3=step3,
            use_csr_kernels=True,
        )
        assert set(fast.step_seconds) == set(ref.step_seconds)
        for t_r, t_c in zip(trees_ref, trees_csr):
            np.testing.assert_array_equal(t_c.dist, t_r.dist)
            t_c.certify(g)
        # differential for the vectorised ensemble builder: identical
        # input trees must produce a byte-identical combined graph
        loop = build_ensemble(trees_csr, engine=engine, vectorized=False)
        assert fast.ensemble.occurrences == loop.occurrences
        for attr in ("indptr", "indices", "src", "rev_indptr",
                     "rev_indices", "edge_perm"):
            np.testing.assert_array_equal(
                getattr(fast.ensemble.csr, attr),
                getattr(loop.csr, attr),
            )
        np.testing.assert_array_equal(
            fast.ensemble.csr.weights, loop.csr.weights
        )
        certify_combined_parents(fast)
        certify_combined_parents(ref)
        # both paths agree on which vertices have a MOSP at all, and
        # each reported vector is the real cost of the reported path:
        # on a simple hop the pricing is forced (exact check); where
        # parallel (a, b) edges exist the pipeline prices the hop with
        # the tree-certified parallel edge, so the vector must be
        # achievable by *some* per-hop choice among the real edges
        fin_fast = np.isfinite(fast.dist_vectors).all(axis=1)
        fin_ref = np.isfinite(ref.dist_vectors).all(axis=1)
        np.testing.assert_array_equal(fin_fast, fin_ref)
        for v in np.flatnonzero(fin_fast):
            v = int(v)
            if v == fast.source:
                continue
            path = fast.path_to(v)
            achievable = {(0.0,) * 2}
            for a, b in zip(path, path[1:]):
                hops = {
                    tuple(g.weight(eid)) for vv, eid in g.out_edges(a)
                    if vv == b
                }
                assert hops, (a, b)
                achievable = {
                    tuple(np.asarray(acc) + np.asarray(h))
                    for acc in achievable for h in hops
                }
            vec = fast.dist_vectors[v]
            assert any(np.allclose(vec, c) for c in achievable), (v, vec)
