"""Tests for :mod:`repro.service`: coalescing, MVCC epochs, lifecycle.

Includes the satellite property test: a reader holding epoch ``e``
observes bitwise-identical ``dist``/``parent`` arrays while at least
three further batches land concurrently on the writer thread.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SOSPTree
from repro.dynamic import ChangeStream, EdgeEdit, KIND_INSERT, stream_edits
from repro.errors import ReproError
from repro.graph import erdos_renyi, grid_road
from repro.parallel import SharedMemoryEngine
from repro.service import (
    Coalescer,
    EpochSnapshot,
    ServiceState,
    UpdateService,
    run_load,
)

INS = KIND_INSERT


def _edit(i: int) -> EdgeEdit:
    return EdgeEdit(INS, i, i + 1, (1.0,))


class TestCoalescer:
    def test_size_trigger_cuts_a_full_flush(self):
        c = Coalescer(flush_size=4, flush_latency=30.0)
        for i in range(9):
            assert c.offer(_edit(i))
        # latency can't fire for 30s; only the size trigger can cut
        got = c.take(timeout=2.0)
        assert [e.u for e in got] == [0, 1, 2, 3]
        assert c.depth == 5

    def test_latency_trigger_flushes_a_trickle(self):
        c = Coalescer(flush_size=1000, flush_latency=0.02)
        c.offer(_edit(7))
        got = c.take(timeout=2.0)  # far below flush_size: age must cut
        assert [e.u for e in got] == [7]
        assert c.depth == 0

    def test_take_times_out_empty(self):
        c = Coalescer(flush_size=4, flush_latency=0.01)
        assert c.take(timeout=0.05) == []

    def test_back_pressure_rejects_on_timeout(self):
        c = Coalescer(flush_size=2, flush_latency=30.0, max_pending=2)
        assert c.offer(_edit(0)) and c.offer(_edit(1))
        # full, and nobody is taking: the producer must get the signal
        assert c.offer(_edit(2), timeout=0.05) is False
        assert c.rejected_total == 1
        assert c.offered_total == 2
        c.take(timeout=1.0)  # frees capacity
        assert c.offer(_edit(2), timeout=0.05) is True

    def test_close_drains_then_signals_exhaustion(self):
        c = Coalescer(flush_size=100, flush_latency=30.0)
        c.offer(_edit(0))
        c.close()
        with pytest.raises(ReproError):
            c.offer(_edit(1))
        assert [e.u for e in c.take(timeout=1.0)] == [0]
        assert c.take(timeout=0.05) == []  # closed + dry: writer exits
        assert c.closed

    def test_rejects_bad_policy(self):
        with pytest.raises(ReproError):
            Coalescer(flush_size=0)
        with pytest.raises(ReproError):
            Coalescer(flush_latency=0.0)
        with pytest.raises(ReproError):
            Coalescer(flush_size=10, max_pending=5)


class TestEpochSnapshot:
    def test_freezes_and_decouples_writable_inputs(self):
        dist = np.array([0.0, 1.0, 3.0])
        parent = np.array([-1, 0, 1])
        snap = EpochSnapshot(0, 0, dist, parent)
        dist[2] = 99.0  # later writer mutation
        assert snap.distance(2) == 3.0
        assert not snap.dist.flags.writeable
        assert snap.verify()

    def test_adopts_pre_frozen_arrays_without_copying(self):
        dist = np.array([0.0, 1.0])
        dist.setflags(write=False)
        parent = np.array([-1, 0])
        parent.setflags(write=False)
        snap = EpochSnapshot(3, 0, dist, parent)
        assert snap.dist is dist  # the shm publish path: no second copy
        assert snap.parent is parent

    def test_path_walks_the_parent_chain(self):
        snap = EpochSnapshot(
            0, 0, np.array([0.0, 1.0, 3.0]), np.array([-1, 0, 1])
        )
        assert snap.path_to(2) == [0, 1, 2]
        assert snap.path_to(0) == [0]

    def test_unreachable_and_broken_chains_raise(self):
        snap = EpochSnapshot(
            0, 0, np.array([0.0, np.inf, 1.0]), np.array([-1, -1, -1])
        )
        with pytest.raises(ReproError, match="unreachable"):
            snap.path_to(1)
        with pytest.raises(ReproError, match="broken"):
            snap.path_to(2)  # finite dist but no chain back to source

    def test_cycle_guard_terminates(self):
        snap = EpochSnapshot(
            0, 0, np.array([0.0, 1.0, 1.0]), np.array([-1, 2, 1])
        )
        with pytest.raises(ReproError, match="broken"):
            snap.path_to(1)

    def test_verify_detects_payload_tampering(self):
        dist = np.array([0.0, 1.0])
        snap = EpochSnapshot(0, 0, dist, np.array([-1, 0]))
        forged = np.array(snap.dist, copy=True)
        forged[1] = 2.0
        forged.setflags(write=False)
        snap.dist = forged  # simulate a torn/overwritten payload
        assert not snap.verify()


def _drive_edits(service, *, steps=3, batch_size=8, seed=1,
                 insert_fraction=0.7, weight_change_fraction=0.15):
    """Submit ``steps * batch_size`` seeded edits from a replica."""
    replica = service.graph.copy()
    stream = ChangeStream(
        replica, batch_size=batch_size, steps=steps,
        insert_fraction=insert_fraction,
        weight_change_fraction=weight_change_fraction, seed=seed,
    )
    n = 0
    for edit in stream_edits(stream):
        assert service.submit(edit, timeout=10.0)
        n += 1
    return n


class TestServiceLifecycle:
    def test_states_through_a_clean_run(self):
        svc = UpdateService(grid_road(4, 4, seed=0), 0, flush_size=8,
                            flush_latency=0.005)
        assert svc.state == ServiceState.NEW
        assert svc.snapshot().epoch == 0  # epoch 0 serves before start
        svc.start()
        assert svc.state == ServiceState.RUNNING
        n = _drive_edits(svc, steps=2, batch_size=8)
        assert svc.drain(timeout=30.0)
        assert svc.edits_applied == n
        assert svc.stop(drain=True, timeout=30.0)
        assert svc.state == ServiceState.STOPPED
        assert svc.snapshot().epoch == svc.epochs_published >= 1

    def test_services_are_single_use(self):
        svc = UpdateService(grid_road(3, 3, seed=0), 0)
        svc.start()
        svc.stop()
        with pytest.raises(ReproError, match="single-use"):
            svc.start()
        with pytest.raises(ReproError, match="submit"):
            svc.submit(_edit(0))

    def test_submit_requires_running(self):
        svc = UpdateService(grid_road(3, 3, seed=0), 0)
        with pytest.raises(ReproError):
            svc.submit(_edit(0))
        assert svc.stop()  # NEW -> STOPPED without ever starting

    def test_stop_is_idempotent(self):
        svc = UpdateService(grid_road(3, 3, seed=0), 0).start()
        assert svc.stop()
        assert svc.stop()

    def test_context_manager_starts_and_drains(self):
        with UpdateService(grid_road(4, 4, seed=0), 0, flush_size=4,
                           flush_latency=0.005) as svc:
            assert svc.state == ServiceState.RUNNING
            _drive_edits(svc, steps=1, batch_size=4)
            assert svc.drain(timeout=30.0)
        assert svc.state == ServiceState.STOPPED
        assert svc.epochs_published >= 1

    def test_caller_owned_engine_is_not_closed(self):
        eng = SharedMemoryEngine(threads=2)
        try:
            svc = UpdateService(grid_road(3, 3, seed=0), 0, engine=eng)
            svc.start()
            svc.stop()
            # still usable: the service never owned it
            snap = eng.publish_snapshot({"d": np.ones(2)}, ("s", 1))
            assert not snap["d"].flags.writeable
        finally:
            eng.close()


class TestServiceCorrectness:
    @pytest.mark.parametrize("insert_fraction,weight_change_fraction", [
        (1.0, 0.0),    # incremental-only -> sosp_update path
        (0.6, 0.2),    # mixed -> apply_mixed_batch path
    ])
    def test_final_epoch_matches_recompute(self, insert_fraction,
                                           weight_change_fraction):
        g = erdos_renyi(60, 240, seed=3)
        svc = UpdateService(g, 0, flush_size=10, flush_latency=0.005)
        svc.start()
        try:
            _drive_edits(
                svc, steps=4, batch_size=10, seed=5,
                insert_fraction=insert_fraction,
                weight_change_fraction=weight_change_fraction,
            )
            assert svc.drain(timeout=60.0)
            assert svc.error is None
        finally:
            assert svc.stop(drain=True, timeout=60.0)
        snap = svc.snapshot()
        fresh = SOSPTree.build(svc.graph, 0)
        np.testing.assert_array_equal(snap.dist, fresh.dist)
        assert snap.verify()


class TestDegradedMode:
    def test_failed_writer_keeps_serving_the_last_epoch(self):
        svc = UpdateService(grid_road(4, 4, seed=0), 0, flush_size=2,
                            flush_latency=0.005)

        def boom(edits):
            raise RuntimeError("apply exploded")

        svc._apply = boom  # type: ignore[method-assign]
        svc.start()
        before = svc.snapshot()
        svc.submit(_edit(0))
        svc.submit(_edit(1))
        deadline = 50
        while svc.state != ServiceState.FAILED and deadline:
            deadline -= 1
            svc._thread.join(timeout=0.1) if svc._thread else None
        assert svc.state == ServiceState.FAILED
        assert isinstance(svc.error, RuntimeError)
        # degraded, not gone: the last good epoch still serves reads
        snap = svc.snapshot()
        assert snap is before and snap.verify()
        # producers get an error instead of silent loss
        with pytest.raises(ReproError):
            svc.submit(_edit(2))
        assert svc.drain(timeout=1.0) is False
        assert svc.stop() is False  # an unclean stop says so
        assert svc.state == ServiceState.FAILED


class TestLoadGenerator:
    def test_serial_smoke_run_is_clean(self):
        svc = UpdateService(erdos_renyi(80, 320, seed=2), 0,
                            flush_size=10, flush_latency=0.005)
        svc.start()
        try:
            report = run_load(svc, edits=40, queries=60, readers=1,
                              batch_size=10, seed=2)
        finally:
            svc.stop()
        assert report.clean
        assert report.edits_applied == 40
        assert report.queries >= 60
        assert report.epochs >= 4
        assert report.torn_reads == 0

    def test_run_load_requires_a_running_service(self):
        svc = UpdateService(grid_road(3, 3, seed=0), 0)
        with pytest.raises(ReproError, match="running"):
            run_load(svc, edits=1, queries=1)
        svc.stop()


class TestSnapshotIsolation:
    """Satellite property: pinned epochs are bitwise-immutable.

    A reader pins the pre-ingest epoch, then >= 3 further batches are
    applied and published by the writer thread; the pinned arrays must
    be byte-for-byte what they were at publication, still frozen, and
    the digest must re-verify."""

    def _pin_and_update(self, engine, seed, *, steps=3, batch_size=8):
        g = grid_road(5, 5, seed=seed % 97)
        svc = UpdateService(g, 0, engine=engine, threads=2,
                            flush_size=batch_size, flush_latency=0.005)
        svc.start()
        try:
            pinned = svc.snapshot()
            dist_bytes = pinned.dist.tobytes()
            parent_bytes = pinned.parent.tobytes()
            _drive_edits(svc, steps=steps, batch_size=batch_size,
                         seed=seed)
            assert svc.drain(timeout=60.0)
            assert svc.error is None
            # flush_size caps every take(): >= `steps` batches landed
            assert svc.epochs_published >= pinned.epoch + steps
            assert svc.snapshot() is not pinned
            # the pinned epoch: bitwise-identical, frozen, digest intact
            assert pinned.dist.tobytes() == dist_bytes
            assert pinned.parent.tobytes() == parent_bytes
            assert not pinned.dist.flags.writeable
            assert not pinned.parent.flags.writeable
            assert pinned.verify()
        finally:
            svc.stop(drain=True, timeout=60.0)

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_pinned_epoch_survives_concurrent_batches_shm(self, seed):
        # default min_dispatch_items: small graphs run inline, so each
        # example exercises the full shm publish path without paying a
        # worker-pool spawn
        self._pin_and_update("shm", seed)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_pinned_epoch_survives_concurrent_batches_threads(self, seed):
        self._pin_and_update("threads", seed)

    def test_pinned_epoch_survives_real_dispatch(self):
        # one non-hypothesis pin through a *live worker pool*: every
        # update superstep crosses process boundaries before publishing
        eng = SharedMemoryEngine(threads=2, min_dispatch_items=1)
        try:
            self._pin_and_update(eng, seed=11, steps=3, batch_size=8)
        finally:
            eng.close()
