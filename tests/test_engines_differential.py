"""Cross-backend differential property test (satellite 4).

Every backend family — serial, threads, processes, shm, simulated —
must produce the **identical** distance fixpoint for
``sosp_update``/``mosp_update`` over random graphs and insertion
batches.  Serial is the oracle; the other engines only change *how*
the same supersteps execute (threads: real pool; processes: closure
round-trip or its documented serial fallback; shm: slab dispatch over
planted shared-memory arrays; simulated: virtual-clock replay), so the
label-correcting fixpoint is bitwise reproducible.

The shm engine runs with ``min_dispatch_items=1`` so even the tiny
hypothesis graphs take the real dispatch path, and the process-pool
engines are module-scoped — spawning a pool per example would dominate
the suite.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SOSPTree, mosp_update, sosp_update
from repro.dynamic import ChangeBatch
from repro.graph import DiGraph
from repro.graph.csr import CSRGraph
from repro.parallel import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    SimulatedEngine,
    ThreadEngine,
)

pytestmark = pytest.mark.slow

ENGINES = [
    SerialEngine(),
    ThreadEngine(threads=2),
    ProcessEngine(threads=2),
    SharedMemoryEngine(threads=2, min_dispatch_items=1),
    SimulatedEngine(threads=4),
]


def teardown_module(module) -> None:
    for e in ENGINES:
        closer = getattr(e, "close", None)
        if callable(closer):
            closer()


@st.composite
def graph_and_batches(draw, k=1, max_n=14, max_batches=3):
    """A random digraph plus a sequence of random insertion batches."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.tuples(*([weight] * k)),
    )
    edges = draw(st.lists(edge, min_size=0, max_size=m))
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    n_batches = draw(st.integers(1, max_batches))
    batches = [
        ChangeBatch.insertions(draw(st.lists(edge, min_size=1, max_size=8)))
        for _ in range(n_batches)
    ]
    return g, batches


def _run_sosp(engine, graph, batches):
    """Play the batches through the CSR kernel path on ``engine``."""
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.append_batch(batch)
        sosp_update(g, tree, batch, engine=engine,
                    use_csr_kernels=True, csr=snapshot)
    return tree


@settings(max_examples=20, deadline=None)
@given(data=graph_and_batches())
def test_sosp_update_identical_across_backends(data):
    graph, batches = data
    reference = _run_sosp(ENGINES[0], graph, batches)
    for engine in ENGINES[1:]:
        tree = _run_sosp(engine, graph, batches)
        np.testing.assert_array_equal(
            tree.dist, reference.dist,
            err_msg=f"dist diverged on backend {engine.name}",
        )
        g_final = copy.deepcopy(graph)
        for batch in batches:
            batch.apply_to(g_final)
        tree.certify(g_final)


@settings(max_examples=8, deadline=None)
@given(data=graph_and_batches(k=2, max_n=10, max_batches=1))
def test_mosp_update_identical_across_backends(data):
    graph, batches = data
    results = []
    for engine in ENGINES:
        g = copy.deepcopy(graph)
        for batch in batches:
            batch.apply_to(g)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        r = mosp_update(g, trees, engine=engine, use_csr_kernels=True)
        results.append(r.dist_vectors.copy())
    for engine, dv in zip(ENGINES[1:], results[1:]):
        np.testing.assert_array_equal(
            dv, results[0],
            err_msg=f"MOSP cost vectors diverged on backend {engine.name}",
        )
