"""Cross-backend differential property test (satellite 4).

Every backend family — serial, threads, processes, shm, simulated —
must produce the **identical** distance fixpoint for
``sosp_update``/``mosp_update`` over random graphs and insertion
batches.  Serial is the oracle; the other engines only change *how*
the same supersteps execute (threads: real pool; processes: closure
round-trip or its documented serial fallback; shm: slab dispatch over
planted shared-memory arrays; simulated: virtual-clock replay), so the
label-correcting fixpoint is bitwise reproducible.

The shm engine runs with ``min_dispatch_items=1`` so even the tiny
hypothesis graphs take the real dispatch path, and the process-pool
engines are module-scoped — spawning a pool per example would dominate
the suite.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SOSPTree, apply_mixed_batch, mosp_update, sosp_update
from repro.core import kernels
from repro.dynamic import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_WEIGHT,
    ChangeBatch,
)
from repro.graph import DiGraph
from repro.graph.csr import CSRGraph
from repro.parallel import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    SimulatedEngine,
    ThreadEngine,
)

pytestmark = pytest.mark.slow

ENGINES = [
    SerialEngine(),
    ThreadEngine(threads=2),
    ProcessEngine(threads=2),
    SharedMemoryEngine(threads=2, min_dispatch_items=1),
    SimulatedEngine(threads=4),
]


def teardown_module(module) -> None:
    for e in ENGINES:
        closer = getattr(e, "close", None)
        if callable(closer):
            closer()


@st.composite
def graph_and_batches(draw, k=1, max_n=14, max_batches=3):
    """A random digraph plus a sequence of random insertion batches."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.tuples(*([weight] * k)),
    )
    edges = draw(st.lists(edge, min_size=0, max_size=m))
    g = DiGraph(n, k=k)
    for u, v, w in edges:
        g.add_edge(u, v, w)
    n_batches = draw(st.integers(1, max_batches))
    batches = [
        ChangeBatch.insertions(draw(st.lists(edge, min_size=1, max_size=8)))
        for _ in range(n_batches)
    ]
    return g, batches


def _run_sosp(engine, graph, batches):
    """Play the batches through the CSR kernel path on ``engine``."""
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.append_batch(batch)
        sosp_update(g, tree, batch, engine=engine,
                    use_csr_kernels=True, csr=snapshot)
    return tree


@settings(max_examples=20, deadline=None)
@given(data=graph_and_batches())
def test_sosp_update_identical_across_backends(data):
    graph, batches = data
    reference = _run_sosp(ENGINES[0], graph, batches)
    for engine in ENGINES[1:]:
        tree = _run_sosp(engine, graph, batches)
        np.testing.assert_array_equal(
            tree.dist, reference.dist,
            err_msg=f"dist diverged on backend {engine.name}",
        )
        g_final = copy.deepcopy(graph)
        for batch in batches:
            batch.apply_to(g_final)
        tree.certify(g_final)


@st.composite
def graph_and_mixed_batches(draw, max_n=12, max_batches=2):
    """A random digraph plus mixed insert/delete/re-weight batches,
    biased so some records hit live (often tree) edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    weight = st.integers(min_value=0, max_value=9).map(float)
    vertex = st.integers(0, n - 1)
    edge = st.tuples(vertex, vertex, st.tuples(weight))
    base = draw(st.lists(edge, min_size=0, max_size=3 * n))
    g = DiGraph(n, k=1)
    for u, v, w in base:
        g.add_edge(u, v, w)
    pair = st.tuples(vertex, vertex)
    if base:
        pair = st.one_of(
            st.sampled_from([(u, v) for u, v, _ in base]), pair
        )
    record = st.tuples(
        st.sampled_from([KIND_DELETE, KIND_INSERT, KIND_WEIGHT]),
        pair,
        weight,
    )
    batches = []
    for _ in range(draw(st.integers(1, max_batches))):
        records = draw(st.lists(record, min_size=1, max_size=8))
        batches.append(ChangeBatch(
            np.array([r[1][0] for r in records], dtype=np.int64),
            np.array([r[1][1] for r in records], dtype=np.int64),
            np.array([[r[2]] for r in records], dtype=np.float64),
            np.array([r[0] for r in records], dtype=np.int8),
        ))
    return g, batches


def _run_mixed(engine, graph, batches):
    """Play mixed batches through the CSR kernel path on ``engine``,
    keeping the snapshot in sync via incremental ``apply_batch``."""
    g = copy.deepcopy(graph)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    for batch in batches:
        batch.apply_to(g)
        snapshot.apply_batch(batch)
        apply_mixed_batch(g, tree, batch, engine=engine,
                          use_csr_kernels=True, csr=snapshot)
    return g, tree


@settings(max_examples=20, deadline=None)
@given(data=graph_and_mixed_batches())
def test_mixed_batches_identical_across_backends(data):
    graph, batches = data
    _, reference = _run_mixed(ENGINES[0], graph, batches)
    for engine in ENGINES[1:]:
        g_final, tree = _run_mixed(engine, graph, batches)
        np.testing.assert_array_equal(
            tree.dist, reference.dist,
            err_msg=f"mixed-batch dist diverged on backend {engine.name}",
        )
        tree.certify(g_final)


def test_shm_crash_recovery_matches_oracle(monkeypatch):
    """Kill a shm worker mid-repair (after it has poisoned its dist
    slab) and assert the transactional rollback + inline re-run still
    lands on the serial-oracle fixpoint.

    The crash kernel (``tests._shm_support.crash_then_propagate_slab``)
    dies only inside spawn pool workers; the recovery re-run resolves
    the same ref on the master, where it delegates to the real slab
    kernel.
    """
    g = DiGraph(8, k=1)
    for u, v, w in [
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0),
        (0, 5, 9.0), (5, 6, 1.0), (6, 7, 1.0), (4, 7, 1.0),
        (1, 5, 2.0), (2, 6, 2.0), (6, 3, 1.0),
    ]:
        g.add_edge(u, v, w)
    # two insertions whose targets (4 and 6) have *distinct*
    # out-neighbors, so the first repair wave fans out to >= 2 frontier
    # vertices: a single-item wave would run inline (one span) and
    # never reach the worker pool, so nothing would crash
    batch = ChangeBatch(
        np.array([1, 0, 0, 2], dtype=np.int64),
        np.array([2, 4, 6, 6], dtype=np.int64),
        np.array([[0.0], [3.0], [1.0], [1.5]], dtype=np.float64),
        np.array([KIND_DELETE, KIND_INSERT, KIND_INSERT, KIND_WEIGHT],
                 dtype=np.int8),
    )

    g_ref = copy.deepcopy(g)
    tree_ref = SOSPTree.build(g_ref, 0)
    batch.apply_to(g_ref)
    apply_mixed_batch(g_ref, tree_ref, batch)

    monkeypatch.setattr(
        kernels, "_PROPAGATE_SLAB_REF",
        "tests._shm_support:crash_then_propagate_slab",
    )
    monkeypatch.setattr(kernels, "MIN_SLAB_ITEMS", 1)
    engine = SharedMemoryEngine(threads=2, min_dispatch_items=1)
    try:
        tree = SOSPTree.build(g, 0)
        snapshot = CSRGraph.from_digraph(g)
        batch.apply_to(g)
        snapshot.apply_batch(batch)
        with pytest.warns(RuntimeWarning, match="died mid-superstep"):
            apply_mixed_batch(g, tree, batch, engine=engine,
                              use_csr_kernels=True, csr=snapshot)
    finally:
        engine.close()
    np.testing.assert_array_equal(tree.dist, tree_ref.dist)
    tree.certify(g)


@settings(max_examples=8, deadline=None)
@given(data=graph_and_batches(k=2, max_n=10, max_batches=1))
def test_mosp_update_identical_across_backends(data):
    graph, batches = data
    results = []
    for engine in ENGINES:
        g = copy.deepcopy(graph)
        for batch in batches:
            batch.apply_to(g)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        r = mosp_update(g, trees, engine=engine, use_csr_kernels=True)
        results.append(r.dist_vectors.copy())
    for engine, dv in zip(ENGINES[1:], results[1:]):
        np.testing.assert_array_equal(
            dv, results[0],
            err_msg=f"MOSP cost vectors diverged on backend {engine.name}",
        )
