"""Shared test configuration.

Registers the hypothesis *settings profiles* used by the property
suites:

- ``default`` — 200 examples per property, the certification bar the
  differential kernel oracle (``test_kernels_differential.py``) is
  required to clear locally;
- ``ci`` — a capped profile for the fast continuous-integration job,
  selected with ``HYPOTHESIS_PROFILE=ci``.

Properties that pin their own ``@settings(max_examples=...)`` (the
older suites) are unaffected.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
