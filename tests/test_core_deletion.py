"""Tests for the fully dynamic extension (deletions + mixed batches)."""

import numpy as np
import pytest

from repro.core import SOSPTree, sosp_update_fulldynamic
from repro.dynamic import (
    ChangeBatch,
    random_delete_batch,
    random_insert_batch,
    random_mixed_batch,
)
from repro.graph import DiGraph, erdos_renyi, grid_road
from repro.parallel import SimulatedEngine
from repro.sssp import dijkstra


def assert_tree_correct(g, tree):
    ref, _ = dijkstra(g, tree.source, tree.objective)
    np.testing.assert_allclose(tree.dist, ref, rtol=1e-9)
    tree.certify(g)


class TestDeletions:
    def test_delete_nontree_edge_noop(self):
        g = DiGraph.from_edge_list(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 5.0)])
        tree = SOSPTree.build(g, 0)
        before = tree.dist.copy()
        batch = ChangeBatch.deletions([(1, 2)])
        batch.apply_to(g)
        stats = sosp_update_fulldynamic(g, tree, batch)
        np.testing.assert_array_equal(tree.dist, before)
        assert stats.invalidated == 0
        assert_tree_correct(g, tree)

    def test_delete_tree_edge_reroutes(self):
        g = DiGraph.from_edge_list(
            3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]
        )
        tree = SOSPTree.build(g, 0)
        assert tree.dist[2] == 2.0
        batch = ChangeBatch.deletions([(1, 2)])
        batch.apply_to(g)
        stats = sosp_update_fulldynamic(g, tree, batch)
        assert tree.dist[2] == 5.0
        assert tree.parent[2] == 0
        assert stats.invalidated == 1
        assert_tree_correct(g, tree)

    def test_delete_disconnects_subtree(self):
        # path 0 -> 1 -> 2 -> 3; cutting (0,1) strands everything
        g = DiGraph.from_edge_list(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
        )
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.deletions([(0, 1)])
        batch.apply_to(g)
        stats = sosp_update_fulldynamic(g, tree, batch)
        assert np.isinf(tree.dist[1:]).all()
        assert (tree.parent[1:] == -1).all()
        assert stats.invalidated == 3
        assert_tree_correct(g, tree)

    def test_subtree_reconnects_through_side_door(self):
        # cutting the trunk forces the subtree to re-enter via a
        # more expensive side edge
        g = DiGraph.from_edge_list(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 4, 10.0),
                (4, 2, 10.0),
            ],
        )
        tree = SOSPTree.build(g, 0)
        assert tree.dist.tolist() == [0.0, 1.0, 2.0, 3.0, 10.0]
        batch = ChangeBatch.deletions([(1, 2)])
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert tree.dist.tolist() == [0.0, 1.0, 20.0, 21.0, 10.0]
        assert_tree_correct(g, tree)

    def test_parallel_edge_survives_deletion(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 3.0)
        g.add_edge(0, 1, 3.0)  # duplicate weight
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.deletions([(0, 1)])
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert tree.dist[1] == 3.0  # twin edge still certifies
        assert_tree_correct(g, tree)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_deletions_match_recompute(self, seed):
        g = erdos_renyi(40, 200, seed=seed)
        tree = SOSPTree.build(g, 0)
        batch = random_delete_batch(g, 40, seed=seed + 1)
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert_tree_correct(g, tree)


class TestMixedBatches:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mixed_matches_recompute(self, seed):
        g = grid_road(7, 7, seed=seed)
        tree = SOSPTree.build(g, 0)
        batch = random_mixed_batch(g, 60, insert_fraction=0.6,
                                   seed=seed + 5)
        batch.apply_to(g)
        stats = sosp_update_fulldynamic(g, tree, batch)
        assert_tree_correct(g, tree)
        if batch.num_insertions:
            assert stats.insert_stats is not None

    def test_insert_only_delegates_to_algorithm1(self):
        g = erdos_renyi(20, 80, seed=0)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 20, seed=1)
        batch.apply_to(g)
        stats = sosp_update_fulldynamic(g, tree, batch)
        assert stats.invalidated == 0
        assert stats.insert_stats is not None
        assert_tree_correct(g, tree)

    def test_delete_then_reinsert_same_edge(self):
        g = DiGraph.from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.concat(
            ChangeBatch.deletions([(1, 2)]),
            ChangeBatch.insertions([(1, 2, 4.0)]),
        )
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert tree.dist[2] == 5.0
        assert_tree_correct(g, tree)

    def test_engine_accounting(self):
        g = erdos_renyi(40, 160, seed=9)
        tree = SOSPTree.build(g, 0)
        batch = random_mixed_batch(g, 60, insert_fraction=0.5, seed=10)
        batch.apply_to(g)
        eng = SimulatedEngine(threads=4)
        sosp_update_fulldynamic(g, tree, batch, engine=eng)
        assert eng.virtual_time > 0
        assert_tree_correct(g, tree)


class TestMultiObjectiveDeletion:
    def test_second_objective_tree(self):
        g = erdos_renyi(30, 150, k=2, seed=11)
        tree = SOSPTree.build(g, 0, objective=1)
        batch = random_delete_batch(g, 30, seed=12)
        batch.apply_to(g)
        sosp_update_fulldynamic(g, tree, batch)
        assert_tree_correct(g, tree)
