"""Unit tests for SOSPTree, MOSPResult, and small shared utilities."""

import numpy as np
import pytest

from repro.core import MOSPResult, SOSPTree
from repro.core.ensemble import EnsembleGraph
from repro.errors import (
    NotReachableError,
    OwnershipViolation,
    ReproError,
    TreeInvariantError,
    VertexError,
)
from repro.graph import CSRGraph, DiGraph, erdos_renyi
from repro.types import INF, NO_PARENT, as_float_array, as_vertex_array


class TestSOSPTree:
    @pytest.fixture
    def tree(self):
        g = DiGraph.from_edge_list(
            5, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 5.0), (2, 3, 1.0)]
        )
        return g, SOSPTree.build(g, 0)

    def test_build_algorithms_agree(self):
        g = erdos_renyi(30, 120, seed=0)
        td = SOSPTree.build(g, 0, algorithm="dijkstra")
        tb = SOSPTree.build(g, 0, algorithm="bellman_ford")
        np.testing.assert_allclose(td.dist, tb.dist)

    def test_build_from_csr(self):
        g = erdos_renyi(10, 40, seed=1)
        t = SOSPTree.build(CSRGraph.from_digraph(g), 0)
        assert t.num_vertices == 10

    def test_path_to_source(self, tree):
        g, t = tree
        assert t.path_to(0) == [0]

    def test_path_to_unreachable_raises(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        t = SOSPTree.build(g, 0)
        with pytest.raises(NotReachableError):
            t.path_to(2)

    def test_path_to_bad_vertex(self, tree):
        g, t = tree
        with pytest.raises(VertexError):
            t.path_to(77)

    def test_path_to_detects_parent_cycle(self):
        # corrupted parent pointers must not loop forever
        t = SOSPTree(0, np.array([0.0, 1.0, 2.0]),
                     np.array([-1, 2, 1]))
        with pytest.raises(NotReachableError):
            t.path_to(2)

    def test_tree_edges(self, tree):
        g, t = tree
        assert set(t.tree_edges()) == {(0, 1), (1, 2), (2, 3)}

    def test_children_lists(self, tree):
        g, t = tree
        children = t.children_lists()
        assert children[0] == [1]
        assert children[1] == [2]
        assert children[2] == [3]
        assert children[3] == []

    def test_reachable_mask(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        t = SOSPTree.build(g, 0)
        assert t.reachable_mask().tolist() == [True, True, False]

    def test_copy_independent(self, tree):
        g, t = tree
        c = t.copy()
        c.dist[1] = 99.0
        assert t.dist[1] == 1.0

    def test_certify_good_and_bad(self, tree):
        g, t = tree
        t.certify(g)
        t.dist[3] = 0.5
        with pytest.raises(TreeInvariantError):
            t.certify(g)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VertexError):
            SOSPTree(0, np.zeros(3), np.zeros(2, dtype=np.int64))


class TestMOSPResult:
    def make(self):
        parent = np.array([-1, 0, -1], dtype=np.int64)
        dv = np.array([[0.0, 0.0], [1.0, 2.0], [INF, INF]])
        return MOSPResult(source=0, parent=parent, dist_vectors=dv,
                          ensemble=None)

    def test_path_and_cost(self):
        r = self.make()
        assert r.path_to(1) == [0, 1]
        assert r.cost_to(1).tolist() == [1.0, 2.0]

    def test_unreachable(self):
        r = self.make()
        with pytest.raises(NotReachableError):
            r.path_to(2)

    def test_broken_parent_chain(self):
        r = self.make()
        r.parent[1] = -1  # reachable cost but no parent
        with pytest.raises(NotReachableError):
            r.path_to(1)


class TestTypesHelpers:
    def test_as_float_array(self):
        a = as_float_array([1, 2, 3])
        assert a.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"]

    def test_as_vertex_array(self):
        a = as_vertex_array([1, 2])
        assert a.dtype == np.int64

    def test_sentinels(self):
        assert INF == float("inf")
        assert NO_PARENT == -1


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (VertexError(1, 0), NotReachableError(0, 1),
                    TreeInvariantError("x"), OwnershipViolation(1, 0, 1)):
            assert isinstance(exc, ReproError)

    def test_vertex_error_message(self):
        e = VertexError(7, 3, "somewhere")
        assert "7" in str(e) and "somewhere" in str(e)

    def test_ownership_violation_fields(self):
        e = OwnershipViolation(5, 1, 2)
        assert e.vertex == 5
        assert e.first_task == 1 and e.second_task == 2

    def test_not_reachable_fields(self):
        e = NotReachableError(2, 9)
        assert e.source == 2 and e.destination == 9
