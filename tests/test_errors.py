"""Contract tests for the repro exception hierarchy."""

import pickle

import pytest

import repro.errors as errors_mod
from repro.errors import (
    AlgorithmError,
    BatchError,
    BenchmarkError,
    EdgeError,
    EngineError,
    GraphError,
    IOFormatError,
    NotReachableError,
    OwnershipViolation,
    ReproError,
    TreeInvariantError,
    VertexError,
    WeightError,
)

LEAF_CLASSES = [
    GraphError, VertexError, EdgeError, WeightError, EngineError,
    OwnershipViolation, AlgorithmError, TreeInvariantError,
    NotReachableError, BatchError, IOFormatError, BenchmarkError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", LEAF_CLASSES)
    def test_everything_derives_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_structure(self):
        assert issubclass(VertexError, GraphError)
        assert issubclass(EdgeError, GraphError)
        assert issubclass(WeightError, GraphError)
        assert issubclass(OwnershipViolation, EngineError)
        assert issubclass(TreeInvariantError, AlgorithmError)
        assert issubclass(NotReachableError, AlgorithmError)

    def test_all_exports_exist_and_are_complete(self):
        exported = set(errors_mod.__all__)
        defined = {
            name
            for name, obj in vars(errors_mod).items()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        }
        defined.add("ReproError")
        assert exported == defined

    def test_single_except_catches_library_failures(self):
        with pytest.raises(ReproError):
            raise OwnershipViolation(1, 0, 2)


class TestAttributes:
    def test_vertex_error(self):
        exc = VertexError(12, 10, context="add_edge")
        assert exc.vertex == 12 and exc.n == 10
        msg = str(exc)
        assert "vertex 12" in msg and "[0, 10)" in msg
        assert msg.startswith("add_edge:")

    def test_vertex_error_without_context(self):
        assert str(VertexError(3, 2)) == "vertex 3 out of range [0, 2)"

    def test_not_reachable(self):
        exc = NotReachableError(0, 9)
        assert exc.source == 0 and exc.destination == 9
        assert "vertex 9" in str(exc) and "source 0" in str(exc)

    def test_ownership_violation_reports_vertex_and_both_tasks(self):
        exc = OwnershipViolation(42, first_task=3, second_task=17)
        assert exc.vertex == 42
        assert exc.first_task == 3
        assert exc.second_task == 17
        msg = str(exc)
        assert "vertex 42" in msg
        assert "task 3" in msg and "task 17" in msg
        assert "superstep" in msg  # names the violated invariant


class TestRoundTrips:
    RICH = [
        VertexError(5, 3, context="ctx"),
        NotReachableError(1, 2),
        OwnershipViolation(7, 0, 1),
    ]

    @pytest.mark.parametrize("exc", RICH, ids=lambda e: type(e).__name__)
    def test_repr_names_class_and_str_survives(self, exc):
        assert type(exc).__name__ in repr(exc)
        assert str(exc)  # non-empty, human-readable

    @pytest.mark.parametrize("exc", RICH, ids=lambda e: type(e).__name__)
    def test_pickle_round_trip_preserves_message(self, exc):
        # engines may ship exceptions across process boundaries
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)

    @pytest.mark.parametrize("cls", [
        GraphError, EdgeError, WeightError, EngineError, AlgorithmError,
        TreeInvariantError, BatchError, IOFormatError, BenchmarkError,
    ])
    def test_plain_classes_round_trip_message(self, cls):
        exc = cls("something specific went wrong")
        assert str(exc) == "something specific went wrong"
        clone = pickle.loads(pickle.dumps(exc))
        assert str(clone) == str(exc)
