"""Tests for cost-model calibration and the ProcessEngine backend."""

import pytest

from repro.bench.calibration import (
    calibrate_cost_model,
    measure_seconds_per_relaxation,
)
from repro.parallel import ProcessEngine, SimulatedEngine
from repro.parallel.backends.processes import _chunk_runner


def test_measurement_positive_and_plausible():
    s = measure_seconds_per_relaxation(iterations=20_000)
    # a Python relaxation costs somewhere between 10ns and 100µs on
    # any machine this century
    assert 1e-8 < s < 1e-4


def test_calibrated_model_scales_consistently():
    cm = calibrate_cost_model(iterations=20_000)
    default_ratio = cm.task_overhead / cm.seconds_per_unit
    from repro.parallel.backends.simulated import CostModel

    base = CostModel()
    assert default_ratio == pytest.approx(
        base.task_overhead / base.seconds_per_unit
    )
    assert cm.barrier_cost(8) > 0


def test_calibrated_model_drives_engine():
    cm = calibrate_cost_model(iterations=20_000)
    eng = SimulatedEngine(threads=4, cost_model=cm)
    eng.parallel_for([1, 2, 3], lambda x: x, work_fn=lambda i, r: 10.0)
    assert eng.virtual_time > 0


# ----------------------------------------------------------------------
# ProcessEngine: needs module-level (picklable) task functions
# ----------------------------------------------------------------------

def _square(x):
    return x * x


class TestProcessEngine:
    def test_small_input_runs_inline(self):
        eng = ProcessEngine(threads=2, min_items_per_process=100)
        assert eng.parallel_for([1, 2, 3], _square) == [1, 4, 9]
        eng.close()

    def test_picklable_function_across_processes(self):
        with ProcessEngine(threads=2, min_items_per_process=1) as eng:
            out = eng.parallel_for(list(range(40)), _square)
        assert out == [i * i for i in range(40)]

    def test_unpicklable_falls_back_with_warning(self):
        captured = []

        def closure(x):
            # intentionally unpicklable shared state: proves the
            # process engine's serial fallback still runs the closure
            captured.append(x)  # repro: noqa(R001)
            return x + 1

        eng = ProcessEngine(threads=2, min_items_per_process=1)
        with pytest.warns(RuntimeWarning):
            out = eng.parallel_for(list(range(10)), closure)  # repro: noqa(R007)
        assert out == list(range(1, 11))
        eng.close()

    def test_chunk_runner_roundtrip(self):
        import pickle

        blob = pickle.dumps((_square, [2, 3]))
        reply = _chunk_runner(blob)
        assert reply[:1] == b"R"  # tagged: results follow
        assert pickle.loads(reply[1:]) == [4, 9]

    def test_chunk_runner_reports_undecodable_payload(self):
        import pickle

        reply = _chunk_runner(b"\x80\x05 not a pickle")
        assert reply[:1] == b"U"  # tagged: unpicklable, master falls back
        assert isinstance(pickle.loads(reply[1:]), str)
