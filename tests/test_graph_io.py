"""Unit tests for repro.graph.io and repro.graph.multiweight."""

import io

import numpy as np
import pytest

from repro.errors import IOFormatError, WeightError
from repro.graph import DiGraph, attach_random_weights, erdos_renyi
from repro.graph.io import (
    edge_list_to_string,
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.graph.multiweight import (
    anticorrelated_weights,
    correlated_weights,
    uniform_weights,
)


class TestEdgeList:
    def test_roundtrip_scalar(self, tmp_path):
        g = erdos_renyi(10, 30, seed=0)
        p = tmp_path / "g.el"
        write_edge_list(g, p)
        h = read_edge_list(p)
        assert h.num_vertices == g.num_vertices
        assert h.num_edges == g.num_edges
        assert sorted((u, v) for u, v, _ in h.edges()) == sorted(
            (u, v) for u, v, _ in g.edges()
        )

    def test_roundtrip_multiweight_exact(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (1.25, 2.5))
        g.add_edge(1, 2, (0.1, 9.0))
        s = edge_list_to_string(g)
        h = read_edge_list(io.StringIO(s))
        assert h.num_objectives == 2
        ws = sorted(tuple(h.weight(e)) for _, _, e in h.edges())
        assert ws == [(0.1, 9.0), (1.25, 2.5)]

    def test_header_preserves_isolated_vertices(self):
        g = DiGraph(10)
        g.add_edge(0, 1, 1.0)
        h = read_edge_list(io.StringIO(edge_list_to_string(g)))
        assert h.num_vertices == 10

    def test_headerless_infers_n_and_k(self):
        h = read_edge_list(io.StringIO("0 3 1.0 2.0\n3 1 4.0 5.0\n"))
        assert h.num_vertices == 4
        assert h.num_objectives == 2

    def test_empty_file(self):
        h = read_edge_list(io.StringIO(""))
        assert h.num_vertices == 0

    def test_short_line_rejected(self):
        with pytest.raises(IOFormatError):
            read_edge_list(io.StringIO("0 1\n"))

    def test_garbage_rejected(self):
        with pytest.raises(IOFormatError):
            read_edge_list(io.StringIO("a b c\n"))

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(IOFormatError):
            read_edge_list(io.StringIO("0 1 1.0\n1 2 1.0 2.0\n"))


class TestMatrixMarket:
    def test_pattern_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% a comment\n"
            "3 3 2\n"
            "2 1\n"
            "3 2\n"
        )
        g = read_matrix_market(io.StringIO(text), k=2)
        # symmetric -> both directions
        assert g.num_edges == 4
        assert g.has_edge(1, 0) and g.has_edge(0, 1)
        assert g.num_objectives == 2

    def test_real_general(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 1
        assert g.weight_scalar(0) == 3.5

    def test_negative_values_folded_to_abs(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 -3.5\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.weight_scalar(0) == 3.5

    def test_missing_header_rejected(self):
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO("1 1 0\n"))

    def test_wrong_entry_count_rejected(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 5\n"
            "1 2\n"
        )
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO(text))

    def test_write_then_read(self, tmp_path):
        g = erdos_renyi(8, 20, seed=2)
        p = tmp_path / "g.mtx"
        write_matrix_market(g, p)
        h = read_matrix_market(p)
        assert h.num_edges == g.num_edges


class TestWeightDistributions:
    def test_uniform_range(self):
        w = uniform_weights(1000, 2, np.random.default_rng(0), 1.0, 10.0)
        assert w.shape == (1000, 2)
        assert w.min() >= 1.0 and w.max() < 10.0

    def test_uniform_bad_range_rejected(self):
        with pytest.raises(WeightError):
            uniform_weights(10, 1, np.random.default_rng(0), 5.0, 5.0)

    def test_correlated_positive_correlation(self):
        w = correlated_weights(5000, 2, np.random.default_rng(0))
        r = np.corrcoef(w[:, 0], w[:, 1])[0, 1]
        assert r > 0.9

    def test_anticorrelated_negative_correlation(self):
        w = anticorrelated_weights(5000, 2, np.random.default_rng(0))
        r = np.corrcoef(w[:, 0], w[:, 1])[0, 1]
        assert r < -0.9

    def test_all_distributions_nonnegative(self):
        rng = np.random.default_rng(1)
        for fn in (uniform_weights, correlated_weights, anticorrelated_weights):
            w = fn(200, 3, rng)
            assert np.all(w >= 0) and np.all(np.isfinite(w))


class TestAttachRandomWeights:
    def test_changes_k(self):
        g = erdos_renyi(10, 30, seed=0, k=1)
        h = attach_random_weights(g, k=3, rng=np.random.default_rng(0))
        assert h.num_objectives == 3
        assert h.num_edges == g.num_edges

    def test_topology_preserved(self):
        g = erdos_renyi(10, 30, seed=0)
        h = attach_random_weights(g, k=2, rng=np.random.default_rng(0))
        assert sorted((u, v) for u, v, _ in h.edges()) == sorted(
            (u, v) for u, v, _ in g.edges()
        )

    def test_unknown_distribution_rejected(self):
        g = erdos_renyi(5, 5, seed=0)
        with pytest.raises(WeightError):
            attach_random_weights(g, k=2, distribution="zipf")

    def test_deterministic_given_rng_seed(self):
        g = erdos_renyi(10, 30, seed=0)
        h1 = attach_random_weights(g, k=2, rng=np.random.default_rng(7))
        h2 = attach_random_weights(g, k=2, rng=np.random.default_rng(7))
        w1 = sorted(tuple(h1.weight(e)) for _, _, e in h1.edges())
        w2 = sorted(tuple(h2.weight(e)) for _, _, e in h2.edges())
        assert w1 == w2
