"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plotting import ascii_line_chart


class TestAsciiChart:
    def test_empty(self):
        assert ascii_line_chart({}) == "(no data)"
        assert ascii_line_chart({"a": []}) == "(no data)"

    def test_single_series_markers_present(self):
        chart = ascii_line_chart(
            {"speed": [(1, 1.0), (2, 2.0), (4, 4.0)]}, width=30, height=8
        )
        assert chart.count("o") >= 3
        assert "legend: o speed" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_line_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 2.0), (2, 1.0)]},
        )
        assert "o a" in chart and "x b" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels(self):
        chart = ascii_line_chart(
            {"a": [(1, 10.0), (64, 500.0)]},
            x_label="threads", y_label="ms", log_x=True,
        )
        assert "ms vs threads" in chart
        assert "[log x]" in chart
        assert "500" in chart and "10" in chart

    def test_constant_series_no_crash(self):
        chart = ascii_line_chart({"flat": [(1, 5.0), (2, 5.0), (3, 5.0)]})
        assert "flat" in chart

    def test_single_point(self):
        chart = ascii_line_chart({"dot": [(3, 7.0)]})
        assert "o" in chart

    def test_dimensions_respected(self):
        chart = ascii_line_chart(
            {"a": [(1, 1.0), (10, 10.0)]}, width=25, height=6
        )
        canvas_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(canvas_lines) == 6
        assert all(len(l.split("|", 1)[1]) == 25 for l in canvas_lines)

    def test_connecting_dots_drawn(self):
        chart = ascii_line_chart(
            {"a": [(1, 1.0), (100, 100.0)]}, width=40, height=12
        )
        assert "." in chart  # interpolation between distant points
