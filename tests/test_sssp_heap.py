"""Tests for the priority-queue substrates and queue-variant Dijkstra."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.graph import erdos_renyi, grid_road
from repro.sssp import dijkstra
from repro.sssp.heap import AddressableBinaryHeap, BucketQueue


class TestAddressableHeap:
    def test_pop_order(self):
        h = AddressableBinaryHeap()
        for item, key in [("a", 5.0), ("b", 1.0), ("c", 3.0)]:
            h.push(item, key)
        assert [h.pop() for _ in range(3)] == [
            ("b", 1.0), ("c", 3.0), ("a", 5.0)
        ]

    def test_decrease_key_moves_item(self):
        h = AddressableBinaryHeap()
        h.push("a", 9.0)
        h.push("b", 5.0)
        assert h.decrease_key("a", 1.0)
        assert h.pop() == ("a", 1.0)

    def test_decrease_key_ignores_increase(self):
        h = AddressableBinaryHeap()
        h.push("a", 2.0)
        assert not h.decrease_key("a", 7.0)
        assert h.key_of("a") == 2.0

    def test_decrease_key_inserts_absent(self):
        h = AddressableBinaryHeap()
        assert h.decrease_key("new", 4.0)
        assert "new" in h

    def test_duplicate_push_rejected(self):
        h = AddressableBinaryHeap()
        h.push("a", 1.0)
        with pytest.raises(AlgorithmError):
            h.push("a", 2.0)

    def test_empty_pop_peek_rejected(self):
        h = AddressableBinaryHeap()
        with pytest.raises(AlgorithmError):
            h.pop()
        with pytest.raises(AlgorithmError):
            h.peek()

    def test_peek_does_not_remove(self):
        h = AddressableBinaryHeap()
        h.push("a", 1.0)
        assert h.peek() == ("a", 1.0)
        assert len(h) == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1,
                    max_size=100))
    def test_heapsort_matches_sorted(self, keys):
        h = AddressableBinaryHeap()
        for i, k in enumerate(keys):
            h.push(i, k)
        popped = [h.pop()[1] for _ in range(len(keys))]
        assert popped == sorted(keys)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20),
                              st.floats(0, 100, allow_nan=False)),
                    min_size=1, max_size=150))
    def test_against_reference_with_decreases(self, ops):
        """Random push/decrease sequences agree with a dict + sort."""
        h = AddressableBinaryHeap()
        best = {}
        for item, key in ops:
            if item in best:
                if key < best[item]:
                    best[item] = key
                h.decrease_key(item, key)
            else:
                best[item] = key
                h.push(item, key)
        popped = []
        while len(h):
            popped.append(h.pop())
        assert sorted(popped, key=lambda p: (p[1], str(p[0]))) == sorted(
            ((i, k) for i, k in best.items()),
            key=lambda p: (p[1], str(p[0])),
        )
        assert [k for _, k in popped] == sorted(k for _, k in popped)


class TestBucketQueue:
    def test_fifo_by_priority(self):
        q = BucketQueue()
        q.insert("x", 3)
        q.insert("y", 1)
        q.insert("z", 2)
        assert q.pop_min() == ("y", 1)
        assert q.pop_min() == ("z", 2)
        assert q.pop_min() == ("x", 3)

    def test_decrease(self):
        q = BucketQueue()
        q.insert("x", 9)
        assert q.decrease("x", 2)
        assert not q.decrease("x", 5)
        assert q.pop_min() == ("x", 2)

    def test_decrease_inserts_absent(self):
        q = BucketQueue()
        assert q.decrease("new", 1)
        assert len(q) == 1

    def test_monotonicity_enforced(self):
        q = BucketQueue()
        q.insert("a", 5)
        q.pop_min()
        with pytest.raises(AlgorithmError):
            q.insert("b", 2)

    def test_negative_priority_rejected(self):
        q = BucketQueue()
        with pytest.raises(AlgorithmError):
            q.insert("a", -1)

    def test_duplicate_insert_rejected(self):
        q = BucketQueue()
        q.insert("a", 1)
        with pytest.raises(AlgorithmError):
            q.insert("a", 2)

    def test_empty_pop_rejected(self):
        with pytest.raises(AlgorithmError):
            BucketQueue().pop_min()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=80))
    def test_pop_sequence_sorted(self, prios):
        q = BucketQueue()
        for i, p in enumerate(prios):
            q.insert(i, p)
        out = [q.pop_min()[1] for _ in range(len(prios))]
        assert out == sorted(prios)


class TestDijkstraQueueVariants:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_variants_agree(self, seed):
        g = erdos_renyi(60, 300, seed=seed)
        lazy, _ = dijkstra(g, 0, queue="lazy")
        addr, _ = dijkstra(g, 0, queue="addressable")
        np.testing.assert_allclose(lazy, addr)

    def test_grid(self):
        g = grid_road(8, 8, seed=4)
        lazy, _ = dijkstra(g, 5, queue="lazy")
        addr, _ = dijkstra(g, 5, queue="addressable")
        np.testing.assert_allclose(lazy, addr)

    def test_unknown_queue_rejected(self):
        g = erdos_renyi(5, 10, seed=0)
        with pytest.raises(AlgorithmError):
            dijkstra(g, 0, queue="fibonacci")
