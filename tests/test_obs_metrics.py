"""Metrics registry semantics and the algorithm publish sites."""

import numpy as np
import pytest

from repro.core import SOSPTree, mosp_update, sosp_update
from repro.dynamic import ChangeBatch, random_insert_batch
from repro.errors import ReproError
from repro.graph import DiGraph, road_like
from repro.obs import (
    MetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.metrics import percentile


class TestMetricKinds:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [5, 1, 3, 2, 4]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5 and s["sum"] == 15
        assert s["min"] == 1 and s["max"] == 5
        assert s["p50"] == 3
        assert reg.histogram("h") is h  # cached instance

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {
            "count": 0.0, "sum": 0.0,
        }

    def test_percentile_nearest_rank(self):
        vals = list(map(float, range(1, 101)))
        assert percentile(vals, 0.5) == 51.0
        assert percentile(vals, 0.95) == 95.0
        assert percentile([7.0], 0.95) == 7.0
        with pytest.raises(ReproError):
            percentile([], 0.5)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError, match="already registered"):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        c.inc(10)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1)
        assert reg.snapshot() == {"c": 0.0, "g": 0.0,
                                  "h": {"count": 0.0, "sum": 0.0}}

    def test_snapshot_reset_len(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        assert len(reg) == 2
        assert reg.snapshot() == {"a": 2.0, "b": 7.0}
        reg.reset()
        assert len(reg) == 0


class TestGlobalRegistry:
    def test_default_registry_disabled(self):
        assert get_metrics().enabled is False

    def test_use_metrics_installs_and_restores(self):
        before = get_metrics()
        with use_metrics() as reg:
            assert get_metrics() is reg and reg.enabled
            reg.counter("seen").inc()
        assert get_metrics() is before
        assert reg.snapshot()["seen"] == 1.0


class TestAlgorithmPublishSites:
    def _graph_and_batch(self, seed=0):
        g = road_like(300, k=1, seed=seed)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 25, seed=seed + 1)
        batch.apply_to(g)
        return g, tree, batch

    def test_sosp_update_publishes_once(self):
        g, tree, batch = self._graph_and_batch()
        with use_metrics() as reg:
            stats = sosp_update(g, tree, batch)
        snap = reg.snapshot()
        assert snap["sosp_updates_total"] == 1.0
        assert snap["sosp_relaxations_total"] == float(stats.relaxations)
        assert snap["sosp_step1_passes_total"] == float(stats.step1_passes)
        assert snap["sosp_batch_size"]["count"] == 1.0
        assert snap["sosp_frontier_size"]["count"] == float(
            len(stats.frontier_sizes)
        )

    def test_disabled_registry_costs_no_metrics(self):
        g, tree, batch = self._graph_and_batch()
        sosp_update(g, tree, batch)  # default registry: disabled
        assert len(get_metrics()) == 0

    def test_mosp_tree_update_counter_exactly_once_per_tree(self):
        g = road_like(200, k=2, seed=3)
        trees = [SOSPTree.build(g, 0, objective=i) for i in range(2)]
        batch = random_insert_batch(g, 20, seed=4)
        batch.apply_to(g)
        with use_metrics() as reg:
            r = mosp_update(g, trees, batch)
        assert reg.snapshot()["mosp_tree_updates_total"] == 2.0
        assert len(r.update_stats) == 2

    def test_deletion_metrics_published(self):
        from repro.core.deletion import sosp_update_fulldynamic

        g = DiGraph(4, k=1)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 3, 5.0)
        g.add_edge(3, 2, 5.0)
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.deletions([(1, 2)], k=1)
        batch.apply_to(g)
        with use_metrics() as reg:
            sosp_update_fulldynamic(g, tree, batch)
        snap = reg.snapshot()
        assert snap["deletion_invalidated_total"] >= 1.0
        assert snap["deletion_repair_iterations"]["count"] == 1.0
        assert np.isclose(tree.dist[2], 10.0)

    def test_front_update_metrics_published(self):
        from repro.mosp.dynamic_front import DynamicParetoFront

        g = DiGraph(2, k=2)
        g.add_edge(0, 1, (5.0, 5.0))
        dpf = DynamicParetoFront(g, 0)
        batch = ChangeBatch.insertions([(0, 1, (1.0, 9.0))])
        batch.apply_to(g)
        with use_metrics() as reg:
            stats = dpf.update(batch)
        snap = reg.snapshot()
        assert snap["front_updates_total"] == 1.0
        assert snap["front_accepted_total"] == float(stats.accepted)

    def test_ownership_violation_counted(self):
        from repro.errors import OwnershipViolation
        from repro.parallel.atomics import OwnershipTracker

        t = OwnershipTracker()
        t.record_write(vertex=1, task=0)
        with use_metrics() as reg:
            with pytest.raises(OwnershipViolation):
                t.record_write(vertex=1, task=2)
        assert reg.snapshot()["ownership_violations_total"] == 1.0
