"""Property tests for the incremental (append-or-rebuild) CSR snapshot.

The contract of :meth:`CSRGraph.append_edges`: a snapshot that has
absorbed any sequence of appends is *observationally identical* to a
from-scratch freeze of the same edge list — per-vertex queries agree as
multisets while the tail exists, and after :meth:`CSRGraph.compact` the
frozen arrays are **byte-identical** to the from-scratch freeze (stable
sorting makes re-freezing order-insensitive).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dynamic import ChangeBatch
from repro.errors import GraphError, VertexError
from repro.graph.csr import CSRGraph
from repro.graph.validation import validate_csr
from repro.types import VERTEX_DTYPE


def _coo(edges, k=1):
    src = np.asarray([e[0] for e in edges], dtype=np.int64)
    dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    w = np.asarray([e[2] for e in edges], dtype=np.float64).reshape(-1, k)
    return src, dst, w


def _fresh(n, edges, k=1):
    return CSRGraph(n, *_coo(edges, k))


@st.composite
def base_and_appends(draw, max_n=12, max_appends=4):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edge = st.tuples(
        st.integers(0, n - 1),
        st.integers(0, n - 1),
        st.integers(0, 9).map(float),
    )
    base = draw(st.lists(edge, min_size=0, max_size=3 * n))
    appends = draw(
        st.lists(
            st.lists(edge, min_size=1, max_size=10),
            min_size=1,
            max_size=max_appends,
        )
    )
    return n, base, appends


@given(base_and_appends())
def test_append_matches_fresh_freeze(data):
    n, base, appends = data
    snap = _fresh(n, base)
    all_edges = list(base)
    for batch_edges in appends:
        snap.append_edges(*_coo(batch_edges))
        all_edges += batch_edges
        fresh = _fresh(n, all_edges)
        validate_csr(snap)
        assert snap.num_edges == fresh.num_edges == len(all_edges)
        # per-vertex views agree as multisets whether or not the
        # snapshot happens to have compacted itself
        for v in range(n):
            assert sorted(
                zip(snap.out_neighbors(v), snap.out_weights(v))
            ) == sorted(zip(fresh.out_neighbors(v), fresh.out_weights(v)))
            assert sorted(
                zip(snap.in_neighbors(v), snap.in_weights(v))
            ) == sorted(zip(fresh.in_neighbors(v), fresh.in_weights(v)))
            assert snap.out_degree(v) == fresh.out_degree(v)
            assert snap.in_degree(v) == fresh.in_degree(v)
    # compacting is exact, not just equivalent: stable sorts make the
    # (base, tail) concatenation freeze to the same arrays as the
    # original insertion order
    snap.compact()
    fresh = _fresh(n, all_edges)
    for attr in ("indptr", "indices", "src", "rev_indptr",
                 "rev_indices", "edge_perm"):
        np.testing.assert_array_equal(
            getattr(snap, attr), getattr(fresh, attr), err_msg=attr
        )
    np.testing.assert_array_equal(snap.weights, fresh.weights)
    assert snap.is_compact and snap.num_tail_edges == 0


@given(base_and_appends(max_appends=3))
def test_edges_iteration_and_multiset(data):
    n, base, appends = data
    snap = _fresh(n, base)
    all_edges = list(base)
    for batch_edges in appends:
        snap.append_edges(*_coo(batch_edges))
        all_edges += batch_edges
    got = sorted((u, v, float(w[0])) for u, v, w in snap.edges())
    want = sorted((u, v, float(w)) for u, v, w in all_edges)
    assert got == want
    assert snap.to_digraph().num_edges == len(all_edges)


def test_small_append_lands_in_tail():
    snap = _fresh(3, [(0, 1, 1.0), (1, 2, 2.0)])
    base_indices = snap.indices.copy()
    snap.append_edges(*_coo([(2, 0, 5.0)]))
    assert not snap.is_compact
    assert snap.num_tail_edges == 1 and snap.m == 2 and snap.num_edges == 3
    # the frozen base is untouched; the new edge is query-visible
    np.testing.assert_array_equal(snap.indices, base_indices)
    assert snap.out_neighbors(2).tolist() == [0]
    assert snap.in_neighbors(0).tolist() == [2]
    assert snap.out_weights(2).tolist() == [5.0]


def test_rebuild_threshold_triggers_compact():
    n = 4
    snap = _fresh(n, [(0, 1, 1.0)])
    limit = max(CSRGraph.MIN_TAIL_REBUILD,
                int(CSRGraph.TAIL_REBUILD_FRACTION * snap.m))
    rng = np.random.default_rng(0)
    edges = [
        (int(u), int(v), 1.0)
        for u, v in rng.integers(0, n, size=(limit + 1, 2))
    ]
    snap.append_edges(*_coo(edges))
    assert snap.is_compact, "tail past the limit must trigger a rebuild"
    assert snap.m == 1 + limit + 1


def test_append_batch_rejects_deletions():
    snap = _fresh(3, [(0, 1, 1.0)])
    batch = ChangeBatch.insertions([(1, 2, (1.0,))])
    snap.append_batch(batch)
    assert snap.num_edges == 2
    deletion = ChangeBatch.deletions([(0, 1)])
    with pytest.raises(GraphError):
        snap.append_batch(deletion)


def test_append_validates_endpoints_and_k():
    snap = _fresh(3, [(0, 1, 1.0)])
    with pytest.raises(VertexError):
        snap.append_edges(
            np.asarray([5], dtype=np.int64),
            np.asarray([0], dtype=np.int64),
            np.asarray([[1.0]]),
        )
    with pytest.raises(GraphError):
        snap.append_edges(
            np.asarray([0], dtype=np.int64),
            np.asarray([1], dtype=np.int64),
            np.asarray([[1.0, 2.0]]),  # k=2 into a k=1 snapshot
        )


def test_ensure_compacts_in_place():
    snap = _fresh(3, [(0, 1, 1.0)])
    snap.append_edges(*_coo([(1, 2, 2.0)]))
    assert not snap.is_compact
    out = CSRGraph.ensure(snap)
    assert out is snap and snap.is_compact and snap.m == 2
    assert snap.indptr.dtype == VERTEX_DTYPE
