"""Tests for Algorithm 1 (sosp_update): unit, oracle, and engine parity."""

import numpy as np
import pytest

from repro.core import SOSPTree, sosp_update
from repro.core.grouping import group_by_destination
from repro.core.affected import gather_unique_neighbors
from repro.dynamic import ChangeBatch, random_insert_batch
from repro.errors import AlgorithmError
from repro.graph import DiGraph, erdos_renyi, grid_road, random_geometric
from repro.parallel import SerialEngine, SimulatedEngine, ThreadEngine
from repro.sssp import dijkstra

ENGINES = [
    None,
    SerialEngine(),
    ThreadEngine(threads=3),
    SimulatedEngine(threads=4),
]


def assert_tree_correct(g, tree):
    ref_dist, _ = dijkstra(g, tree.source, tree.objective)
    np.testing.assert_allclose(tree.dist, ref_dist, rtol=1e-9)
    tree.certify(g)


class TestGrouping:
    def test_groups_by_destination(self):
        batch = ChangeBatch.insertions(
            [(0, 2, 1.0), (1, 2, 2.0), (3, 4, 3.0)]
        )
        groups = group_by_destination(batch)
        as_dict = {v: sorted(zip(s.tolist(), w.tolist()))
                   for v, s, w in groups}
        assert as_dict == {2: [(0, 1.0), (1, 2.0)], 4: [(3, 3.0)]}

    def test_empty_batch(self):
        assert group_by_destination(ChangeBatch.insertions([])) == []

    def test_objective_selection(self):
        batch = ChangeBatch.insertions([(0, 1, (5.0, 7.0))])
        (v, s, w), = group_by_destination(batch, objective=1)
        assert w.tolist() == [7.0]

    def test_deletions_excluded(self):
        batch = ChangeBatch.concat(
            ChangeBatch.insertions([(0, 1, 1.0)]),
            ChangeBatch.deletions([(2, 3)]),
        )
        groups = group_by_destination(batch)
        assert len(groups) == 1 and groups[0][0] == 1


class TestGatherNeighbors:
    def test_unique_and_deterministic(self):
        g = DiGraph(4)
        g.add_edge(0, 2, 1.0)
        g.add_edge(0, 3, 1.0)
        g.add_edge(1, 2, 1.0)
        assert gather_unique_neighbors(g, [0, 1]) == [2, 3]
        assert gather_unique_neighbors(g, [1, 0]) == [2, 3]

    def test_empty_affected(self):
        g = DiGraph(2)
        assert gather_unique_neighbors(g, []) == []


class TestPaperExample:
    """The worked example of Figure 2 (§3.1), reconstructed.

    A 7-vertex network where inserting three edges triggers exactly
    the two-iteration propagation the figure illustrates.
    """

    def build(self):
        # vertices: 0=source(u0), 1..6 = u1..u6
        g = DiGraph(7)
        g.add_edge(0, 1, 2.0)   # source -> u1
        g.add_edge(0, 3, 5.0)   # source -> u3
        g.add_edge(1, 2, 10.0)  # u1 -> u2 (expensive)
        g.add_edge(3, 2, 4.0)   # u3 -> u2
        g.add_edge(3, 5, 9.0)   # u3 -> u5 (expensive)
        g.add_edge(2, 4, 3.0)   # u2 -> u4
        g.add_edge(5, 4, 1.0)   # u5 -> u4
        g.add_edge(4, 6, 2.0)   # u4 -> u6
        return g

    def test_update_matches_recompute(self):
        g = self.build()
        tree = SOSPTree.build(g, 0)
        assert tree.dist.tolist() == [0.0, 2.0, 9.0, 5.0, 12.0, 14.0, 14.0]
        # Ins = {(u1,u2,5), (u3,u5,1), (u1,u5,4)} in figure spirit:
        # u2 improves via (u1,u2), u5 via the better of its two edges
        batch = ChangeBatch.insertions(
            [(1, 2, 5.0), (3, 5, 1.0), (1, 5, 4.0)]
        )
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch, check_ownership=True)
        assert_tree_correct(g, tree)
        # u2 and u5 improve in step 1; propagation needs >= 2 iterations
        # (u4 then u6)
        assert stats.affected_initial == 2
        assert stats.iterations >= 2


@pytest.mark.parametrize("engine", ENGINES,
                         ids=lambda e: getattr(e, "name", "default"))
class TestEnginesAgree:
    def test_single_insert(self, engine):
        g = DiGraph.from_edge_list(3, [(0, 1, 5.0), (1, 2, 5.0)])
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.insertions([(0, 2, 3.0)])
        batch.apply_to(g)
        sosp_update(g, tree, batch, engine=engine)
        assert tree.dist.tolist() == [0.0, 5.0, 3.0]
        assert tree.parent[2] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_batches(self, engine, seed):
        g = erdos_renyi(60, 240, seed=seed)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 80, seed=seed + 10)
        batch.apply_to(g)
        sosp_update(g, tree, batch, engine=engine, check_ownership=True)
        assert_tree_correct(g, tree)


class TestUpdateSemantics:
    def test_noop_batch_changes_nothing(self):
        g = erdos_renyi(20, 60, seed=0)
        tree = SOSPTree.build(g, 0)
        before = tree.dist.copy()
        # insert an edge too expensive to matter
        batch = ChangeBatch.insertions([(1, 2, 1000.0)])
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch)
        np.testing.assert_array_equal(tree.dist, before)
        assert stats.affected_initial == 0
        assert stats.iterations == 0

    def test_empty_batch(self):
        g = erdos_renyi(10, 30, seed=0)
        tree = SOSPTree.build(g, 0)
        stats = sosp_update(g, tree, ChangeBatch.insertions([]))
        assert stats.affected_total == 0
        assert_tree_correct(g, tree)

    def test_connects_unreachable_component(self):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        tree = SOSPTree.build(g, 0)
        assert tree.dist[3] == np.inf
        batch = ChangeBatch.insertions([(1, 2, 1.0)])
        batch.apply_to(g)
        sosp_update(g, tree, batch)
        assert tree.dist.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert_tree_correct(g, tree)

    def test_chain_propagation_many_iterations(self):
        # a long path, shortcut inserted at the head: the improvement
        # must ripple the whole way down
        n = 50
        g = DiGraph(n)
        g.add_edge(0, 1, 100.0)
        for i in range(1, n - 1):
            g.add_edge(i, i + 1, 1.0)
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.insertions([(0, 1, 1.0)])
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch)
        assert_tree_correct(g, tree)
        assert stats.iterations >= n - 3

    def test_batch_with_duplicate_destination(self):
        g = DiGraph.from_edge_list(3, [(0, 1, 10.0), (0, 2, 10.0)])
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.insertions(
            [(0, 1, 5.0), (0, 1, 3.0), (2, 1, 1.0)]
        )
        batch.apply_to(g)
        sosp_update(g, tree, batch, check_ownership=True)
        # best: 0->1 direct with 3.0
        assert tree.dist[1] == 3.0
        assert_tree_correct(g, tree)

    def test_multiobjective_tree_uses_its_objective(self):
        g = DiGraph(3, k=2)
        g.add_edge(0, 1, (10.0, 1.0))
        g.add_edge(1, 2, (10.0, 1.0))
        t0 = SOSPTree.build(g, 0, objective=0)
        t1 = SOSPTree.build(g, 0, objective=1)
        batch = ChangeBatch.insertions([(0, 2, (5.0, 100.0))])
        batch.apply_to(g)
        sosp_update(g, t0, batch)
        sosp_update(g, t1, batch)
        assert t0.dist[2] == 5.0   # shortcut wins for objective 0
        assert t1.dist[2] == 2.0   # but not for objective 1
        assert_tree_correct(g, t0)
        assert_tree_correct(g, t1)

    def test_deletion_batch_rejected(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        tree = SOSPTree.build(g, 0)
        with pytest.raises(AlgorithmError):
            sosp_update(g, tree, ChangeBatch.deletions([(0, 1)]))

    def test_tree_size_mismatch_rejected(self):
        g = DiGraph(3)
        tree = SOSPTree(0, np.zeros(2), np.full(2, -1))
        with pytest.raises(AlgorithmError):
            sosp_update(g, tree, ChangeBatch.insertions([]))


class TestGroupingAblation:
    def test_ungrouped_same_result(self):
        g = erdos_renyi(40, 160, seed=3)
        t1 = SOSPTree.build(g, 0)
        t2 = t1.copy()
        batch = random_insert_batch(g, 60, seed=4)
        batch.apply_to(g)
        sosp_update(g, t1, batch, use_grouping=True)
        sosp_update(g, t2, batch, use_grouping=False)
        np.testing.assert_allclose(t1.dist, t2.dist)

    def test_grouped_single_pass(self):
        g = erdos_renyi(40, 160, seed=3)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 60, seed=4)
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch, use_grouping=True)
        assert stats.step1_passes == 1

    def test_ungrouped_may_need_extra_passes(self):
        # chain of inserted edges: each pass extends the improvement by
        # one hop, so ungrouped step 1 needs multiple passes
        g = DiGraph(5)
        g.add_edge(0, 4, 100.0)
        tree = SOSPTree.build(g, 0)
        batch = ChangeBatch.insertions(
            [(3, 4, 1.0), (2, 3, 1.0), (1, 2, 1.0), (0, 1, 1.0)]
        )
        batch.apply_to(g)
        stats = sosp_update(g, tree.copy(), batch, use_grouping=False)
        assert stats.step1_passes >= 2
        # grouping finishes step 1 in one pass and lets step 2 propagate
        gstats = sosp_update(g, tree, batch, use_grouping=True)
        assert gstats.step1_passes == 1
        assert_tree_correct(g, tree)


class TestStats:
    def test_relaxations_counted(self):
        g = erdos_renyi(30, 120, seed=1)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 40, seed=2)
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch)
        assert stats.relaxations >= batch.num_insertions

    def test_frontier_sizes_match_iterations(self):
        g = grid_road(8, 8, seed=0)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 30, seed=1, low=0.1, high=0.5)
        batch.apply_to(g)
        stats = sosp_update(g, tree, batch)
        assert len(stats.frontier_sizes) == stats.iterations

    def test_simulated_engine_accumulates_time(self):
        g = random_geometric(400, seed=0)
        tree = SOSPTree.build(g, 0)
        batch = random_insert_batch(g, 100, seed=1, low=0.1, high=1.0)
        batch.apply_to(g)
        eng = SimulatedEngine(threads=8)
        sosp_update(g, tree, batch, engine=eng)
        assert eng.virtual_time > 0
        assert eng.supersteps >= 1
        assert_tree_correct(g, tree)
