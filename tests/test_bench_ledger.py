"""Schema round-trips and validator rejections for BENCH_*.json ledgers."""

import io
import json

import pytest

from repro.bench.ledger import (
    SCHEMA_VERSION,
    make_ledger,
    read_ledger,
    validate_ledger,
    write_ledger,
)
from repro.bench.__main__ import main as bench_main
from repro.errors import ReproError


def _ledger(**overrides):
    doc = make_ledger(
        "demo_bench",
        graph={"name": "road_like-100", "vertices": 100, "edges": 360,
               "objectives": 1},
        engine="shm",
        workers=4,
        wall_seconds={"update": 0.125, "recompute": 1.5},
        derived={"speedup": 12.0},
        obs_overhead=1.02,
        seed=7,
        notes="unit-test fixture",
    )
    doc.update(overrides)
    return doc


class TestMakeAndWrite:
    def test_round_trip(self, tmp_path):
        doc = _ledger()
        assert validate_ledger(doc) == []
        path = write_ledger(tmp_path, doc)
        assert path.name == "BENCH_demo_bench.json"
        back = read_ledger(path)
        assert back == doc
        assert back["schema"] == SCHEMA_VERSION

    def test_make_rejects_bad_input(self):
        with pytest.raises(ReproError, match="wall_seconds"):
            make_ledger(
                "x", graph={"name": "g", "vertices": 1, "edges": 0,
                            "objectives": 1},
                engine="serial", workers=1, wall_seconds={},
            )

    def test_write_refuses_invalid_doc(self, tmp_path):
        doc = _ledger(workers="four")
        with pytest.raises(ReproError, match="workers"):
            write_ledger(tmp_path, doc)
        assert list(tmp_path.glob("BENCH_*")) == []


class TestValidator:
    @pytest.mark.parametrize("mutate,needle", [
        ({"schema": "repro-bench-ledger/0"}, "schema"),
        ({"name": ""}, "name"),
        ({"name": "has space"}, "name"),
        ({"created_unix": -1.0}, "created_unix"),
        ({"seed": "0"}, "seed"),
        ({"graph": "roadNet-PA"}, "graph"),
        ({"engine": ""}, "engine"),
        ({"workers": 0}, "workers"),
        ({"workers": True}, "workers"),
        ({"wall_seconds": {"t": -0.1}}, "wall_seconds"),
        ({"wall_seconds": {"t": "fast"}}, "wall_seconds"),
        ({"derived": {"s": "2x"}}, "derived"),
        ({"obs_overhead": -0.5}, "obs_overhead"),
        ({"notes": None}, "notes"),
        ({"extra_key": 1}, "unknown key"),
    ])
    def test_rejections(self, mutate, needle):
        problems = validate_ledger(_ledger(**mutate))
        assert problems, f"expected a problem for {mutate}"
        assert any(needle in p for p in problems), problems

    def test_missing_keys_reported(self):
        doc = _ledger()
        del doc["graph"], doc["engine"]
        problems = validate_ledger(doc)
        assert any("missing key 'graph'" in p for p in problems)
        assert any("missing key 'engine'" in p for p in problems)

    def test_graph_subschema(self):
        doc = _ledger()
        doc["graph"] = {"name": "g", "vertices": -1, "edges": 0,
                       "objectives": 1, "extra": True}
        problems = validate_ledger(doc)
        assert any("graph.vertices" in p for p in problems)
        assert any("unknown key 'extra'" in p for p in problems)

    def test_obs_overhead_nullable(self):
        assert validate_ledger(_ledger(obs_overhead=None)) == []

    def test_not_a_dict(self):
        assert validate_ledger([1, 2]) == ["ledger is not an object"]


class TestValidateLedgersCommand:
    def test_all_valid(self, tmp_path):
        write_ledger(tmp_path, _ledger())
        out = io.StringIO()
        code = bench_main(
            ["validate-ledgers", str(tmp_path), "--min-count", "1"], out=out
        )
        assert code == 0
        assert "1/1 ledgers valid" in out.getvalue()

    def test_invalid_ledger_fails(self, tmp_path):
        doc = _ledger()
        doc["workers"] = 0
        (tmp_path / "BENCH_bad.json").write_text(json.dumps(doc))
        (tmp_path / "BENCH_notjson.json").write_text("{nope")
        out = io.StringIO()
        code = bench_main(["validate-ledgers", str(tmp_path)], out=out)
        assert code == 1
        text = out.getvalue()
        assert text.count("INVALID") == 2

    def test_min_count_floor(self, tmp_path):
        out = io.StringIO()
        code = bench_main(
            ["validate-ledgers", str(tmp_path), "--min-count", "3"], out=out
        )
        assert code == 1
        assert "expected at least 3" in out.getvalue()

    def test_repo_ledgers_are_valid(self):
        """Every committed results/BENCH_*.json must satisfy the schema."""
        out = io.StringIO()
        assert bench_main(["validate-ledgers", "results"], out=out) == 0, (
            out.getvalue()
        )
