"""Tests for the benchmark harness (datasets, runner, figures, report).

The harness tests use a tiny synthetic spec (not the full Table 2
stand-ins) so the suite stays fast; full-size runs live under
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.bench.datasets import DATASETS, DatasetSpec, load_dataset
from repro.bench.figures import figure4_series, figure5_series, figure6_breakdown
from repro.bench.report import format_ms, render_series_table, render_table
from repro.bench.runner import record_mosp_trace
from repro.bench.tables import table2_rows
from repro.errors import BenchmarkError
from repro.parallel import CostModel, SimulatedEngine, replay_trace


@pytest.fixture(scope="module")
def tiny_dataset(tmp_path_factory):
    """Shrink one dataset spec for fast harness tests."""
    spec = DatasetSpec(
        name="tiny-road",
        paper_vertices=1_000_000,
        paper_edges=3_000_000,
        family="road",
        standin_n=400,
        seed=7,
    )
    DATASETS["tiny-road"] = spec
    yield "tiny-road"
    del DATASETS["tiny-road"]


class TestDatasets:
    def test_registry_matches_paper_table2(self):
        assert set(DATASETS) >= {
            "road-usa", "rgg-n-2-20-s0", "roadNet-CA", "roadNet-PA"
        }
        assert DATASETS["road-usa"].paper_vertices == 23_947_347
        assert DATASETS["roadNet-CA"].paper_edges == 5_533_214

    def test_scaled_batch_preserves_ratio(self):
        spec = DATASETS["roadNet-PA"]
        m = 30_000
        b = spec.scaled_batch_size(100_000, m)
        assert b == pytest.approx(m * 100_000 / spec.paper_edges, abs=1)

    def test_load_fresh_is_independent(self, tiny_dataset):
        a = load_dataset(tiny_dataset, fresh=True)
        b = load_dataset(tiny_dataset, fresh=True)
        a.add_edge(0, 1, (1.0, 1.0))
        assert a.num_edges == b.num_edges + 1

    def test_load_cached_same_object(self, tiny_dataset):
        assert load_dataset(tiny_dataset) is load_dataset(tiny_dataset)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            load_dataset("road-mars")


class TestTraceRecording:
    @pytest.fixture(scope="class")
    def trace(self, request):
        spec = DatasetSpec(
            name="trace-road", paper_vertices=10**6, paper_edges=3 * 10**6,
            family="road", standin_n=400, seed=3,
        )
        DATASETS["trace-road"] = spec
        request.addfinalizer(lambda: DATASETS.pop("trace-road"))
        return record_mosp_trace("trace-road", 100_000, seed=1)

    def test_metadata(self, trace):
        assert trace.dataset == "trace-road"
        assert trace.batch_size >= 1
        assert trace.num_vertices >= 400

    def test_replay_monotone_in_threads(self, trace):
        t1, t8 = trace.time_at(1), trace.time_at(8)
        assert t1 > t8 > 0

    def test_replay_at_one_thread_matches_engine(self, trace):
        # replaying the trace at T=1 must reproduce the recording
        # engine's own virtual time (same scheduler, same parameters)
        total = replay_trace(trace.trace, 1)
        assert total == pytest.approx(trace.time_at(1))

    def test_step_times_sum_to_total(self, trace):
        steps = trace.step_times_at(1)
        assert sum(steps.values()) == pytest.approx(trace.time_at(1), rel=1e-9)

    def test_step_keys(self, trace):
        assert set(trace.step_times_at(2)) == {
            "sosp_update_0", "sosp_update_1", "ensemble",
            "bellman_ford", "reassign",
        }

    def test_wall_times_come_from_span_stream(self, trace):
        # the recorder times the pipeline through tracer spans: the
        # root span is the wall clock, phase spans are the step clocks
        assert trace.wall_seconds > 0
        assert set(trace.step_wall_seconds) == set(trace.step_times_at(1))
        assert sum(trace.step_wall_seconds.values()) <= trace.wall_seconds

    def test_span_stream_recorded_and_exportable(self, trace, tmp_path):
        from repro.obs import export_chrome_trace, validate_chrome_trace

        names = {s["name"] for s in trace.spans}
        assert "bench.record_mosp_trace" in names
        assert "mosp_update.bellman_ford" in names
        assert "superstep" in names
        path = tmp_path / "bench_trace.json"
        assert export_chrome_trace(trace.spans, path) == len(trace.spans)
        assert validate_chrome_trace(path) == []


class TestFigureBuilders:
    @pytest.fixture(scope="class")
    def ds(self, request):
        spec = DatasetSpec(
            name="fig-road", paper_vertices=10**6, paper_edges=3 * 10**6,
            family="road", standin_n=300, seed=5,
        )
        DATASETS["fig-road"] = spec
        request.addfinalizer(lambda: DATASETS.pop("fig-road"))
        return "fig-road"

    def test_figure4_shape(self, ds):
        series = figure4_series(
            datasets=[ds], paper_batch_sizes=(50_000, 100_000),
            threads=(1, 2, 4),
        )
        assert set(series) == {ds}
        assert set(series[ds]) == {50_000, 100_000}
        pts = series[ds][50_000]
        assert [t for t, _ in pts] == [1, 2, 4]
        # time decreases with threads
        assert pts[0][1] > pts[-1][1]

    def test_figure4_trace_sharing(self, ds):
        traces = {}
        figure4_series(datasets=[ds], paper_batch_sizes=(100_000,),
                       threads=(1, 2), traces=traces)
        assert (ds, 100_000) in traces
        # reuse: no new recording needed (same dict, more threads)
        series = figure4_series(datasets=[ds],
                                paper_batch_sizes=(100_000,),
                                threads=(1, 2, 4, 8), traces=traces)
        assert len(series[ds][100_000]) == 4

    def test_figure5_speedups(self, ds):
        s = figure5_series(datasets=[ds], threads=(1, 2, 4, 8))
        pts = s[ds]
        assert pts[0] == (1, pytest.approx(1.0))
        assert all(sp >= 0.9 for _, sp in pts)
        assert pts[-1][1] > pts[0][1]  # some speedup by 8 threads

    def test_figure6_percentages(self, ds):
        br = figure6_breakdown(datasets=[ds], threads=4)
        steps = br[ds]
        assert set(steps) == {"SOSP1", "SOSP2", "Merge+BF"}
        assert sum(steps.values()) == pytest.approx(100.0)
        assert all(v >= 0 for v in steps.values())


class TestTable2:
    def test_rows_cover_all_datasets(self):
        rows = table2_rows(datasets=["roadNet-PA"])
        r = rows[0]
        assert r["name"] == "roadNet-PA"
        assert r["paper_vertices"] == 1_090_920
        assert r["standin_vertices"] > 0
        assert 1.0 < r["standin_avg_degree"] < 10.0


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = render_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_render_empty(self):
        assert render_table([], ["a"]) == "(empty)"
        assert render_series_table({}) == "(empty)"

    def test_render_series(self):
        s = {"road": [(1, 10.0), (2, 5.0)], "rgg": [(1, 8.0), (2, 4.0)]}
        text = render_series_table(s)
        assert "threads" in text
        assert "road" in text and "rgg" in text
        assert "10.00" in text

    def test_format_ms_ranges(self):
        assert format_ms(12345.6) == "12,346"
        assert format_ms(12.345) == "12.35"
        assert format_ms(0.01234) == "0.0123"
