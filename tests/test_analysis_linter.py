"""The fixture-corpus contract for the concurrency-invariant linter.

Each rule must (a) fire on its bad fixture, (b) stay silent on its
good fixture, and (c) respect ``# repro: noqa`` suppressions.  The
fixtures live in ``tests/fixtures/analysis/`` and are excluded from
the repo-wide walk precisely because they contain violations.
"""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Finding, lint_file, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
CODES = [rule.code for rule in ALL_RULES]


def fixture_findings(name, code):
    return lint_file(
        str(FIXTURES / name), select={code}, respect_scope=False
    )


class TestFixtureCorpus:
    @pytest.mark.parametrize("code", CODES)
    def test_bad_fixture_fires(self, code):
        name = f"{code.lower()}_bad.py"
        findings = fixture_findings(name, code)
        assert findings, f"{name} produced no {code} findings"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize("code", CODES)
    def test_good_fixture_clean(self, code):
        name = f"{code.lower()}_good.py"
        assert fixture_findings(name, code) == []

    def test_r001_flags_every_untracked_task(self):
        # one finding per untracked mutation site in the bad fixture
        findings = fixture_findings("r001_bad.py", "R001")
        assert len(findings) == 4

    def test_noqa_fixture_fully_suppressed(self):
        findings = lint_file(
            str(FIXTURES / "noqa_suppressed.py"), respect_scope=False
        )
        assert findings == []


class TestNoqaSemantics:
    def test_targeted_noqa_wrong_code_does_not_suppress(self):
        src = "try:\n    pass\nexcept:  # repro: noqa(R001)\n    pass\n"
        findings = lint_source(
            src, path="src/repro/core/x.py", select={"R003"}
        )
        assert [f.code for f in findings] == ["R003"]

    def test_blanket_noqa_suppresses_any_code(self):
        src = "try:\n    pass\nexcept:  # repro: noqa\n    pass\n"
        assert lint_source(src, path="src/repro/core/x.py") == []

    def test_case_insensitive(self):
        src = "try:\n    pass\nexcept:  # REPRO: NOQA(r003)\n    pass\n"
        assert lint_source(src, path="src/repro/core/x.py") == []


class TestScoping:
    def test_src_rules_skip_files_outside_repro(self):
        src = "import time\n\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, path="scripts/standalone.py") == []

    def test_r005_exempts_bench(self):
        src = "import time\n\n\ndef stamp():\n    return time.time()\n"
        assert (
            lint_source(src, path="src/repro/bench/run.py", select={"R005"})
            == []
        )
        assert lint_source(
            src, path="src/repro/core/run.py", select={"R005"}
        )

    def test_r005_exempts_obs(self):
        # repro/obs is the sanctioned clock module: any clock read is
        # fine there, and nowhere else inside repro/
        src = (
            "import time\n\n\ndef perf():\n"
            "    return time.perf_counter()\n"
        )
        assert (
            lint_source(src, path="src/repro/obs/clock.py", select={"R005"})
            == []
        )
        assert lint_source(
            src, path="src/repro/core/run.py", select={"R005"}
        )

    def test_r005_flags_all_clock_reads(self):
        # perf_counter/monotonic reads (and aliased from-imports) are
        # clock reads, same as time.time
        src = (
            "import time\n"
            "from time import monotonic as now\n\n\n"
            "def f():\n"
            "    return time.perf_counter() + now()\n"
        )
        findings = lint_source(
            src, path="src/repro/core/x.py", select={"R005"}
        )
        messages = [f.message for f in findings]
        assert any("monotonic" in m and "import" in m for m in messages)
        assert any("time.perf_counter()" in m for m in messages)
        assert any("now() clock" in m for m in messages)

    def test_r005_allows_sleep(self):
        src = "import time\n\n\ndef f():\n    time.sleep(0.01)\n"
        assert (
            lint_source(src, path="src/repro/core/x.py", select={"R005"})
            == []
        )

    def test_r004_limited_to_typed_core(self):
        src = "def f(x):\n    return x\n"
        assert (
            lint_source(src, path="src/repro/io/loaders.py", select={"R004"})
            == []
        )
        assert lint_source(
            src, path="src/repro/graph/new.py", select={"R004"}
        )

    def test_analysis_package_exempt_from_src_rules(self):
        # the linter may use broad except internally to report errors
        src = "try:\n    pass\nexcept Exception:\n    pass\n"
        assert (
            lint_source(src, path="src/repro/analysis/x.py", select={"R003"})
            == []
        )


class TestRunner:
    def test_repo_is_clean(self):
        findings, errors = lint_paths(["src", "tests"])
        assert errors == []
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_fixtures_excluded_from_walk(self):
        findings, errors = lint_paths([str(FIXTURES)])
        assert findings == [] and errors == []

    def test_missing_path_reported(self):
        _, errors = lint_paths(["no/such/dir"])
        assert errors and "no such file" in errors[0]

    def test_syntax_error_reported_not_swallowed(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:\n")
        findings, errors = lint_paths([str(tmp_path)])
        assert findings == []
        assert len(errors) == 1 and "syntax error" in errors[0]

    def test_finding_format_shape(self):
        f = Finding(
            path="src/repro/core/x.py", line=3, col=5, code="R001",
            message="msg", hint="do better",
        )
        assert f.format() == (
            "src/repro/core/x.py:3:5: R001 msg  [fix: do better]"
        )

    def test_select_filters_rules(self):
        src = (
            "import time\n\n\ndef f(x):\n"
            "    return time.time() + x\n"
        )
        findings = lint_source(
            src, path="src/repro/core/x.py", select={"R005"}
        )
        assert {f.code for f in findings} == {"R005"}


class TestCLI:
    REPO_ROOT = Path(__file__).parents[1]

    def run_cli(self, *args):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(self.REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=self.REPO_ROOT, env=env,
        )

    def test_clean_repo_exits_zero(self):
        proc = self.run_cli("src", "tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f() -> float:\n"
                       "    return time.time()\n")
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "R005" in proc.stdout

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for code in CODES:
            assert code in proc.stdout
