"""Edge-centric Bellman-Ford: vectorised rounds and an engine-parallel variant.

Algorithm 2 Step 3 of the paper computes an SOSP on the combined graph
with "a parallel Bellman-Ford algorithm implementation".  Bellman-Ford
is the natural choice there because the ensemble graph has at most
``k·(n−1)`` edges and small unit-ish integer weights, so it converges
in few rounds.

Two implementations:

- :func:`bellman_ford` — whole-graph numpy rounds; each round relaxes
  all ``m`` edges with ``np.minimum.at`` (edge-centric, exactly one
  pass = one parallel superstep morally).
- :func:`parallel_bellman_ford` — the same rounds expressed over an
  :class:`~repro.parallel.api.Engine`: edges are split into chunks, a
  task scans its chunk and emits improvements against the round-start
  distances, a sequential merge applies the minimum per destination.
  This matches an OpenMP edge-parallel relaxation with per-vertex
  atomic-min, and gives the simulated engine the per-round work
  profile it needs (``m`` scanned edges per round).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.parallel.api import Engine, resolve_engine
from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["bellman_ford", "parallel_bellman_ford", "frontier_bellman_ford"]


def _to_csr(graph: Union[DiGraph, CSRGraph]) -> CSRGraph:
    return CSRGraph.ensure(graph)


def bellman_ford(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    meter=None,
) -> Tuple[FloatArray, IntArray]:
    """Vectorised Bellman-Ford for one objective.

    Runs full edge-relaxation rounds until a fixpoint (at most ``n-1``
    rounds for non-negative weights).  Returns ``(dist, parent)`` in
    the same convention as :func:`~repro.sssp.dijkstra.dijkstra`.
    """
    csr = _to_csr(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "bellman_ford source")
    src, dst = csr.src, csr.indices
    w = csr.weights[:, objective]

    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    dist[source] = 0.0
    scanned = 0
    for _ in range(max(1, n - 1)):
        if csr.m == 0:
            break
        scanned += csr.m
        cand = dist[src] + w
        new_dist = dist.copy()
        np.minimum.at(new_dist, dst, cand)
        changed = new_dist < dist
        if not changed.any():
            break
        # recover parents: an edge whose candidate equals the new
        # minimum of an improved destination is a witness
        improved_edges = np.nonzero(cand == new_dist[dst])[0]
        improved_edges = improved_edges[changed[dst[improved_edges]]]
        parent[dst[improved_edges]] = src[improved_edges]
        dist = new_dist
    if meter is not None:
        meter.add(scanned)
    return dist, parent


def frontier_bellman_ford(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    engine: Optional[Engine] = None,
) -> Tuple[FloatArray, IntArray]:
    """Queue/frontier-based Bellman-Ford (SPFA-style), engine-parallel.

    The work-efficient variant matching the two-queue GPU
    implementations the paper cites ([1]): only vertices whose distance
    changed are re-expanded, so total work is proportional to edges
    *touched* rather than rounds × m.  Each superstep expands the
    current frontier in parallel (one task per frontier vertex, work =
    its out-degree) and merges proposals sequentially per destination —
    the same vertex-ownership pattern as Algorithm 1 Step 2.

    This is the Step-3 kernel :func:`repro.core.mosp_update.mosp_update`
    uses by default: on the combined graph its cost is O(|E_ensemble|)
    up to re-expansion, keeping the merge phase the small slice of the
    pipeline the paper's Figure 6 reports.
    """
    csr = _to_csr(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "frontier_bellman_ford source")
    eng = resolve_engine(engine)

    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    dist[source] = 0.0
    if csr.m == 0:
        return dist, parent

    indptr, indices = csr.indptr, csr.indices
    w = csr.weights[:, objective]
    frontier = [source]

    while frontier:
        def expand(u: int):
            lo, hi = indptr[u], indptr[u + 1]
            cand = dist[u] + w[lo:hi]
            better = cand < dist[indices[lo:hi]]
            idx = np.nonzero(better)[0]
            return idx + lo, cand[better]

        parts = eng.parallel_for(
            frontier, expand,
            work_fn=lambda u, _r: max(1, int(indptr[u + 1] - indptr[u])),
        )
        improved = set()
        for rows, cand in parts:
            for j in range(len(rows)):
                e = int(rows[j])
                v = int(indices[e])
                nd = float(cand[j])
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = int(csr.src[e])
                    improved.add(v)
            eng.charge(len(rows))
        frontier = sorted(improved)
    return dist, parent


def parallel_bellman_ford(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    engine: Optional[Engine] = None,
    chunk_edges: int = 4096,
) -> Tuple[FloatArray, IntArray]:
    """Bellman-Ford with edge-parallel rounds over an engine.

    Each round is one superstep: edge chunks are scanned in parallel
    against the round-start distances; improvements are merged
    sequentially with a per-destination minimum (the role played by
    ``omp atomic``-min in the paper's implementation).

    Semantically identical to :func:`bellman_ford`; the engine only
    changes how each round's scan is executed/accounted.
    """
    csr = _to_csr(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "parallel_bellman_ford source")
    eng = resolve_engine(engine)
    src, dst = csr.src, csr.indices
    w = csr.weights[:, objective]
    m = csr.m

    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    dist[source] = 0.0
    if m == 0:
        return dist, parent

    chunks: List[Tuple[int, int]] = [
        (lo, min(lo + chunk_edges, m)) for lo in range(0, m, chunk_edges)
    ]

    for _ in range(max(1, n - 1)):
        def scan(span: Tuple[int, int]):
            lo, hi = span
            cand = dist[src[lo:hi]] + w[lo:hi]
            better = cand < dist[dst[lo:hi]]
            idx = np.nonzero(better)[0] + lo
            return idx, cand[better]

        parts = eng.parallel_for(
            chunks, scan, work_fn=lambda span, _r: span[1] - span[0]
        )
        # sequential merge: per-destination minimum over all proposals
        any_change = False
        for idx, cand in parts:
            if len(idx) == 0:
                continue
            d = dst[idx]
            order = np.argsort(cand, kind="stable")
            # first occurrence per destination after sorting by distance
            d_sorted = d[order]
            first = np.unique(d_sorted, return_index=True)[1]
            for j in first:
                e = idx[order[j]]
                nd = cand[order[j]]
                v = dst[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = src[e]
                    any_change = True
            eng.charge(len(idx))
        if not any_change:
            break
    return dist, parent
