"""Binary-heap Dijkstra.

The reference SSSP used to build initial SOSP trees and as the
correctness oracle for every incremental update in the test suite.
Lazy deletion (a popped entry is skipped when its distance is stale)
keeps the implementation at O((n + m) log n) with Python's ``heapq``.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError, VertexError
from repro.graph.csr import CSRGraph
from repro.sssp.heap import AddressableBinaryHeap
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["dijkstra"]


def dijkstra(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    meter=None,
    queue: str = "lazy",
) -> Tuple[FloatArray, IntArray]:
    """Single-source shortest paths for one objective.

    Parameters
    ----------
    graph:
        A :class:`DiGraph` or :class:`CSRGraph`; only the ``objective``
        component of each weight vector is read.
    source:
        Source vertex.
    objective:
        Which objective's weights to minimise (default 0).
    meter:
        Optional :class:`~repro.parallel.cost.WorkMeter`; charged one
        unit per relaxed edge.
    queue:
        ``"lazy"`` (default) uses ``heapq`` with lazy deletion — O(m)
        heap entries, tiny constants; ``"addressable"`` uses
        :class:`~repro.sssp.heap.AddressableBinaryHeap` with
        ``decrease_key`` — ≤ n entries, the textbook structure.  Both
        produce identical results.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the shortest ``objective``-distance from
        ``source`` (``inf`` if unreachable); ``parent[v]`` is ``v``'s
        predecessor on one shortest path (``-1`` for the source and
        unreachable vertices).

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edge_list(3, [(0, 1, 5.0), (1, 2, 1.0), (0, 2, 9.0)])
    >>> dist, parent = dijkstra(g, 0)
    >>> dist.tolist()
    [0.0, 5.0, 6.0]
    >>> parent.tolist()
    [-1, 0, 1]
    """
    csr = CSRGraph.ensure(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "dijkstra source")
    if queue not in ("lazy", "addressable"):
        raise AlgorithmError(
            f"unknown queue {queue!r}; expected lazy | addressable"
        )

    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    dist[source] = 0.0
    relaxed = 0

    indptr, indices = csr.indptr, csr.indices
    weights = csr.weights[:, objective]

    if queue == "lazy":
        heap = [(0.0, source)]
        settled = np.zeros(n, dtype=bool)
        while heap:
            d, u = heapq.heappop(heap)
            if settled[u]:
                continue
            settled[u] = True
            lo, hi = indptr[u], indptr[u + 1]
            for i in range(lo, hi):
                v = indices[i]
                nd = d + weights[i]
                relaxed += 1
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
    else:
        pq = AddressableBinaryHeap()
        pq.push(source, 0.0)
        while len(pq):
            u, d = pq.pop()
            lo, hi = indptr[u], indptr[u + 1]
            for i in range(lo, hi):
                v = int(indices[i])
                nd = d + weights[i]
                relaxed += 1
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    pq.decrease_key(v, nd)
    if meter is not None:
        meter.add(relaxed)
    return dist, parent
