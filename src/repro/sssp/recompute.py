"""Uniform entry point for the from-scratch SSSP baselines.

``recompute_sssp(graph, source, algorithm=...)`` is what the
update-vs-recompute benchmark calls: the cost a system pays when it
does **not** use the paper's incremental algorithm and instead reruns
a static solver on every snapshot.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.types import FloatArray, IntArray

__all__ = ["recompute_sssp", "RECOMPUTE_ALGORITHMS"]

RECOMPUTE_ALGORITHMS = ("dijkstra", "bellman_ford", "delta_stepping")


def recompute_sssp(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    algorithm: str = "dijkstra",
    meter=None,
) -> Tuple[FloatArray, IntArray]:
    """Compute ``(dist, parent)`` from scratch with the named algorithm.

    ``algorithm`` is one of :data:`RECOMPUTE_ALGORITHMS`.
    """
    if algorithm == "dijkstra":
        return dijkstra(graph, source, objective, meter=meter)
    if algorithm == "bellman_ford":
        return bellman_ford(graph, source, objective, meter=meter)
    if algorithm == "delta_stepping":
        return delta_stepping(graph, source, objective, meter=meter)
    raise AlgorithmError(
        f"unknown SSSP algorithm {algorithm!r}; "
        f"expected one of {RECOMPUTE_ALGORITHMS}"
    )
