"""Priority-queue substrates for the SSSP solvers.

Two classic structures, built from scratch:

- :class:`AddressableBinaryHeap` — a binary min-heap with
  ``decrease_key`` via a position index, the textbook Dijkstra queue.
  Compared to the lazy-deletion ``heapq`` pattern it keeps the heap at
  ≤ n entries instead of O(m) stale ones — the trade both variants of
  :func:`repro.sssp.dijkstra.dijkstra` expose.
- :class:`BucketQueue` — the monotone integer-bucket queue underlying
  Δ-stepping and Dial's algorithm: O(1) insert/decrease, pop scans
  forward from the current bucket (total O(max_priority) across a run).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import AlgorithmError

__all__ = ["AddressableBinaryHeap", "BucketQueue"]


class AddressableBinaryHeap:
    """Binary min-heap keyed by float priority with ``decrease_key``.

    Items are hashable (vertex ids in this package).  Each item may be
    present at most once; pushing a present item is an error — use
    :meth:`decrease_key` (which ignores non-decreasing updates, the
    convenient semantics for relaxation loops).

    Examples
    --------
    >>> h = AddressableBinaryHeap()
    >>> h.push('a', 5.0); h.push('b', 3.0); h.push('c', 4.0)
    >>> h.decrease_key('a', 1.0)
    True
    >>> [h.pop()[0] for _ in range(len(h))]
    ['a', 'b', 'c']
    """

    __slots__ = ("_heap", "_pos")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, object]] = []
        self._pos: Dict[object, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item) -> bool:
        return item in self._pos

    def key_of(self, item) -> float:
        """Current priority of ``item`` (KeyError if absent)."""
        return self._heap[self._pos[item]][0]

    # ------------------------------------------------------------------
    def _swap(self, i: int, j: int) -> None:
        h = self._heap
        h[i], h[j] = h[j], h[i]
        self._pos[h[i][1]] = i
        self._pos[h[j][1]] = j

    def _sift_up(self, i: int) -> None:
        h = self._heap
        while i > 0:
            parent = (i - 1) >> 1
            if h[i][0] < h[parent][0]:
                self._swap(i, parent)
                i = parent
            else:
                return

    def _sift_down(self, i: int) -> None:
        h = self._heap
        n = len(h)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and h[left][0] < h[smallest][0]:
                smallest = left
            if right < n and h[right][0] < h[smallest][0]:
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest

    # ------------------------------------------------------------------
    def push(self, item, key: float) -> None:
        """Insert a new item."""
        if item in self._pos:
            raise AlgorithmError(f"item {item!r} already in heap")
        self._heap.append((key, item))
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def decrease_key(self, item, key: float) -> bool:
        """Lower ``item``'s priority; returns whether it changed.

        A key that is not lower is ignored (returns ``False``); an
        absent item is pushed (returns ``True``) — together these give
        the exact semantics a relaxation loop wants.
        """
        i = self._pos.get(item)
        if i is None:
            self.push(item, key)
            return True
        if key >= self._heap[i][0]:
            return False
        self._heap[i] = (key, item)
        self._sift_up(i)
        return True

    def pop(self) -> Tuple[object, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._heap:
            raise AlgorithmError("pop from empty heap")
        key, item = self._heap[0]
        last = self._heap.pop()
        del self._pos[item]
        if self._heap:
            self._heap[0] = last
            self._pos[last[1]] = 0
            self._sift_down(0)
        return item, key

    def peek(self) -> Tuple[object, float]:
        """``(item, key)`` with the smallest key, without removal."""
        if not self._heap:
            raise AlgorithmError("peek at empty heap")
        key, item = self._heap[0]
        return item, key


class BucketQueue:
    """Monotone bucket queue over non-negative integer priorities.

    ``pop_min`` scans forward from the last popped bucket, so
    priorities must never drop below it (the monotonicity Dijkstra-like
    algorithms guarantee).  ``decrease`` moves an item to a lower
    bucket.

    Examples
    --------
    >>> q = BucketQueue()
    >>> q.insert('x', 3); q.insert('y', 1)
    >>> q.decrease('x', 2)
    >>> q.pop_min()
    ('y', 1)
    >>> q.pop_min()
    ('x', 2)
    """

    __slots__ = ("_buckets", "_where", "_cursor", "_count")

    def __init__(self) -> None:
        self._buckets: List[set] = []
        self._where: Dict[object, int] = {}
        self._cursor = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _ensure(self, b: int) -> None:
        while b >= len(self._buckets):
            self._buckets.append(set())

    def insert(self, item, priority: int) -> None:
        """Insert a new item at integer ``priority``."""
        if priority < 0:
            raise AlgorithmError("priorities must be non-negative")
        if item in self._where:
            raise AlgorithmError(f"item {item!r} already queued")
        if priority < self._cursor:
            raise AlgorithmError(
                f"monotonicity violated: {priority} < cursor {self._cursor}"
            )
        self._ensure(priority)
        self._buckets[priority].add(item)
        self._where[item] = priority
        self._count += 1

    def decrease(self, item, priority: int) -> bool:
        """Move ``item`` to a lower bucket (insert if absent)."""
        old = self._where.get(item)
        if old is None:
            self.insert(item, priority)
            return True
        if priority >= old:
            return False
        if priority < self._cursor:
            raise AlgorithmError(
                f"monotonicity violated: {priority} < cursor {self._cursor}"
            )
        self._buckets[old].discard(item)
        self._ensure(priority)
        self._buckets[priority].add(item)
        self._where[item] = priority
        return True

    def pop_min(self) -> Tuple[object, int]:
        """Remove and return ``(item, priority)`` from the lowest
        non-empty bucket."""
        if self._count == 0:
            raise AlgorithmError("pop from empty bucket queue")
        while (
            self._cursor < len(self._buckets)
            and not self._buckets[self._cursor]
        ):
            self._cursor += 1
        item = self._buckets[self._cursor].pop()
        del self._where[item]
        self._count -= 1
        return item, self._cursor
