"""Certification of shortest-path solutions.

A ``(dist, parent)`` pair is a correct SSSP solution iff

1. ``dist[source] == 0`` and ``parent[source] == -1``;
2. no edge is *relaxable*: for every edge ``(u, v)``,
   ``dist[v] <= dist[u] + w(u, v)`` (up to floating tolerance);
3. every reachable non-source vertex has a parent edge that is *tight*:
   ``dist[v] == dist[parent[v]] + w(parent[v], v)`` for some live edge;
4. unreachable vertices (``dist == inf``) have no parent;
5. the parent pointers are acyclic (they form a tree rooted at the
   source).

Conditions 2+3 together certify optimality — this is the standard
LP-duality argument, checked in O(n + m).  The incremental algorithms
are validated against this certificate after every batch in the test
suite, independently of any reference distances.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import TreeInvariantError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import INF, NO_PARENT, FloatArray, IntArray

__all__ = ["certify_sssp", "is_valid_sssp"]

_EPS = 1e-9


def certify_sssp(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    dist: FloatArray,
    parent: IntArray,
    objective: int = 0,
    rtol: float = 1e-9,
) -> None:
    """Raise :class:`TreeInvariantError` unless ``(dist, parent)`` is a
    correct SSSP solution for ``graph``/``source``/``objective``."""
    csr = CSRGraph.ensure(graph)
    n = csr.n
    dist = np.asarray(dist, dtype=float)
    parent = np.asarray(parent)
    if dist.shape != (n,) or parent.shape != (n,):
        raise TreeInvariantError(
            f"dist/parent shapes {dist.shape}/{parent.shape} != ({n},)"
        )
    if dist[source] != 0.0:
        raise TreeInvariantError(f"dist[source]={dist[source]}, expected 0")
    if parent[source] != NO_PARENT:
        raise TreeInvariantError(f"source has parent {parent[source]}")

    tol = rtol * (1.0 + np.max(dist[np.isfinite(dist)], initial=0.0))

    # 2. no relaxable edge (vectorised over all edges)
    if csr.m:
        w = csr.weights[:, objective]
        du = dist[csr.src]
        dv = dist[csr.indices]
        finite = np.isfinite(du)
        bad = finite & (dv > du + w + tol)
        if bad.any():
            e = int(np.nonzero(bad)[0][0])
            raise TreeInvariantError(
                f"edge ({csr.src[e]}, {csr.indices[e]}) relaxable: "
                f"dist[{csr.indices[e]}]={dv[e]} > {du[e]} + {w[e]}"
            )

    # 3/4. parent-edge tightness and unreachable consistency
    for v in range(n):
        p = int(parent[v])
        if dist[v] == INF:
            if p != NO_PARENT:
                raise TreeInvariantError(
                    f"unreachable vertex {v} has parent {p}"
                )
            continue
        if v == source:
            continue
        if p == NO_PARENT:
            raise TreeInvariantError(f"reachable vertex {v} has no parent")
        if not 0 <= p < n:
            raise TreeInvariantError(f"parent[{v}]={p} out of range")
        # tight parent edge must exist
        nbrs = csr.in_neighbors(v)
        ws = csr.in_weights(v, objective)
        mask = nbrs == p
        if not mask.any():
            raise TreeInvariantError(f"no edge ({p}, {v}) for parent pointer")
        gap = np.abs(dist[p] + ws[mask] - dist[v])
        if gap.min() > tol:
            raise TreeInvariantError(
                f"parent edge ({p}, {v}) not tight: "
                f"dist[{p}]+w={dist[p] + ws[mask].min()} vs dist[{v}]={dist[v]}"
            )

    # 5. acyclicity of parent pointers
    state = np.zeros(n, dtype=np.int8)  # 0 unvisited, 1 in progress, 2 done
    for v0 in range(n):
        if state[v0] or dist[v0] == INF:
            continue
        path = []
        v = v0
        while v != NO_PARENT and state[v] == 0:
            state[v] = 1
            path.append(v)
            v = int(parent[v])
        if v != NO_PARENT and state[v] == 1:
            raise TreeInvariantError(f"parent pointers cycle through {v}")
        for u in path:
            state[u] = 2


def is_valid_sssp(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    dist: FloatArray,
    parent: IntArray,
    objective: int = 0,
) -> bool:
    """Boolean form of :func:`certify_sssp`."""
    try:
        certify_sssp(graph, source, dist, parent, objective)
        return True
    except TreeInvariantError:
        return False
