"""Δ-stepping (Meyer & Sanders 2003), cited by the paper as [22].

The strongest practical recompute baseline in this package.  Edges are
classified *light* (weight ≤ Δ) or *heavy* (> Δ); vertices live in
buckets of width Δ.  Each phase settles the lowest non-empty bucket by
repeatedly relaxing light edges of its members (re-inserted members are
re-relaxed within the phase), then relaxes heavy edges once.

With Δ = max-weight this degenerates to Bellman-Ford-ish behaviour;
with Δ → 0 it becomes Dijkstra.  The default Δ is the classic
``max_weight / average_degree`` heuristic.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError, VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, INF, NO_PARENT, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["delta_stepping"]


def delta_stepping(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    objective: int = 0,
    delta: Optional[float] = None,
    meter=None,
) -> Tuple[FloatArray, IntArray]:
    """Single-source shortest paths via Δ-stepping.

    Parameters mirror :func:`~repro.sssp.dijkstra.dijkstra`, plus
    ``delta`` — the bucket width (``None`` chooses
    ``max_weight / max(1, avg_degree)``).

    Returns ``(dist, parent)``.
    """
    csr = CSRGraph.ensure(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "delta_stepping source")

    w_all = csr.weights[:, objective]
    if csr.m == 0:
        dist = np.full(n, INF, dtype=DIST_DTYPE)
        parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
        dist[source] = 0.0
        return dist, parent

    max_w = float(w_all.max())
    if delta is None:
        avg_deg = max(1.0, csr.m / n)
        delta = max_w / avg_deg if max_w > 0 else 1.0
    if delta <= 0:
        raise AlgorithmError(f"delta must be positive, got {delta}")

    dist = np.full(n, INF, dtype=DIST_DTYPE)
    parent = np.full(n, NO_PARENT, dtype=VERTEX_DTYPE)
    dist[source] = 0.0

    buckets: List[Set[int]] = [set() for _ in range(64)]
    in_bucket = np.full(n, -1, dtype=VERTEX_DTYPE)

    def bucket_of(d: float) -> int:
        return int(d / delta)

    def ensure(i: int) -> None:
        while i >= len(buckets):
            buckets.extend(set() for _ in range(len(buckets)))

    def place(v: int, d: float) -> None:
        i = bucket_of(d)
        ensure(i)
        old = in_bucket[v]
        if old == i:
            return
        if old >= 0 and v in buckets[old]:
            buckets[old].discard(v)
        buckets[i].add(v)
        in_bucket[v] = i

    relaxed = 0

    def relax(u: int, v: int, wt: float) -> None:
        nonlocal relaxed
        relaxed += 1
        nd = dist[u] + wt
        if nd < dist[v]:
            dist[v] = nd
            parent[v] = u
            place(v, nd)

    indptr, indices = csr.indptr, csr.indices
    place(source, 0.0)
    i = 0
    while i < len(buckets):
        if not buckets[i]:
            i += 1
            continue
        settled_this_phase: Set[int] = set()
        # phase 1: exhaust light edges of bucket i (members may re-enter)
        while buckets[i]:
            frontier = list(buckets[i])
            buckets[i].clear()
            for u in frontier:
                in_bucket[u] = -1
                if bucket_of(dist[u]) != i:
                    # stale: u was improved into a lower bucket already
                    place(u, dist[u])
                    continue
                settled_this_phase.add(u)
                du = dist[u]
                for e in range(indptr[u], indptr[u + 1]):
                    if w_all[e] <= delta:
                        relax(u, int(indices[e]), float(w_all[e]))
        # phase 2: heavy edges of everything settled in this bucket
        for u in settled_this_phase:
            for e in range(indptr[u], indptr[u + 1]):
                if w_all[e] > delta:
                    relax(u, int(indices[e]), float(w_all[e]))
        i += 1
    if meter is not None:
        meter.add(relaxed)
    return dist, parent
