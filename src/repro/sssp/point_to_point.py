"""Point-to-point shortest-path substrates: bidirectional Dijkstra, ALT.

The examples and applications mostly want one source→destination route
(the paper's drone/road scenarios).  Running a full SSSP is wasteful on
large networks, so this module provides the two classic accelerations:

- :func:`bidirectional_dijkstra` — simultaneous forward/backward
  searches meeting in the middle; explores ~2·√(area) of a road
  network instead of the whole ball.
- :class:`ALTIndex` / :func:`alt_search` — A* with the landmark/
  triangle-inequality heuristic (Goldberg & Harrelson): preprocess
  distances to/from a few landmarks; query-time lower bound
  ``h(v) = max_L |d(L, t) − d(L, v)|`` (and the to-landmark twin).
  Works on any non-negative digraph, no coordinates needed.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError, NotReachableError, VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.sssp.dijkstra import dijkstra
from repro.types import INF, FloatArray

__all__ = ["bidirectional_dijkstra", "ALTIndex", "alt_search"]


def _to_csr(graph: Union[DiGraph, CSRGraph]) -> CSRGraph:
    return CSRGraph.ensure(graph)


def _walk_parents(parents, source, v) -> List[int]:
    path = [v]
    while path[-1] != source:
        p = parents.get(path[-1])
        if p is None:
            raise NotReachableError(source, v)
        path.append(p)
    path.reverse()
    return path


def bidirectional_dijkstra(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    destination: int,
    objective: int = 0,
) -> Tuple[List[int], float]:
    """Shortest source→destination path by meeting in the middle.

    Returns ``(path, distance)``; raises
    :class:`~repro.errors.NotReachableError` when no path exists.

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    >>> bidirectional_dijkstra(g, 0, 3)
    ([0, 1, 2, 3], 3.0)
    """
    csr = _to_csr(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "bidirectional source")
    if not 0 <= destination < n:
        raise VertexError(destination, n, "bidirectional destination")
    if source == destination:
        return [source], 0.0
    w = csr.weights[:, objective]

    # state per direction: dist map, parent map, heap, settled set
    dist_f = {source: 0.0}
    dist_b = {destination: 0.0}
    par_f: dict = {}
    par_b: dict = {}
    heap_f = [(0.0, source)]
    heap_b = [(0.0, destination)]
    settled_f: set = set()
    settled_b: set = set()

    best = INF
    meet = -1

    def expand_forward():
        nonlocal best, meet
        d, u = heapq.heappop(heap_f)
        if u in settled_f:
            return
        settled_f.add(u)
        for e in range(csr.indptr[u], csr.indptr[u + 1]):
            v = int(csr.indices[e])
            nd = d + w[e]
            if nd < dist_f.get(v, INF):
                dist_f[v] = nd
                par_f[v] = u
                heapq.heappush(heap_f, (nd, v))
            if v in dist_b and nd + dist_b[v] < best:
                best = nd + dist_b[v]
                meet = v

    def expand_backward():
        nonlocal best, meet
        d, u = heapq.heappop(heap_b)
        if u in settled_b:
            return
        settled_b.add(u)
        for j in range(csr.rev_indptr[u], csr.rev_indptr[u + 1]):
            v = int(csr.rev_indices[j])
            e = int(csr.edge_perm[j])
            nd = d + w[e]
            if nd < dist_b.get(v, INF):
                dist_b[v] = nd
                par_b[v] = u
                heapq.heappush(heap_b, (nd, v))
            if v in dist_f and nd + dist_f[v] < best:
                best = nd + dist_f[v]
                meet = v

    while heap_f and heap_b:
        # classic termination: stop once the two radii exceed the best
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            expand_forward()
        else:
            expand_backward()

    if meet < 0:
        raise NotReachableError(source, destination)
    fwd = _walk_parents(par_f, source, meet)
    # walk the backward tree from meet to destination
    back = [meet]
    while back[-1] != destination:
        back.append(par_b[back[-1]])
    return fwd + back[1:], float(best)


class ALTIndex:
    """Landmark preprocessing for A* queries (the ALT method).

    Parameters
    ----------
    graph:
        The graph to index (snapshot — rebuild after heavy mutation).
    num_landmarks:
        How many landmarks to select.
    objective:
        Which objective the index covers.
    seed:
        Landmark selection seed (selection is farthest-point greedy
        seeded by a random vertex).

    Notes
    -----
    Stores ``2 · L · n`` floats: distances landmark→v (forward) and
    v→landmark (via the reverse graph), giving the two triangle lower
    bounds ``d(v, t) ≥ d(L, t) − d(L, v)`` and ``d(v, t) ≥ d(v, L) −
    d(t, L)``.
    """

    def __init__(
        self,
        graph: Union[DiGraph, CSRGraph],
        num_landmarks: int = 4,
        objective: int = 0,
        seed: int = 0,
    ) -> None:
        csr = _to_csr(graph)
        if num_landmarks < 1:
            raise AlgorithmError("need at least one landmark")
        self.csr = csr
        self.objective = objective
        n = csr.n
        rng = np.random.default_rng(seed)
        rev = CSRGraph(
            n, csr.indices.copy(), csr.src.copy(), csr.weights.copy()
        )

        landmarks: List[int] = [int(rng.integers(0, max(1, n)))]
        fwd: List[FloatArray] = []  # d(L, v)
        bwd: List[FloatArray] = []  # d(v, L)
        for _ in range(num_landmarks):
            L = landmarks[-1]
            df, _p = dijkstra(csr, L, objective)
            db, _p = dijkstra(rev, L, objective)
            fwd.append(df)
            bwd.append(db)
            if len(landmarks) == num_landmarks:
                break
            # farthest-point selection on the forward metric
            cand = np.where(np.isfinite(df), df, -1.0)
            for existing in fwd:
                cand = np.minimum(
                    cand, np.where(np.isfinite(existing), existing, -1.0)
                )
            nxt = int(np.argmax(cand))
            if nxt in landmarks:
                nxt = int(rng.integers(0, n))
            landmarks.append(nxt)
        self.landmarks = landmarks
        self._fwd = np.vstack(fwd)  # (L, n)
        self._bwd = np.vstack(bwd)

    def lower_bound(self, v: int, t: int) -> float:
        """Admissible lower bound on ``d(v, t)``.

        A landmark contributes only when both of its distances are
        finite — an unreachable pairing tells us nothing (using it
        would produce inf/nan bounds).
        """
        ft, fv = self._fwd[:, t], self._fwd[:, v]
        bv, bt = self._bwd[:, v], self._bwd[:, t]
        ok_a = np.isfinite(ft) & np.isfinite(fv)
        ok_b = np.isfinite(bv) & np.isfinite(bt)
        best = 0.0
        if ok_a.any():
            best = max(best, float((ft[ok_a] - fv[ok_a]).max()))
        if ok_b.any():
            best = max(best, float((bv[ok_b] - bt[ok_b]).max()))
        return best


def alt_search(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    destination: int,
    index: Optional[ALTIndex] = None,
    objective: int = 0,
) -> Tuple[List[int], float]:
    """A* with landmark lower bounds.

    Builds a 4-landmark :class:`ALTIndex` on the fly when none is
    given (pass a prebuilt index to amortise over many queries).
    Returns ``(path, distance)``.
    """
    csr = _to_csr(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "alt source")
    if not 0 <= destination < n:
        raise VertexError(destination, n, "alt destination")
    if index is None:
        index = ALTIndex(csr, objective=objective)
    if index.objective != objective:
        raise AlgorithmError(
            f"index covers objective {index.objective}, not {objective}"
        )
    w = csr.weights[:, objective]

    dist = {source: 0.0}
    parents: dict = {}
    h0 = index.lower_bound(source, destination)
    heap = [(h0, source)]
    settled: set = set()
    while heap:
        _, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == destination:
            return _walk_parents(parents, source, u), dist[u]
        settled.add(u)
        du = dist[u]
        for e in range(csr.indptr[u], csr.indptr[u + 1]):
            v = int(csr.indices[e])
            nd = du + w[e]
            if nd < dist.get(v, INF):
                dist[v] = nd
                parents[v] = u
                heapq.heappush(
                    heap, (nd + index.lower_bound(v, destination), v)
                )
    raise NotReachableError(source, destination)
