"""Single-objective shortest-path substrate.

From-scratch implementations of the SSSP algorithms the paper builds
on or cites as components:

- :func:`~repro.sssp.dijkstra.dijkstra` — binary-heap Dijkstra, the
  gold-standard oracle used to build initial SOSP trees and to verify
  every incremental update.
- :func:`~repro.sssp.bellman_ford.bellman_ford` /
  :func:`~repro.sssp.bellman_ford.parallel_bellman_ford` — edge-centric
  relaxation rounds; the parallel variant runs over any
  :class:`~repro.parallel.api.Engine` and is the Step-3 kernel of
  Algorithm 2 ("we use a parallel Bellman-Ford implementation to
  compute the SOSP on the combined graph").
- :func:`~repro.sssp.delta_stepping.delta_stepping` — the classic
  Meyer–Sanders bucketed algorithm (cited as [22]), a stronger
  recompute baseline than Bellman-Ford.
- :func:`~repro.sssp.recompute.recompute_sssp` — uniform entry point
  for the from-scratch baselines.
- :func:`~repro.sssp.verify.certify_sssp` — O(n + m) certification of
  any (dist, parent) pair against a graph.

All functions return ``(dist, parent)`` numpy arrays; ``dist`` is
``inf`` and ``parent`` is ``-1`` for unreachable vertices.
"""

from repro.sssp.bellman_ford import (
    bellman_ford,
    frontier_bellman_ford,
    parallel_bellman_ford,
)
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.point_to_point import ALTIndex, alt_search, bidirectional_dijkstra
from repro.sssp.recompute import recompute_sssp
from repro.sssp.verify import certify_sssp, is_valid_sssp

__all__ = [
    "dijkstra",
    "bellman_ford",
    "parallel_bellman_ford",
    "frontier_bellman_ford",
    "delta_stepping",
    "recompute_sssp",
    "bidirectional_dijkstra",
    "alt_search",
    "ALTIndex",
    "certify_sssp",
    "is_valid_sssp",
]
