"""The interprocedural rules: R006 (write-sets), R007 (spawn safety),
R008 (boundary-exchange monotonicity).

Unlike R001-R005, these rules read the :class:`~repro.analysis.symbols.
ProjectContext` the runner attaches to every :class:`FileContext`: a
``SlabTask`` at a dispatch site names its kernel by ``"module:qualname"``
reference, and the kernel — possibly in another file — is what R006
actually analyses.  ``docs/INVARIANTS.md`` maps each rule to the paper
argument and runtime contract it protects.
"""

from __future__ import annotations

import ast
import builtins
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import infer_slab_writes, slab_positional_params
from repro.analysis.rules import Rule
from repro.analysis.runner import FileContext, Finding
from repro.analysis.symbols import ModuleInfo, ProjectContext, dotted_name

__all__ = ["RuleR006", "RuleR007", "RuleR008"]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: SlabTask dataclass field order, for positional construction sites.
_SLABTASK_FIELDS = ("ref", "arrays", "params", "writes")

#: Engine constructors whose ``parallel_for``/``map_reduce`` cross a
#: process boundary (spawn pickling).  Thread/serial/simulated engines
#: run closures natively and are exempt.
_PROCESS_ENGINE_CLASSES = frozenset({"ProcessEngine", "SharedMemoryEngine"})
_PROCESS_ENGINE_NAMES = frozenset({"processes", "shm"})


def _project_of(ctx: FileContext) -> Tuple[ProjectContext, Optional[ModuleInfo]]:
    """The run's symbol table and this file's module entry.  The runner
    registers every linted file before rules run; a bare ``FileContext``
    (unit tests poking a rule directly) gets a single-file table."""
    project = getattr(ctx, "project", None)
    if project is None:
        project = ProjectContext()
        project.add_source(ctx.path, ctx.source, tree=ctx.tree)
    mi = project.module_for_path(ctx.path)
    if mi is None:
        mi = project.add_source(ctx.path, ctx.source, tree=ctx.tree)
    return project, mi


def _slabtask_arg(call: ast.Call, field: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == field:
            return kw.value
    idx = _SLABTASK_FIELDS.index(field)
    if len(call.args) > idx:
        arg = call.args[idx]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


def _is_slabtask_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SlabTask"
    return isinstance(func, ast.Attribute) and func.attr == "SlabTask"


# ----------------------------------------------------------------- R006
class RuleR006(Rule):
    """A slab kernel's declared ``writes=`` must match what it stores.

    The declaration is load-bearing twice over: the shm backend's crash
    rollback snapshots exactly ``task.writes``, so an undeclared write
    survives a rollback and corrupts recovery; and ownership reporting
    scopes to the declared set, so an undeclared write escapes the
    single-writer sanitizer entirely.
    """

    code = "R006"
    summary = (
        "slab kernel write-set drifts from its SlabTask writes= "
        "declaration"
    )
    hint = (
        "declare every planted array the kernel (or a helper it calls) "
        "stores into in SlabTask(writes=...); crash rollback and the "
        "ownership sanitizer only protect declared writes"
    )

    def applies(self, ctx: FileContext) -> bool:
        return True  # dispatch sites exist in src, tests and benchmarks

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project, mi = _project_of(ctx)
        if mi is None:
            return
        for node in ast.walk(ctx.tree):
            if not _is_slabtask_call(node):
                continue
            yield from self._check_site(ctx, project, mi, node)

    def _check_site(
        self,
        ctx: FileContext,
        project: ProjectContext,
        mi: ModuleInfo,
        call: ast.Call,
    ) -> Iterator[Finding]:
        writes_expr = _slabtask_arg(call, "writes")
        if writes_expr is None or (
            isinstance(writes_expr, ast.Constant)
            and writes_expr.value is None
        ):
            return  # writes=None: documented "unknown, snapshot all"
        ref_expr = _slabtask_arg(call, "ref")
        if ref_expr is None:
            return
        ref = project.resolve_str(mi, ref_expr)
        declared = (
            project.resolve_str_tuple(mi, writes_expr)
            if ref is not None
            else None
        )
        if ref is None or declared is None:
            return  # dynamic ref/writes: nothing provable statically
        arrays_expr = _slabtask_arg(call, "arrays")
        arrays = (
            project.resolve_str_tuple(mi, arrays_expr)
            if arrays_expr is not None
            else None
        )
        if arrays is not None:
            phantom = sorted(set(declared) - set(arrays))
            if phantom:
                yield self.finding(
                    ctx,
                    call,
                    f"kernel '{ref}' declares writes to "
                    f"{', '.join(phantom)} absent from task.arrays "
                    "(rollback snapshot would fail at dispatch)",
                )
        status, kernel_mi, fn = project.resolve_ref(ref)
        if status != "ok" or kernel_mi is None or fn is None:
            return  # unresolvable refs are R007's report, not R006's
        if len(slab_positional_params(fn)) < 4:
            return
        inferred = infer_slab_writes(project, kernel_mi, fn, depth=1)
        undeclared = sorted(inferred.writes - set(declared))
        if undeclared:
            yield self.finding(
                ctx,
                call,
                f"kernel '{ref}' writes planted array(s) "
                f"{', '.join(undeclared)} not declared in writes="
                f"{tuple(declared)!r}",
            )
        if inferred.complete:
            unwritten = sorted(set(declared) - inferred.writes)
            if unwritten:
                yield self.warning(
                    ctx,
                    call,
                    f"kernel '{ref}' never writes declared array(s) "
                    f"{', '.join(unwritten)} (stale writes= entry "
                    "forces needless rollback snapshots)",
                )


# ----------------------------------------------------------------- R007
class RuleR007(Rule):
    """Callables crossing a process boundary must be importable.

    The static twin of the shm backend's ``_GuardPickler``: spawn
    workers re-import task functions by qualified name, so lambdas,
    nested defs (closure cells), and bound methods either fail to
    pickle or silently degrade the dispatch to its serial fallback.
    ``SlabTask.ref`` strings get the same treatment — they must name a
    resolvable module-level function.
    """

    code = "R007"
    summary = (
        "non-importable callable (lambda/closure/bound method) handed "
        "to a process-backed engine"
    )
    hint = (
        "hoist the task to a module-level function and pass state "
        "through items or SlabTask params; process backends re-import "
        "tasks by qualified name in spawn workers"
    )

    def applies(self, ctx: FileContext) -> bool:
        return True

    # -- which expressions denote process-backed engines ---------------
    def _ctor_is_process_backed(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _PROCESS_ENGINE_CLASSES:
            return True
        if name == "resolve_engine" and node.args:
            first = node.args[0]
            return (
                isinstance(first, ast.Constant)
                and first.value in _PROCESS_ENGINE_NAMES
            )
        return False

    @staticmethod
    def _scope_nodes(stmts: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """Walk ``stmts`` without descending into nested scopes.

        Engine variables are tracked lexically: an ``eng`` bound to a
        ``ProcessEngine`` inside one function must not taint an ``eng``
        bound to a thread engine in a sibling function, so each
        def/class body is analysed as its own scope (inheriting the
        enclosing bindings) rather than in one file-global pass.
        """
        stack: List[ast.AST] = list(stmts)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                ),
            ):
                continue  # nested scope: yielded as a marker, not entered
            stack.extend(ast.iter_child_nodes(node))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project, mi = _project_of(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_slabtask_call(node):
                yield from self._check_ref(ctx, project, mi, node)
        yield from self._check_scope(ctx, mi, ctx.tree.body, frozenset())

    def _check_scope(
        self,
        ctx: FileContext,
        mi: Optional[ModuleInfo],
        body: Sequence[ast.stmt],
        inherited: FrozenSet[str],
    ) -> Iterator[Finding]:
        pb_vars: Set[str] = set(inherited)
        nested: List[Sequence[ast.stmt]] = []
        for node in self._scope_nodes(body):
            if isinstance(node, ast.Assign):
                if self._ctor_is_process_backed(node.value):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            pb_vars.add(t.id)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and self._ctor_is_process_backed(
                    node.value
                ) and isinstance(node.target, ast.Name):
                    pb_vars.add(node.target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._ctor_is_process_backed(
                        item.context_expr
                    ) and isinstance(item.optional_vars, ast.Name):
                        pb_vars.add(item.optional_vars.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                nested.append(node.body)
        for node in self._scope_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("parallel_for", "map_reduce")
            ):
                continue
            receiver = func.value
            if not (
                (isinstance(receiver, ast.Name) and receiver.id in pb_vars)
                or self._ctor_is_process_backed(receiver)
            ):
                continue
            task_arg = next(
                (kw.value for kw in node.keywords if kw.arg == "fn"), None
            )
            if task_arg is None and len(node.args) > 1:
                task_arg = node.args[1]
            if task_arg is not None:
                yield from self._check_callable(ctx, mi, node, task_arg)
        frozen = frozenset(pb_vars)
        for child_body in nested:
            yield from self._check_scope(ctx, mi, child_body, frozen)

    # -- classifying the task argument ---------------------------------
    def _check_callable(
        self,
        ctx: FileContext,
        mi: Optional[ModuleInfo],
        call: ast.Call,
        arg: ast.expr,
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Lambda):
            yield self.finding(
                ctx,
                call,
                "lambda passed to a process-backed engine cannot be "
                "pickled for spawn workers",
            )
            return
        if isinstance(arg, ast.Attribute):
            root = arg.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self":
                yield self.finding(
                    ctx,
                    call,
                    f"bound method '{ast.unparse(arg)}' passed to a "
                    "process-backed engine drags its instance through "
                    "the pickle round-trip",
                )
            return
        if not isinstance(arg, ast.Name):
            return
        resolved = self._resolve_local(arg.id, call, ctx)
        if resolved is None:
            return
        defn, scope = resolved
        if isinstance(defn, ast.Lambda):
            yield self.finding(
                ctx,
                call,
                f"'{arg.id}' is a lambda binding; process-backed "
                "engines cannot pickle it for spawn workers",
            )
            return
        if isinstance(scope, ast.Module):
            return  # module-level def: importable by qualname
        captured = self._free_names(defn, mi)
        detail = (
            f" capturing {', '.join(sorted(captured))}" if captured else ""
        )
        yield self.finding(
            ctx,
            call,
            f"nested function '{arg.id}' (line {defn.lineno}){detail} "
            "is not importable by spawn workers; hoist it to module "
            "level",
        )

    def _resolve_local(
        self, name: str, call: ast.Call, ctx: FileContext
    ) -> Optional[Tuple[ast.AST, ast.AST]]:
        for scope in [call, *ctx.ancestors(call)]:
            body = getattr(scope, "body", None)
            if not isinstance(body, list):
                continue
            for stmt in body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == name
                ):
                    return stmt, scope
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in stmt.targets
                ):
                    if isinstance(stmt.value, ast.Lambda):
                        return stmt.value, scope
        return None

    def _free_names(
        self, defn: ast.AST, mi: Optional[ModuleInfo]
    ) -> Set[str]:
        bound: Set[str] = set()
        args = defn.args
        for a in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            bound.add(a.arg)
        loads: Set[str] = set()
        for node in ast.walk(defn):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    bound.add(node.id)
                else:
                    loads.add(node.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if node is not defn:
                    bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
        module_names: Set[str] = set()
        if mi is not None:
            module_names = (
                set(mi.functions)
                | set(mi.constants)
                | set(mi.import_modules)
                | set(mi.import_names)
            )
        return loads - bound - module_names - _BUILTIN_NAMES

    # -- SlabTask ref strings -------------------------------------------
    def _check_ref(
        self,
        ctx: FileContext,
        project: ProjectContext,
        mi: Optional[ModuleInfo],
        call: ast.Call,
    ) -> Iterator[Finding]:
        if mi is None:
            return
        ref_expr = _slabtask_arg(call, "ref")
        if ref_expr is None:
            return
        ref = project.resolve_str(mi, ref_expr)
        if ref is None:
            return
        status, _, _ = project.resolve_ref(ref)
        if status == "bad-format":
            yield self.finding(
                ctx,
                call,
                f"SlabTask ref {ref!r} is not of the importable "
                "'module:qualname' form",
            )
        elif status == "not-module-level":
            yield self.finding(
                ctx,
                call,
                f"SlabTask ref {ref!r} names a function defined inside "
                "another function; spawn workers cannot import it",
            )
        elif status == "unknown-function":
            yield self.finding(
                ctx,
                call,
                f"SlabTask ref {ref!r} does not resolve to a "
                "module-level function in its module",
            )
        # unknown-module: outside the lint run's view — nothing provable


# ----------------------------------------------------------------- R008
#: Subscript-store targets the exchange path legitimately owns (by
#: trailing attribute name): the distance array itself (guarded), the
#: repropagation seed bookkeeping, and the emit high-water snapshot.
_R008_EXCHANGE_STATE = frozenset({"marked", "pending", "bnd_sent"})


class RuleR008(Rule):
    """Boundary exchange may only publish strict distance improvements.

    The partitioned fixpoint argument (docs/PARALLEL.md) needs every
    cross-shard delivery to be a monotone decrease into a ghost copy;
    a non-strict publish can ping-pong equal distances forever, and a
    write to any non-exchange array from the exchange path bypasses
    shard ownership.
    """

    code = "R008"
    summary = (
        "exchange path publishes distances without strict improvement "
        "or writes non-exchange state"
    )
    hint = (
        "guard every dist store in the exchange path with a strict "
        "comparison (new < current) and keep ghost deliveries limited "
        "to dist/marked/pending updates on the destination shard"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.repro_rel == "parallel/backends/partitioned.py"

    # -- locating exchange regions --------------------------------------
    def _is_exchange_span(self, node: ast.AST) -> bool:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            return False
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "span"
                and expr.args
                and isinstance(expr.args[0], ast.Constant)
                and isinstance(expr.args[0].value, str)
                and "exchange" in expr.args[0].value
            ):
                return True
        return False

    def _regions(self, ctx: FileContext) -> Iterator[ast.AST]:
        spans: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if self._is_exchange_span(node):
                spans.append(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "emit" or "exchange" in node.name:
                    spans.append(node)
        # drop regions nested inside another region (avoid duplicates)
        for region in spans:
            if not any(
                other is not region
                and any(n is region for n in ast.walk(other))
                for other in spans
            ):
                yield region

    # -- the check ------------------------------------------------------
    @staticmethod
    def _store_base(node: ast.expr) -> Optional[str]:
        while isinstance(node, ast.Subscript):
            node = node.value
        return dotted_name(node)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: Set[Tuple[int, int, str]] = set()
        for region in self._regions(ctx):
            strict: List[str] = []
            nonstrict: List[str] = []
            for node in ast.walk(region):
                if not isinstance(node, ast.Compare):
                    continue
                is_strict = any(
                    isinstance(op, (ast.Lt, ast.Gt)) for op in node.ops
                )
                is_loose = any(
                    isinstance(op, (ast.LtE, ast.GtE)) for op in node.ops
                )
                for operand in [node.left, *node.comparators]:
                    base = self._store_base(operand)
                    if base is None:
                        continue
                    if is_strict:
                        strict.append(base)
                    elif is_loose:
                        nonstrict.append(base)
            has_strict_dist_guard = any(
                b.split(".")[-1] == "dist" for b in strict
            )
            only_loose_guard = any(
                b.split(".")[-1] == "dist" for b in nonstrict
            )
            for node in ast.walk(region):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets: Sequence[ast.expr] = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                else:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    base = self._store_base(target)
                    if base is None:
                        continue
                    last = base.split(".")[-1]
                    if last == "dist":
                        if not has_strict_dist_guard:
                            qualifier = (
                                "only a non-strict (<=/>=) comparison"
                                if only_loose_guard
                                else "no improvement comparison"
                            )
                            msg = (
                                f"exchange path stores into '{base}' "
                                f"with {qualifier} in scope; deliveries "
                                "must be strict improvements"
                            )
                            key = (node.lineno, node.col_offset, msg)
                            if key not in seen:
                                seen.add(key)
                                yield self.finding(ctx, node, msg)
                    elif last not in _R008_EXCHANGE_STATE:
                        msg = (
                            f"exchange path writes '{base}', which is "
                            "not exchange-owned state; ghost deliveries "
                            "may only touch dist/marked/pending"
                        )
                        key = (node.lineno, node.col_offset, msg)
                        if key not in seen:
                            seen.add(key)
                            yield self.finding(ctx, node, msg)
