"""Project-wide symbol table for the interprocedural passes.

The per-file rules (R001-R005) never need to see more than one module
at a time.  The deep rules added for write-set verification (R006) and
spawn safety (R007) do: a ``SlabTask`` names its kernel by an
importable ``"module:qualname"`` reference, the kernel may live in a
different file than the dispatch site, and its write-set can flow
through helper calls.  :class:`ProjectContext` is the shared substrate
for those passes — a map from dotted module names to parsed ASTs with
just enough indexing (top-level functions, class methods one level
deep, constant bindings, import aliases) to resolve kernel references,
string/tuple constants, and direct calls across files.

Everything here is still stdlib-only ``ast``: modules are *parsed*,
never imported, so linting cannot execute repository code.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePath
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "ModuleInfo",
    "ProjectContext",
    "build_project",
    "dotted_name",
    "module_name_for_path",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Directory names that anchor a dotted module name.  ``src`` is a
#: layout prefix (dropped); the others are importable top-level
#: packages/namespaces of this repo and stay in the name.
_KEPT_ANCHORS = ("tests", "benchmarks", "examples")


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a repository file path.

    ``src/repro/core/kernels.py`` -> ``repro.core.kernels``;
    ``tests/_shm_support.py`` -> ``tests._shm_support``; files outside
    any known anchor fall back to their stem (so a fixture linted in
    isolation can still self-reference as ``"<stem>:fn"``).
    """
    parts: List[str] = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        rel = parts[idx + 1 :]
    else:
        for anchor in _KEPT_ANCHORS:
            if anchor in parts:
                idx = len(parts) - 1 - parts[::-1].index(anchor)
                rel = parts[idx:]
                break
        else:
            rel = parts[-1:]
    return ".".join(rel)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``a.b.c`` Name/Attribute chain, or ``None``."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return ".".join(reversed(chain))


class ModuleInfo:
    """One parsed module plus the indexes the deep rules query.

    Attributes
    ----------
    functions:
        Top-level defs by name, plus first-level class methods under
        their ``Cls.method`` qualname (matching how
        ``SlabTask``'s getattr-chain resolver walks qualnames).
    constants:
        Module-level ``NAME = <literal-ish>`` bindings (Assign and
        AnnAssign), used to resolve ``writes=_SOSP_WRITES`` and
        ``ref=DOUBLE`` without importing anything.
    import_modules:
        Local alias -> dotted module for ``import x.y as z``.
    import_names:
        Local alias -> ``(module, original_name)`` for
        ``from m import orig as alias``.
    """

    def __init__(self, name: str, path: str, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.functions: Dict[str, FunctionNode] = {}
        self.constants: Dict[str, ast.expr] = {}
        self.import_modules: Dict[str, str] = {}
        self.import_names: Dict[str, Tuple[str, str]] = {}
        self._index()

    def _record_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.import_modules[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    self.import_modules[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = self.name.split(".")[: -node.level or None]
                mod = ".".join(base + ([node.module] if node.module else []))
            else:
                mod = node.module or ""
            for alias in node.names:
                self.import_names[alias.asname or alias.name] = (
                    mod,
                    alias.name,
                )

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.functions[f"{node.name}.{sub.name}"] = sub
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.constants[target.id] = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                self.constants[node.target.id] = node.value
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node)


class ProjectContext:
    """The project-wide pass: every module the lint run can see.

    A full repository walk registers every file before any rule runs,
    so cross-file kernel references resolve; a single-file lint (the
    fixture tests) registers just that file, and unresolvable external
    references degrade to "unknown" rather than false positives.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        #: Optional fallback: dotted module name -> source path.  The
        #: runtime cross-check installs an ``importlib.util.find_spec``
        #: locator here so kernel refs resolve outside a full walk;
        #: static lint runs leave it ``None`` (no filesystem surprises).
        self.loader: Optional[Callable[[str], Optional[str]]] = None
        self._loading: Set[str] = set()

    # -- registration ---------------------------------------------------
    def add_source(
        self, path: str, source: str, tree: Optional[ast.Module] = None
    ) -> Optional[ModuleInfo]:
        """Parse and register one module; ``None`` on syntax errors
        (the per-file lint reports those — registration stays quiet)."""
        if tree is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                return None
        mi = ModuleInfo(module_name_for_path(path), path, tree)
        self.modules[mi.name] = mi
        self.by_path[str(Path(path))] = mi
        return mi

    def add_file(self, path: str) -> Optional[ModuleInfo]:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            return None
        return self.add_source(path, source)

    # -- lookups --------------------------------------------------------
    def module(self, name: str) -> Optional[ModuleInfo]:
        return self.modules.get(name)

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        return self.by_path.get(str(Path(path)))

    def resolve_module(self, name: str) -> Optional[ModuleInfo]:
        """Exact dotted-name match, else the lazy loader, else a unique
        tail-component match (lets a standalone fixture reference
        itself by bare stem)."""
        mi = self.modules.get(name)
        if mi is not None:
            return mi
        if self.loader is not None and name not in self._loading:
            self._loading.add(name)
            try:
                path = self.loader(name)
                if path is not None:
                    loaded = self.add_file(path)
                    if loaded is not None:
                        # register under the requested name too, in case
                        # the path-derived name differs
                        self.modules.setdefault(name, loaded)
                        return loaded
            finally:
                self._loading.discard(name)
        if "." in name:
            return None
        tails = [
            m
            for mod_name, m in self.modules.items()
            if mod_name.split(".")[-1] == name
        ]
        return tails[0] if len(tails) == 1 else None

    def resolve_ref(
        self, ref: str
    ) -> Tuple[str, Optional[ModuleInfo], Optional[FunctionNode]]:
        """Resolve a ``"module:qualname"`` kernel reference.

        Returns ``(status, module, function)`` with status one of
        ``ok`` / ``bad-format`` / ``not-module-level`` /
        ``unknown-module`` / ``unknown-function``.  ``unknown-module``
        is *not* an error for callers: it means the module is outside
        the lint run's view, so nothing can be proven either way.
        """
        if ":" not in ref:
            return "bad-format", None, None
        mod_name, _, qualname = ref.partition(":")
        if not mod_name or not qualname:
            return "bad-format", None, None
        if "<locals>" in qualname:
            return "not-module-level", None, None
        mi = self.resolve_module(mod_name)
        if mi is None:
            return "unknown-module", None, None
        fn = mi.functions.get(qualname)
        if fn is None:
            return "unknown-function", mi, None
        return "ok", mi, fn

    def resolve_call(
        self,
        mi: ModuleInfo,
        func: ast.expr,
        local_imports: Optional[Dict[str, Tuple[str, str]]] = None,
    ) -> Optional[Tuple[ModuleInfo, FunctionNode]]:
        """Resolve a call expression to its def, across one import hop.

        Handles ``helper(...)`` (local def or ``from m import helper``,
        including function-level imports via ``local_imports``) and
        ``mod.helper(...)`` where ``mod`` is an imported module alias.
        """
        if isinstance(func, ast.Name):
            fn = mi.functions.get(func.id)
            if fn is not None:
                return mi, fn
            imported = (local_imports or {}).get(func.id) or (
                mi.import_names.get(func.id)
            )
            if imported is not None:
                src_mod, orig = imported
                target = self.resolve_module(src_mod)
                if target is not None:
                    target_fn = target.functions.get(orig)
                    if target_fn is not None:
                        return target, target_fn
            return None
        dotted = dotted_name(func)
        if dotted is None or "." not in dotted:
            return None
        prefix, _, attr = dotted.rpartition(".")
        root = prefix.split(".")[0]
        mod_alias = mi.import_modules.get(root)
        if mod_alias is None:
            return None
        target_name = ".".join([mod_alias, *prefix.split(".")[1:]])
        target = self.resolve_module(target_name)
        if target is None:
            return None
        target_fn = target.functions.get(attr)
        if target_fn is None:
            return None
        return target, target_fn

    # -- constant folding ----------------------------------------------
    def resolve_str(
        self, mi: ModuleInfo, node: ast.expr, _depth: int = 4
    ) -> Optional[str]:
        """Fold ``node`` to a string literal through Name/import hops."""
        if _depth <= 0:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            const = mi.constants.get(node.id)
            if const is not None:
                return self.resolve_str(mi, const, _depth - 1)
            imported = mi.import_names.get(node.id)
            if imported is not None:
                src = self.resolve_module(imported[0])
                if src is not None:
                    const = src.constants.get(imported[1])
                    if const is not None:
                        return self.resolve_str(src, const, _depth - 1)
            return None
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None or "." not in dotted:
                return None
            prefix, _, attr = dotted.rpartition(".")
            mod_alias = mi.import_modules.get(prefix.split(".")[0])
            if mod_alias is None:
                return None
            target = self.resolve_module(
                ".".join([mod_alias, *prefix.split(".")[1:]])
            )
            if target is None:
                return None
            const = target.constants.get(attr)
            if const is None:
                return None
            return self.resolve_str(target, const, _depth - 1)
        return None

    def resolve_str_tuple(
        self, mi: ModuleInfo, node: ast.expr, _depth: int = 4
    ) -> Optional[Tuple[str, ...]]:
        """Fold ``node`` to a tuple of strings (``writes=`` values)."""
        if _depth <= 0:
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            out: List[str] = []
            for elt in node.elts:
                s = self.resolve_str(mi, elt, _depth - 1)
                if s is None:
                    return None
                out.append(s)
            return tuple(out)
        if isinstance(node, (ast.Name, ast.Attribute)):
            const: Optional[ast.expr] = None
            src: Optional[ModuleInfo] = None
            if isinstance(node, ast.Name):
                const, src = mi.constants.get(node.id), mi
                if const is None:
                    imported = mi.import_names.get(node.id)
                    if imported is not None:
                        src = self.resolve_module(imported[0])
                        if src is not None:
                            const = src.constants.get(imported[1])
            else:
                dotted = dotted_name(node)
                if dotted is not None and "." in dotted:
                    prefix, _, attr = dotted.rpartition(".")
                    mod_alias = mi.import_modules.get(prefix.split(".")[0])
                    if mod_alias is not None:
                        src = self.resolve_module(
                            ".".join([mod_alias, *prefix.split(".")[1:]])
                        )
                        if src is not None:
                            const = src.constants.get(attr)
            if const is not None and src is not None:
                return self.resolve_str_tuple(src, const, _depth - 1)
        return None


def build_project(
    files: Iterable[Union[str, Path]],
    sources: Optional[Sequence[Tuple[str, str]]] = None,
) -> ProjectContext:
    """Build the symbol table for a lint run.

    ``files`` are read from disk; ``sources`` are ``(path, text)``
    pairs registered as-is (in-memory lints).  Unparseable files are
    skipped here — the per-file lint pass reports them as errors.
    """
    project = ProjectContext()
    for f in files:
        project.add_file(str(f))
    for path, text in sources or ():
        project.add_source(path, text)
    return project
