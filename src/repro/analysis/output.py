"""Report rendering and the findings baseline.

Four output formats hang off ``python -m repro.analysis --format``:

- ``text``: the classic ``path:line:col: CODE msg`` lines;
- ``json``: the findings as a machine-readable document;
- ``sarif``: a SARIF 2.1.0 run, the interchange format code-scanning
  UIs ingest (CI uploads it as an artifact);
- ``github``: GitHub Actions workflow commands (``::error file=...``)
  that annotate the PR diff inline.

The baseline file grandfathers known findings: entries match by
``(path, code, message)`` fingerprint — deliberately line-number-free,
so unrelated edits above a finding don't un-baseline it — and anything
not in the baseline fails the run.  The repo policy is an *empty*
baseline (fix or ``# repro: noqa`` with justification instead of
grandfathering); the mechanism exists so adopting a new rule never
forces a big-bang cleanup commit.

``validate_sarif`` is a structural validator for the SARIF 2.1.0
shape this module emits (stdlib-only — the real JSON schema would
need a network fetch and a jsonschema dependency).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.runner import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "render_findings",
    "render_github",
    "render_json",
    "render_sarif",
    "render_text",
    "save_baseline",
    "split_baselined",
    "validate_sarif",
]

#: Baseline location relative to the repo root (committed; empty by
#: policy — see the module docstring).
DEFAULT_BASELINE = "analysis-baseline.json"

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "repro-analysis"
_SARIF_LEVELS = frozenset({"none", "note", "warning", "error"})


# -- renderers ----------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def render_json(findings: Sequence[Finding]) -> str:
    doc = {
        "tool": _TOOL_NAME,
        "count": len(findings),
        "findings": [asdict(f) for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow-command annotations, one per finding."""
    lines = []
    for f in findings:
        kind = "error" if f.severity == "error" else "warning"
        # workflow commands terminate the message at a newline; the
        # properties before '::' use URL-ish escaping for commas
        message = f"{f.message} [fix: {f.hint}]".replace("\n", " ")
        lines.append(
            f"::{kind} file={Path(f.path).as_posix()},line={f.line},"
            f"col={f.col},title={f.code}::{message}"
        )
    return "\n".join(lines)


def _sarif_rules(findings: Sequence[Finding]) -> List[Dict[str, Any]]:
    from repro.analysis.rules import ALL_RULES

    used = {f.code for f in findings}
    return [
        {
            "id": rule.code,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.hint},
        }
        for rule in ALL_RULES
        if rule.code in used
    ]


def render_sarif(findings: Sequence[Finding]) -> str:
    results = [
        {
            "ruleId": f.code,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f"{f.message} [fix: {f.hint}]"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(f.path).as_posix(),
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro/docs/INVARIANTS.md"
                        ),
                        "rules": _sarif_rules(findings),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
    "github": render_github,
}


def render_findings(findings: Sequence[Finding], fmt: str) -> str:
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of "
            f"{sorted(_RENDERERS)}"
        ) from None
    return renderer(findings)


# -- SARIF structural validation ----------------------------------------
def validate_sarif(doc: Any) -> List[str]:
    """Structural problems with a SARIF 2.1.0 document ([] = valid).

    Checks the invariants the 2.1.0 schema imposes on the subset of
    SARIF this tool emits: top-level version/runs, tool.driver.name,
    rule metadata ids, result level/message/location shapes, and that
    every ``ruleId`` is declared by the driver.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("version") != _SARIF_VERSION:
        problems.append(
            f"version must be {_SARIF_VERSION!r}, got {doc.get('version')!r}"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        tool = run.get("tool")
        driver = tool.get("driver") if isinstance(tool, dict) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}.tool.driver.name missing")
            driver = {}
        declared: Set[str] = set()
        for j, rule in enumerate(driver.get("rules", []) or []):
            if not isinstance(rule, dict) or not isinstance(
                rule.get("id"), str
            ):
                problems.append(f"{where}.tool.driver.rules[{j}].id missing")
            else:
                declared.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not isinstance(res, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            if res.get("level") not in _SARIF_LEVELS:
                problems.append(
                    f"{rwhere}.level {res.get('level')!r} not in "
                    f"{sorted(_SARIF_LEVELS)}"
                )
            message = res.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{rwhere}.message.text missing")
            rule_id = res.get("ruleId")
            if not isinstance(rule_id, str):
                problems.append(f"{rwhere}.ruleId missing")
            elif declared and rule_id not in declared:
                problems.append(
                    f"{rwhere}.ruleId {rule_id!r} not declared by driver"
                )
            for k, loc in enumerate(res.get("locations", []) or []):
                lwhere = f"{rwhere}.locations[{k}]"
                phys = loc.get("physicalLocation") if isinstance(
                    loc, dict
                ) else None
                if not isinstance(phys, dict):
                    phys = {}
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or not isinstance(
                    art.get("uri"), str
                ):
                    problems.append(
                        f"{lwhere}.physicalLocation.artifactLocation.uri "
                        "missing"
                    )
                region = phys.get("region")
                start = region.get("startLine") if isinstance(
                    region, dict
                ) else None
                if not isinstance(start, int) or start < 1:
                    problems.append(
                        f"{lwhere}.physicalLocation.region.startLine must "
                        "be a positive integer"
                    )
    return problems


# -- the baseline -------------------------------------------------------
def load_baseline(path: str) -> Set[str]:
    """Fingerprints grandfathered by ``path`` ({} if it's absent)."""
    p = Path(path)
    if not p.exists():
        return set()
    doc = json.loads(p.read_text(encoding="utf-8"))
    entries = doc.get("findings", []) if isinstance(doc, dict) else []
    out: Set[str] = set()
    for e in entries:
        out.add(f"{e['path']}::{e['code']}::{e['message']}")
    return out


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    entries = sorted(
        {
            (Path(f.path).as_posix(), f.code, f.message)
            for f in findings
        }
    )
    doc = {
        "version": 1,
        "tool": _TOOL_NAME,
        "findings": [
            {"path": p, "code": c, "message": m} for p, c, m in entries
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: Sequence[Finding], baseline: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, grandfathered) against baseline fingerprints."""
    new: List[Finding] = []
    old: List[Finding] = []
    for f in findings:
        (old if f.fingerprint in baseline else new).append(f)
    return new, old
