"""Write-set inference for slab kernels (the dataflow half of R006).

A slab kernel has the signature ``fn(arrays, params, lo, hi)`` and is
dispatched by reference (:class:`~repro.parallel.api.SlabTask`); its
``writes=(...)`` declaration is load-bearing — the shm backend
snapshots exactly those planted arrays for transactional crash
rollback, and :class:`~repro.parallel.checked.CheckedEngine` scopes
its runtime cross-check to them.  This module infers, from the AST
alone, which planted catalog arrays a kernel actually stores into:

- direct subscript stores: ``arrays["k"][lo:hi] = ...`` and stores
  through local views (``d = arrays["k"]; d[v] = ...``), including
  view chains (``w = arrays["k"][:, j]``) and in-place ``d[...] op=``;
- numpy in-place forms: ``out=`` keyword arguments, ``ufunc.at``,
  ``np.copyto(dst, ...)``, and mutating ndarray methods
  (``fill``/``sort``/``put``/...);
- one level of helper-call propagation: a helper receiving the whole
  catalog is analysed as a nested slab kernel; a helper receiving a
  mapped view contributes a write when it mutates that parameter.

Inference is a heuristic, not an escape analysis: aliases created
through opaque calls (``np.asarray(d)``) are dropped, and a call to an
*unresolvable* non-numpy callee that receives a mapped array marks the
result *incomplete*.  Incomplete inference suppresses the
declared-but-never-written warning (we cannot prove "never") but keeps
every positively inferred write — undeclared-write errors stay sound
with respect to what the pass can see.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.symbols import FunctionNode, ModuleInfo, ProjectContext

__all__ = [
    "WriteSet",
    "infer_slab_writes",
    "infer_ref_writes",
    "slab_positional_params",
]

#: Sentinel catalog key for a store whose slot name cannot be folded
#: to a string literal (``arrays[params["target"]]`` and friends).
_DYNAMIC = "<dynamic>"

#: ndarray methods that mutate their receiver in place.
_MUTATING_ARRAY_METHODS = frozenset(
    {"fill", "sort", "put", "partition", "itemset", "resize", "setfield",
     "byteswap"}
)

#: Builtins assumed pure when called with mapped arrays.
_PURE_BUILTINS = frozenset(
    {"abs", "bool", "enumerate", "float", "int", "len", "list", "max",
     "min", "print", "range", "repr", "reversed", "set", "sorted", "str",
     "sum", "tuple", "zip"}
)


@dataclass(frozen=True)
class WriteSet:
    """Inferred writes plus whether the inference saw everything.

    ``complete=False`` means some store or call could not be analysed;
    ``writes`` is still a lower bound on the kernel's true write-set.
    """

    writes: FrozenSet[str]
    complete: bool


def slab_positional_params(fn: FunctionNode) -> List[str]:
    """Positional parameter names of a kernel def."""
    return [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]


class _FnAnalysis:
    """One function-body pass: ordered statement walk with a
    var -> catalog-key environment."""

    def __init__(
        self,
        project: ProjectContext,
        mi: ModuleInfo,
        fn: FunctionNode,
        catalog: Optional[str],
        env: Dict[str, str],
        depth: int,
    ) -> None:
        self.project = project
        self.mi = mi
        self.fn = fn
        self.catalog = catalog
        self.env = dict(env)
        self.depth = depth
        self.writes: Set[str] = set()
        self.complete = True
        self.local_imports: Dict[str, Tuple[str, str]] = {}
        self.np_aliases: Set[str] = {
            alias
            for alias, module in mi.import_modules.items()
            if module == "numpy"
        }

    def run(self) -> WriteSet:
        self._stmts(self.fn.body)
        return WriteSet(frozenset(self.writes), self.complete)

    # -- environment ----------------------------------------------------
    def _is_catalog(self, node: ast.AST) -> bool:
        return (
            self.catalog is not None
            and isinstance(node, ast.Name)
            and node.id == self.catalog
        )

    def _subscript_key(self, sub: ast.Subscript) -> str:
        key = self.project.resolve_str(self.mi, sub.slice)
        return key if key is not None else _DYNAMIC

    def _key_of(self, expr: ast.expr) -> Optional[str]:
        """Catalog key ``expr`` aliases, peeling view-preserving layers
        (subscripts and attributes like ``.T``); ``None`` if unmapped."""
        node: ast.expr = expr
        while True:
            if isinstance(node, ast.Subscript):
                if self._is_catalog(node.value):
                    return self._subscript_key(node)
                node = node.value
            elif isinstance(node, ast.Attribute):
                node = node.value
            elif isinstance(node, ast.Starred):
                node = node.value
            else:
                break
        if isinstance(node, ast.Name) and not self._is_catalog(node):
            return self.env.get(node.id)
        return None

    def _add_write(self, key: Optional[str]) -> None:
        if key is None:
            return
        if key == _DYNAMIC:
            self.complete = False
        else:
            self.writes.add(key)

    # -- statements -----------------------------------------------------
    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested defs: calls to them resolve to nothing
        if isinstance(stmt, ast.ImportFrom):
            if stmt.level == 0 and stmt.module:
                for alias in stmt.names:
                    self.local_imports[alias.asname or alias.name] = (
                        stmt.module,
                        alias.name,
                    )
            return
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "numpy":
                    self.np_aliases.add(alias.asname or "numpy")
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for target in stmt.targets:
                self._target(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
            self._target(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            if isinstance(stmt.target, ast.Subscript):
                self._record_store(stmt.target)
            elif isinstance(stmt.target, ast.Name):
                # in-place operator on a mapped view mutates the array
                self._add_write(self.env.get(stmt.target.id))
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self._unbind(stmt.target)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._unbind(item.optional_vars)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        # Expr / Return / Raise / Assert / Delete / ...: scan any child
        # expressions for mutating calls
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    def _unbind(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._unbind(elt)
        elif isinstance(target, ast.Starred):
            self._unbind(target.value)

    def _target(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            key = self._key_of(value) if value is not None else None
            if key is not None:
                self.env[target.id] = key
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Subscript):
            self._record_store(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, None)
        elif isinstance(target, ast.Starred):
            self._target(target.value, None)
        # Attribute targets (obj.x = ...) do not touch planted arrays

    def _record_store(self, sub: ast.Subscript) -> None:
        if self._is_catalog(sub.value):
            # ``arrays["k"] = ...`` rebinds the catalog slot itself
            self._add_write(self._subscript_key(sub))
            return
        self._add_write(self._key_of(sub.value))

    # -- expressions / calls --------------------------------------------
    def _scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node)

    def _root_name(self, node: ast.expr) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
            node = getattr(node, "value", getattr(node, "func", node))
        return node.id if isinstance(node, ast.Name) else None

    def _call(self, call: ast.Call) -> None:
        for kw in call.keywords:
            if kw.arg == "out":
                outs = (
                    kw.value.elts
                    if isinstance(kw.value, (ast.Tuple, ast.List))
                    else [kw.value]
                )
                for out in outs:
                    self._add_write(self._key_of(out))
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "at" and len(call.args) >= 2:
                # ufunc.at(arr, idx[, vals]) mutates arr in place
                self._add_write(self._key_of(call.args[0]))
                return
            if func.attr in _MUTATING_ARRAY_METHODS:
                self._add_write(self._key_of(func.value))
                return
            if func.attr == "copyto" and call.args:
                root = self._root_name(func.value)
                if root in self.np_aliases:
                    self._add_write(self._key_of(call.args[0]))
                    return
            # non-mutating method on a mapped array: pure
            if self._key_of(func.value) is not None:
                return
        resolved = (
            self.project.resolve_call(self.mi, func, self.local_imports)
            if self.depth > 0
            else None
        )
        if resolved is not None:
            self._helper_call(call, *resolved)
            return
        # unknown callee: numpy namespace calls and builtins are
        # assumed pure; anything else fed a mapped array (or the whole
        # catalog) makes the inference incomplete
        root = self._root_name(func)
        if root in self.np_aliases:
            return
        if isinstance(func, ast.Name) and func.id in _PURE_BUILTINS:
            return
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if self._is_catalog(arg) or self._key_of(arg) is not None:
                self.complete = False
                return

    def _helper_call(
        self, call: ast.Call, helper_mi: ModuleInfo, helper_fn: FunctionNode
    ) -> None:
        params = slab_positional_params(helper_fn)
        mutated: Optional[WriteSet] = None  # lazily computed param pass
        bound: List[Tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                self.complete = False
                continue
            bound.append((params[i], arg))
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs
                self.complete = False
            elif kw.arg in params:
                bound.append((kw.arg, kw.value))
        for param, arg in bound:
            if self._is_catalog(arg):
                # whole catalog handed down: analyse the helper as a
                # nested slab kernel rooted at that parameter
                sub = _FnAnalysis(
                    self.project, helper_mi, helper_fn,
                    catalog=param, env={}, depth=self.depth - 1,
                ).run()
                self.writes.update(sub.writes)
                self.complete = self.complete and sub.complete
                continue
            key = self._key_of(arg)
            if key is None:
                continue
            if mutated is None:
                mutated = _FnAnalysis(
                    self.project, helper_mi, helper_fn,
                    catalog=None,
                    env={p: f"<param:{p}>" for p in params},
                    depth=self.depth - 1,
                ).run()
            if f"<param:{param}>" in mutated.writes:
                self._add_write(key)
            self.complete = self.complete and mutated.complete


def infer_slab_writes(
    project: ProjectContext,
    mi: ModuleInfo,
    fn: FunctionNode,
    depth: int = 1,
) -> WriteSet:
    """Infer the planted catalog arrays ``fn`` stores into.

    ``depth`` bounds helper-call propagation: 1 (the default and the
    contract R006 documents) analyses helpers called directly from the
    kernel body but not *their* callees.
    """
    params = slab_positional_params(fn)
    if len(params) < 4:
        # not slab-shaped: nothing to say, and nothing provable
        return WriteSet(frozenset(), False)
    return _FnAnalysis(
        project, mi, fn, catalog=params[0], env={}, depth=depth
    ).run()


# -- runtime entry point (CheckedEngine cross-check) --------------------

_REF_CACHE: Dict[str, Optional[WriteSet]] = {}


def _spec_origin(name: str) -> Optional[str]:
    """Locate a module's source file without importing it; restricted
    to this repository's namespaces so the lazy loader never parses
    site-packages."""
    if not name.split(".")[0] in {"repro", "tests", "benchmarks", "examples"}:
        return None
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is not None and spec.origin and spec.origin.endswith(".py"):
        return spec.origin
    return None


def infer_ref_writes(ref: str) -> Optional[WriteSet]:
    """Infer the write-set of a ``"module:qualname"`` kernel reference.

    Used by :class:`~repro.parallel.checked.CheckedEngine` to
    cross-check a :class:`SlabTask`'s declaration at dispatch time.
    Returns ``None`` when the reference cannot be located or parsed —
    the runtime check degrades to observation-only, never to a crash.
    """
    if ref in _REF_CACHE:
        return _REF_CACHE[ref]
    result: Optional[WriteSet] = None
    project = ProjectContext()
    project.loader = _spec_origin
    status, mi, fn = project.resolve_ref(ref)
    if status == "ok" and mi is not None and fn is not None:
        result = infer_slab_writes(project, mi, fn, depth=1)
    _REF_CACHE[ref] = result
    return result
