"""The syntactic rule set: R001-R005, each encoding one design
invariant, plus the R000 registry entry.

Every rule carries a stable code, a one-line summary, and a one-line
fix hint; ``docs/INVARIANTS.md`` maps each to the paper section it
protects.  Rules are heuristic AST checks, not a type system — they
aim for zero false negatives on the bug classes that have actually
bitten shared-memory SSSP codebases, at the cost of requiring an
explicit ``# repro: noqa(R00x)`` for the rare intentional exception.
The interprocedural rules (R006-R008) live in
:mod:`repro.analysis.deep_rules` and join the registry at the bottom
of this module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.runner import (
    _R000_CODE,
    _R000_HINT,
    _R000_SUMMARY,
    FileContext,
    Finding,
)

__all__ = ["Rule", "ALL_RULES"]


class Rule:
    """Base class: subclasses set ``code``/``summary``/``hint`` and
    implement ``applies`` (path scoping) and ``check``."""

    code: str = "R000"
    summary: str = ""
    hint: str = ""

    def applies(self, ctx: FileContext) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.hint,
        )

    def warning(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Like :meth:`finding` but advisory (reported, baselined, and
        counted, yet rendered/uploaded at warning level)."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.hint,
            severity="warning",
        )


# ----------------------------------------------------------------- R000
class RuleR000(Rule):
    """Stale-suppression detection.

    Implemented inside the runner (which owns comment and suppression
    bookkeeping — a rule cannot know what *other* rules' findings a
    comment suppressed); this class is the registry entry that gives
    R000 a stable code, summary, and ``--list-rules`` row.
    """

    code = _R000_CODE
    summary = _R000_SUMMARY
    hint = _R000_HINT

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # the runner emits R000 after suppression


def _in_repro(ctx: FileContext) -> bool:
    return ctx.repro_rel is not None and not ctx.repro_rel.startswith(
        "analysis/"
    )


def _root_name(node: ast.AST) -> Optional[str]:
    """Peel ``a.b[c].d`` down to the base ``Name`` (``a``), if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------- R001
#: Methods that mutate their receiver in place on the builtin
#: containers and ndarrays the kernels share across tasks.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem",
        "clear", "sort", "reverse", "add", "discard", "update",
        "setdefault", "fill", "put", "itemset", "resize", "partition",
    }
)

#: ``call.func`` attribute names that take a task function, mapped to
#: the positional index of that function argument.
_SUPERSTEP_METHODS = {"parallel_for": 1, "map_reduce": 1}
_SUPERSTEP_FUNCTIONS = {"parallel_for_slabs": 2}


class RuleR001(Rule):
    """Task functions must not mutate closed-over shared mutables
    unless the writes are registered with an OwnershipTracker."""

    code = "R001"
    summary = (
        "superstep task mutates closed-over shared state without "
        "ownership tracking"
    )
    hint = (
        "register writes via OwnershipTracker.record_write (or accept "
        "a tracker from the engine) so the single-writer-per-vertex "
        "invariant stays checkable; return proposals instead if the "
        "merge is sequential"
    )

    def applies(self, ctx: FileContext) -> bool:
        return _in_repro(ctx) or ctx.in_tests

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_arg = self._task_argument(node)
            if fn_arg is None:
                continue
            task = self._resolve_task(fn_arg, node, ctx)
            if task is None:
                continue
            yield from self._check_task(task, ctx)

    # -- locating the task function -----------------------------------
    def _task_argument(self, call: ast.Call) -> Optional[ast.expr]:
        idx: Optional[int] = None
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SUPERSTEP_METHODS:
            idx = _SUPERSTEP_METHODS[func.attr]
        elif isinstance(func, ast.Name) and func.id in _SUPERSTEP_FUNCTIONS:
            idx = _SUPERSTEP_FUNCTIONS[func.id]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _SUPERSTEP_FUNCTIONS
        ):
            idx = _SUPERSTEP_FUNCTIONS[func.attr]
        if idx is None:
            return None
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        if len(call.args) > idx:
            return call.args[idx]
        return None

    def _resolve_task(
        self, fn_arg: ast.expr, call: ast.Call, ctx: FileContext
    ) -> Optional[ast.AST]:
        if isinstance(fn_arg, ast.Lambda):
            return fn_arg
        if not isinstance(fn_arg, ast.Name):
            return None
        # nearest enclosing scope that defines ``name`` as a def or a
        # ``name = lambda ...`` binding; parameters and other bindings
        # are opaque (interprocedural analysis is out of scope)
        name = fn_arg.id
        for scope in [call, *ctx.ancestors(call)]:
            body = getattr(scope, "body", None)
            if not isinstance(body, list):
                continue  # e.g. a Lambda ancestor: body is an expression
            for stmt in body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == name
                ):
                    return stmt
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in stmt.targets
                ):
                    if isinstance(stmt.value, ast.Lambda):
                        return stmt.value
        return None

    # -- analysing the task function body ------------------------------
    def _bound_names(self, task: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        args = task.args
        for a in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            bound.add(a.arg)
        for node in ast.walk(task):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
        for node in ast.walk(task):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                # declared shared on purpose -> *not* task-local
                bound.difference_update(node.names)
        return bound

    def _is_tracked(self, task: ast.AST) -> bool:
        for node in ast.walk(task):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record_write"
            ):
                return True
        return False

    def _check_task(
        self, task: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        if self._is_tracked(task):
            return
        bound = self._bound_names(task)

        def shared(expr: ast.AST) -> Optional[str]:
            root = _root_name(expr)
            if root is not None and root not in bound:
                return root
            return None

        for node in ast.walk(task):
            if isinstance(node, ast.Assign):
                targets: Sequence[ast.expr] = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    name = shared(func.value)
                    if name is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"task calls {name}.(...).{func.attr}() on "
                            f"closed-over {name!r} inside a superstep "
                            "without ownership tracking",
                        )
                continue
            else:
                continue
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                name = shared(target)
                if name is not None:
                    kind = (
                        "element" if isinstance(target, ast.Subscript)
                        else "attribute"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"task writes an {kind} of closed-over {name!r} "
                        "inside a superstep without ownership tracking",
                    )


# ----------------------------------------------------------------- R002
#: numpy.random attributes that *construct* explicit, seedable RNG
#: objects -- allowed; everything else on the module is hidden global
#: state.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)
_STDLIB_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})


class RuleR002(Rule):
    """No unseeded global RNG inside src/repro."""

    code = "R002"
    summary = "global RNG state used instead of an explicit Generator"
    hint = (
        "thread a seeded numpy.random.Generator through as a "
        "parameter (rng=np.random.default_rng(seed)); determinism is "
        "a repo ground rule"
    )

    def applies(self, ctx: FileContext) -> bool:
        return _in_repro(ctx)

    def _numpy_aliases(self, ctx: FileContext) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases

    def _random_aliases(self, ctx: FileContext) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_aliases = self._numpy_aliases(ctx)
        rand_aliases = self._random_aliases(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _STDLIB_RANDOM_CONSTRUCTORS:
                            yield self.finding(
                                ctx,
                                node,
                                f"'from random import {alias.name}' pulls "
                                "in global RNG state",
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_CONSTRUCTORS:
                            yield self.finding(
                                ctx,
                                node,
                                "'from numpy.random import "
                                f"{alias.name}' pulls in global RNG state",
                            )
            elif isinstance(node, ast.Attribute):
                parent = ctx.parent(node)
                # random.<fn>   (stdlib module alias)
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in rand_aliases
                    and node.attr not in _STDLIB_RANDOM_CONSTRUCTORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"use of global 'random.{node.attr}'",
                    )
                # np.random.<fn>  (module-level legacy API)
                elif (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "random"
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id in np_aliases
                    and node.attr not in _NP_RANDOM_CONSTRUCTORS
                    # ``np.random`` itself (no further attr) is fine as
                    # a namespace reference for an allowed constructor
                    and not (
                        isinstance(parent, ast.Attribute)
                    )
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"use of global 'np.random.{node.attr}'",
                    )


# ----------------------------------------------------------------- R003
class RuleR003(Rule):
    """No bare/overbroad except, no silent exception swallowing."""

    code = "R003"
    summary = "bare/overbroad except or silently swallowed exception"
    hint = (
        "catch the narrowest ReproError subclass that applies and "
        "handle or re-raise it; failures must stay loud"
    )

    def applies(self, ctx: FileContext) -> bool:
        return _in_repro(ctx)

    def _names(self, type_node: Optional[ast.expr]) -> List[str]:
        if type_node is None:
            return []
        nodes = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        out: List[str] = []
        for n in nodes:
            if isinstance(n, ast.Name):
                out.append(n.id)
            elif isinstance(n, ast.Attribute):
                out.append(n.attr)
        return out

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        body = [
            stmt
            for stmt in handler.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
        ]
        return all(isinstance(stmt, ast.Pass) for stmt in body) or not body

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(n, ast.Raise) for n in ast.walk(handler)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:' catches everything"
                )
                continue
            broad = {"Exception", "BaseException"}.intersection(
                self._names(node.type)
            )
            if broad and not self._reraises(node):
                yield self.finding(
                    ctx,
                    node,
                    f"overbroad 'except {sorted(broad)[0]}' without "
                    "re-raise hides unrelated failures",
                )
            elif self._swallows(node):
                yield self.finding(
                    ctx,
                    node,
                    "exception handler silently swallows the error",
                )


# ----------------------------------------------------------------- R004
class RuleR004(Rule):
    """Public functions in core/, parallel/, graph/ must be fully
    type-annotated."""

    code = "R004"
    summary = "public function missing type annotations"
    hint = (
        "annotate every parameter and the return type; these modules "
        "are the typed core the rest of the repo builds on "
        "(mypy --strict runs over them in CI)"
    )

    _SCOPES = ("core/", "parallel/", "graph/")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.repro_rel is not None and ctx.repro_rel.startswith(
            self._SCOPES
        )

    def _is_public_context(self, node: ast.AST, ctx: FileContext) -> bool:
        """Module-level function, or method of a public class; nested
        functions and private namespaces are exempt."""
        chain = list(ctx.ancestors(node))
        for anc in chain:
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(anc, ast.ClassDef) and anc.name.startswith("_"):
                return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            if name.startswith("_") and not (
                name.startswith("__") and name.endswith("__")
            ):
                continue
            if not self._is_public_context(node, ctx):
                continue
            in_class = isinstance(ctx.parent(node), ast.ClassDef)
            args = node.args
            named = [*args.posonlyargs, *args.args]
            if in_class and named and named[0].arg in ("self", "cls"):
                named = named[1:]
            missing = [
                a.arg
                for a in [*named, *args.kwonlyargs]
                if a.annotation is None
            ]
            missing += [
                f"*{a.arg}"
                for a in [args.vararg]
                if a is not None and a.annotation is None
            ]
            missing += [
                f"**{a.arg}"
                for a in [args.kwarg]
                if a is not None and a.annotation is None
            ]
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"public function '{name}' has unannotated "
                    f"parameter(s): {', '.join(missing)}",
                )
            if node.returns is None:
                yield self.finding(
                    ctx,
                    node,
                    f"public function '{name}' has no return annotation",
                )


# ----------------------------------------------------------------- R005
#: ``time``-module clock functions R005 polices.  ``time.sleep`` and the
#: struct/formatting helpers are fine anywhere; every function that
#: *reads a clock* must go through :mod:`repro.obs.clock` (tracer spans,
#: ``Span.elapsed``) or an engine's virtual clock instead.
_R005_CLOCKS: Set[str] = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}


class RuleR005(Rule):
    """Clock reads stay inside ``repro/obs`` and ``repro/bench``."""

    code = "R005"
    summary = "clock read outside repro/obs and the bench harness"
    hint = (
        "time algorithm phases with repro.obs tracer spans "
        "(Span.elapsed) or the simulated engine's virtual clock; "
        "direct time.* clock reads live only in repro/obs (the "
        "sanctioned clock module) and repro/bench"
    )

    def applies(self, ctx: FileContext) -> bool:
        return _in_repro(ctx) and not ctx.repro_rel.startswith(
            ("bench/", "obs/")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases: Set[str] = set()
        clock_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _R005_CLOCKS:
                        clock_aliases.add(alias.asname or alias.name)
                        yield self.finding(
                            ctx,
                            node,
                            f"'from time import {alias.name}' imports "
                            "a clock",
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _R005_CLOCKS
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.finding(
                    ctx, node, f"call to time.{func.attr}()"
                )
            elif (
                isinstance(func, ast.Name)
                and func.id in clock_aliases
            ):
                yield self.finding(
                    ctx, node, f"call to {func.id}() clock"
                )


# The interprocedural rules import ``Rule`` from this module, so this
# import must sit below the class definitions (cycle bottoms out here).
from repro.analysis.deep_rules import RuleR006, RuleR007, RuleR008  # noqa: E402

ALL_RULES: Tuple[Rule, ...] = (
    RuleR000(),
    RuleR001(),
    RuleR002(),
    RuleR003(),
    RuleR004(),
    RuleR005(),
    RuleR006(),
    RuleR007(),
    RuleR008(),
)
