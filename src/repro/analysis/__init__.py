"""Repo-specific static analysis: the concurrency-invariant linter.

The paper's correctness argument is a *discipline*, not a mechanism:
grouping inserted edges by destination vertex means each vertex is
written by exactly one task per superstep, so the ``parallel_for``
loops of Algorithms 1-2 are race-free without locks (§3.1).  The
dynamic side of that argument is :class:`~repro.parallel.atomics.
OwnershipTracker`; this package is the static side — an AST linter
that machine-checks the invariants every PR must preserve:

=====  ==============================================================
R001   task functions passed to ``parallel_for`` / ``map_reduce`` /
       ``parallel_for_slabs`` must not mutate closed-over shared
       mutables unless the writes are registered with an
       :class:`OwnershipTracker` (``record_write``)
R002   no unseeded global RNG (``random.*`` / ``np.random.*``
       module-level) — randomness flows through explicit
       ``numpy.random.Generator`` parameters
R003   no bare/overbroad ``except`` and no silent exception
       swallowing
R004   public functions in ``core/``, ``parallel/``, and ``graph/``
       are fully type-annotated
R005   no wall-clock ``time.time`` outside the bench harness (the
       simulated engine's virtual clock is the only sanctioned
       notion of time elsewhere)
=====  ==============================================================

Run it as ``python -m repro.analysis src tests``.  Suppress a finding
on one line with ``# repro: noqa(R00x)`` (or a blanket
``# repro: noqa``) — reserved for documented intentional cases.

See ``docs/INVARIANTS.md`` for the mapping from each rule to the
paper section / design invariant it enforces.
"""

from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.runner import (
    FileContext,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULES",
    "Rule",
    "FileContext",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
]
