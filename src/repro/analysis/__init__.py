"""Repo-specific static analysis: the concurrency-invariant analyzer.

The paper's correctness argument is a *discipline*, not a mechanism:
grouping inserted edges by destination vertex means each vertex is
written by exactly one task per superstep, so the ``parallel_for``
loops of Algorithms 1-2 are race-free without locks (§3.1).  The
dynamic side of that argument is :class:`~repro.parallel.atomics.
OwnershipTracker`; this package is the static side — a multi-pass
analyzer (project-wide symbol table, then per-rule visitors) that
machine-checks the invariants every PR must preserve:

=====  ==============================================================
R000   a ``# repro: noqa`` comment that suppresses nothing is stale
       and must be deleted (``--no-stale-noqa`` opts out)
R001   task functions passed to ``parallel_for`` / ``map_reduce`` /
       ``parallel_for_slabs`` must not mutate closed-over shared
       mutables unless the writes are registered with an
       :class:`OwnershipTracker` (``record_write``)
R002   no unseeded global RNG (``random.*`` / ``np.random.*``
       module-level) — randomness flows through explicit
       ``numpy.random.Generator`` parameters
R003   no bare/overbroad ``except`` and no silent exception
       swallowing
R004   public functions in ``core/``, ``parallel/``, and ``graph/``
       are fully type-annotated
R005   no wall-clock ``time.time`` outside the bench harness (the
       simulated engine's virtual clock is the only sanctioned
       notion of time elsewhere)
R006   a slab kernel's inferred write-set (direct stores, numpy
       in-place ops, one helper-call level) must match its
       ``SlabTask(writes=...)`` declaration — crash rollback and
       ownership reporting protect exactly the declared set
R007   callables handed to process-backed engines must be importable
       module-level functions (no lambdas, closures, bound methods);
       ``SlabTask.ref`` strings must resolve
R008   the partitioned boundary exchange publishes distances only
       under a strict-improvement comparison and never writes
       non-exchange (ghost-owned) state
=====  ==============================================================

Run it as ``python -m repro.analysis src tests benchmarks examples``.
Machine-readable output: ``--format {text,json,sarif,github}``; CI
uploads the SARIF artifact.  ``--jobs N`` fans the per-file work over
a process pool (output is byte-identical to serial).  Findings absent
from the committed baseline (``analysis-baseline.json``; empty by
policy) fail the run.  Suppress a finding on one line with
``# repro: noqa(R00x)`` (or a blanket ``# repro: noqa``) — reserved
for documented intentional cases, and R000 reports any suppression
that no longer fires.

See ``docs/INVARIANTS.md`` for the mapping from each rule to the
paper section / design invariant it enforces.
"""

from repro.analysis.dataflow import WriteSet, infer_ref_writes, infer_slab_writes
from repro.analysis.output import (
    DEFAULT_BASELINE,
    load_baseline,
    render_findings,
    render_github,
    render_json,
    render_sarif,
    render_text,
    save_baseline,
    split_baselined,
    validate_sarif,
)
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.runner import (
    FileContext,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.symbols import (
    ModuleInfo,
    ProjectContext,
    build_project,
    module_name_for_path,
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "FileContext",
    "Finding",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "WriteSet",
    "build_project",
    "infer_ref_writes",
    "infer_slab_writes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "render_findings",
    "render_github",
    "render_json",
    "render_sarif",
    "render_text",
    "save_baseline",
    "split_baselined",
    "validate_sarif",
]
