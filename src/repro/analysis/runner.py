"""Linter driver: file discovery, rule dispatch, noqa suppression.

The driver is deliberately dependency-free (stdlib ``ast`` + ``re``)
so the gate runs anywhere the package imports — CI, pre-commit, or a
contributor's bare virtualenv — with no tooling to install.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "FileContext", "lint_source", "lint_file", "lint_paths"]

#: Line-level suppression: ``# repro: noqa`` (blanket) or
#: ``# repro: noqa(R001)`` / ``# repro: noqa(R001, R003)`` (targeted).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\(\s*([R0-9,\s]*)\))?", re.IGNORECASE)

#: Directories never walked: the fixture corpus *must* contain
#: violations (it proves each rule fires), so it is linted only
#: explicitly by the test suite via :func:`lint_file`.
_SKIP_DIR_PARTS = frozenset({"fixtures", "__pycache__", ".git", ".hypothesis"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: CODE msg`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message}  [fix: {self.hint}]"
        )


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.AST
    lines: List[str]
    #: Path of the file relative to the ``repro`` package root, e.g.
    #: ``core/kernels.py``; ``None`` when the file is outside it.
    repro_rel: Optional[str]
    #: True when the file lives under a ``tests/`` directory.
    in_tests: bool
    #: Child -> parent links for every AST node (``ast`` has none).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        parts = Path(path).parts
        repro_rel: Optional[str] = None
        if "repro" in parts:
            idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            tail = parts[idx + 1 :]
            if tail:
                repro_rel = "/".join(tail)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            repro_rel=repro_rel,
            in_tests="tests" in parts,
            parents=parents,
        )

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)


def _suppressed_codes(line_text: str) -> Optional[Set[str]]:
    """Codes suppressed on this physical line.

    Returns ``None`` when there is no noqa comment, an empty set for a
    blanket ``# repro: noqa``, and a set of codes for the targeted form.
    """
    m = _NOQA_RE.search(line_text)
    if m is None:
        return None
    raw = m.group(1)
    if raw is None:
        return set()
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


def _apply_noqa(findings: Iterable[Finding], lines: Sequence[str]) -> List[Finding]:
    kept: List[Finding] = []
    for f in findings:
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        codes = _suppressed_codes(text)
        if codes is None:
            kept.append(f)
        elif codes and f.code.upper() not in codes:
            kept.append(f)
        # blanket noqa (empty set) or matching code: suppressed
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Set[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint one source string and return surviving findings.

    ``select`` restricts to a set of rule codes; ``respect_scope=False``
    runs every selected rule regardless of the file's location (the
    fixture-corpus tests use this so fixtures can live under
    ``tests/`` while exercising src-only rules).
    """
    from repro.analysis.rules import ALL_RULES

    ctx = FileContext.parse(path, source)
    findings: List[Finding] = []
    for rule in ALL_RULES:
        if select is not None and rule.code not in select:
            continue
        if respect_scope and not rule.applies(ctx):
            continue
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return _apply_noqa(findings, ctx.lines)


def lint_file(
    path: str,
    select: Optional[Set[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source, path=str(path), select=select, respect_scope=respect_scope
    )


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for p in sorted(root.rglob("*.py")):
        if _SKIP_DIR_PARTS.intersection(p.parts):
            continue
        yield p


def lint_paths(
    paths: Sequence[str], select: Optional[Set[str]] = None
) -> Tuple[List[Finding], List[str]]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are files that
    failed to parse (reported, never silently skipped).
    """
    findings: List[Finding] = []
    errors: List[str] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            errors.append(f"{raw}: no such file or directory")
            continue
        for p in _iter_python_files(root):
            try:
                findings.extend(lint_file(str(p), select=select))
            except SyntaxError as exc:
                errors.append(f"{p}: syntax error: {exc.msg} (line {exc.lineno})")
    return findings, errors
