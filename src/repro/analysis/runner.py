"""Linter driver: file discovery, rule dispatch, noqa suppression.

The driver is deliberately dependency-free (stdlib ``ast`` +
``tokenize``) so the gate runs anywhere the package imports — CI,
pre-commit, or a contributor's bare virtualenv — with no tooling to
install.

Two pieces of machinery live here rather than in a rule class:

- **Suppression bookkeeping.**  Comments are located with
  ``tokenize`` (never by regex over raw lines, which would trip on
  noqa examples inside string literals) and a suppression must be
  *anchored* at the start of its comment.  Every application is
  recorded, which is what makes stale-suppression detection (R000)
  possible: a ``# repro: noqa`` that suppressed nothing in a run where
  all rules fired is dead weight and gets reported.
- **The project pass.**  :func:`lint_paths` builds one
  :class:`~repro.analysis.symbols.ProjectContext` over every file in
  the run before any rule executes, so the interprocedural rules
  (R006-R008) can resolve kernel references across files.  With
  ``jobs > 1`` the per-file work fans out over a process pool; results
  are merged and sorted by :attr:`Finding.sort_key`, so parallel runs
  are byte-identical to serial ones.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.symbols import ProjectContext, build_project

__all__ = ["Finding", "FileContext", "lint_source", "lint_file", "lint_paths"]

#: Line-level suppression, anchored at the start of a comment token:
#: ``# repro: noqa`` (blanket) or ``# repro: noqa(R001)`` /
#: ``# repro: noqa(R001, R003)`` (targeted).
_NOQA_RE = re.compile(r"^#\s*repro:\s*noqa(?:\(\s*([R0-9,\s]*)\))?", re.IGNORECASE)

#: Directories never walked: the fixture corpus *must* contain
#: violations (it proves each rule fires), so it is linted only
#: explicitly by the test suite via :func:`lint_file`.
_SKIP_DIR_PARTS = frozenset({"fixtures", "__pycache__", ".git", ".hypothesis"})

_R000_CODE = "R000"
_R000_SUMMARY = "unused '# repro: noqa' suppression matches no finding"
_R000_HINT = (
    "delete the stale suppression comment (or run with --no-stale-noqa "
    "while migrating)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Frozen, field-ordered, and built only from primitives, so findings
    pickle cleanly across the ``--jobs`` worker pool and sort stably
    for baseline diffs (dataclass ordering follows field order:
    path, line, col, code, ...).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str
    severity: str = "error"

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Deterministic report order: (path, line, col, code, message)."""
        return (self.path, self.line, self.col, self.code, self.message)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file
        (surviving unrelated edits above the finding)."""
        return f"{Path(self.path).as_posix()}::{self.code}::{self.message}"

    def format(self) -> str:
        """Render in the conventional ``path:line:col: CODE msg`` shape."""
        sev = "" if self.severity == "error" else f" [{self.severity}]"
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code}{sev} "
            f"{self.message}  [fix: {self.hint}]"
        )


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.AST
    lines: List[str]
    #: Path of the file relative to the ``repro`` package root, e.g.
    #: ``core/kernels.py``; ``None`` when the file is outside it.
    repro_rel: Optional[str]
    #: True when the file lives under a ``tests/`` directory.
    in_tests: bool
    #: Child -> parent links for every AST node (``ast`` has none).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: Comment tokens by line: ``line -> (col, text)``.
    comments: Dict[int, Tuple[int, str]] = field(default_factory=dict)
    #: The run-wide symbol table (attached by the lint entry points).
    project: Optional[ProjectContext] = None

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        comments: Dict[int, Tuple[int, str]] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = (tok.start[1], tok.string)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass  # the ast parse above already vouched for the file
        parts = Path(path).parts
        repro_rel: Optional[str] = None
        if "repro" in parts:
            idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            tail = parts[idx + 1 :]
            if tail:
                repro_rel = "/".join(tail)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            repro_rel=repro_rel,
            in_tests="tests" in parts,
            parents=parents,
            comments=comments,
        )

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)


def _suppressed_codes(comment: str) -> Optional[Set[str]]:
    """Codes suppressed by this comment token.

    Returns ``None`` when the comment is not a suppression, an empty
    set for a blanket ``# repro: noqa``, and a set of codes for the
    targeted form.  The pattern must be anchored at the start of the
    comment, so prose *about* noqa comments never suppresses anything.
    """
    m = _NOQA_RE.match(comment)
    if m is None:
        return None
    raw = m.group(1)
    if raw is None:
        return set()
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


def _apply_noqa(
    findings: Iterable[Finding], ctx: FileContext
) -> Tuple[List[Finding], Set[int]]:
    """Drop suppressed findings; return survivors plus the set of
    comment lines whose suppression actually fired (for R000)."""
    kept: List[Finding] = []
    used: Set[int] = set()
    for f in findings:
        entry = ctx.comments.get(f.line)
        codes = _suppressed_codes(entry[1]) if entry is not None else None
        if codes is None:
            kept.append(f)
        elif codes and f.code.upper() not in codes:
            kept.append(f)
        else:
            # blanket noqa (empty set) or matching code: suppressed
            used.add(f.line)
    return kept, used


def _stale_findings(ctx: FileContext, used: Set[int]) -> List[Finding]:
    """R000: every anchored noqa comment that suppressed nothing."""
    out: List[Finding] = []
    for line in sorted(ctx.comments):
        col, text = ctx.comments[line]
        m = _NOQA_RE.match(text)
        if m is None or line in used:
            continue
        out.append(
            Finding(
                path=ctx.path,
                line=line,
                col=col + 1,
                code=_R000_CODE,
                message=f"suppression {m.group(0)!r} matches no finding",
                hint=_R000_HINT,
                severity="warning",
            )
        )
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Set[str]] = None,
    respect_scope: bool = True,
    project: Optional[ProjectContext] = None,
    stale_noqa: bool = True,
) -> List[Finding]:
    """Lint one source string and return surviving findings.

    ``select`` restricts to a set of rule codes; ``respect_scope=False``
    runs every selected rule regardless of the file's location (the
    fixture-corpus tests use this so fixtures can live under
    ``tests/`` while exercising src-only rules).  ``project`` is the
    run-wide symbol table; a single-file table is built when omitted.
    ``stale_noqa`` controls R000 — meaningful only when all rules run
    (a narrowed ``select`` without R000 skips staleness, since unused
    suppressions cannot be told apart from unselected ones).
    """
    from repro.analysis.rules import ALL_RULES

    ctx = FileContext.parse(path, source)
    if project is None:
        project = ProjectContext()
    if project.module_for_path(path) is None and isinstance(
        ctx.tree, ast.Module
    ):
        project.add_source(path, source, tree=ctx.tree)
    ctx.project = project

    want_stale = stale_noqa and (select is None or _R000_CODE in select)
    raw: List[Finding] = []
    for rule in ALL_RULES:
        # staleness needs the full raw finding set, so a select that
        # includes R000 still *runs* every rule and filters emissions
        if not want_stale and select is not None and rule.code not in select:
            continue
        if respect_scope and not rule.applies(ctx):
            continue
        raw.extend(rule.check(ctx))
    raw.sort(key=lambda f: f.sort_key)
    kept, used = _apply_noqa(raw, ctx)
    if want_stale:
        kept.extend(_stale_findings(ctx, used))
    if select is not None:
        kept = [f for f in kept if f.code in select]
    kept.sort(key=lambda f: f.sort_key)
    return kept


def lint_file(
    path: str,
    select: Optional[Set[str]] = None,
    respect_scope: bool = True,
    project: Optional[ProjectContext] = None,
    stale_noqa: bool = True,
) -> List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source,
        path=str(path),
        select=select,
        respect_scope=respect_scope,
        project=project,
        stale_noqa=stale_noqa,
    )


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for p in sorted(root.rglob("*.py")):
        if _SKIP_DIR_PARTS.intersection(p.parts):
            continue
        yield p


def _discover(paths: Sequence[str]) -> Tuple[List[Path], List[str]]:
    files: List[Path] = []
    errors: List[str] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            errors.append(f"{raw}: no such file or directory")
            continue
        files.extend(_iter_python_files(root))
    return files, errors


# -- the --jobs worker pool ---------------------------------------------
# One project table per worker process, keyed by the run's file list;
# fork-started workers inherit nothing mutable, so each builds its own.
_WORKER_PROJECTS: Dict[Tuple[str, ...], ProjectContext] = {}


def _worker_project(files_key: Tuple[str, ...]) -> ProjectContext:
    project = _WORKER_PROJECTS.get(files_key)
    if project is None:
        project = build_project(files_key)
        _WORKER_PROJECTS.clear()
        _WORKER_PROJECTS[files_key] = project
    return project


def _lint_one_in_pool(
    args: Tuple[Tuple[str, ...], str, Optional[FrozenSet[str]], bool],
) -> Tuple[List[Finding], Optional[str]]:
    files_key, path, select, stale_noqa = args
    project = _worker_project(files_key)
    try:
        return (
            lint_file(
                path,
                select=set(select) if select is not None else None,
                project=project,
                stale_noqa=stale_noqa,
            ),
            None,
        )
    except SyntaxError as exc:
        return [], f"{path}: syntax error: {exc.msg} (line {exc.lineno})"


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    jobs: int = 1,
    stale_noqa: bool = True,
) -> Tuple[List[Finding], List[str]]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are files that
    failed to parse (reported, never silently skipped).  Findings are
    globally sorted by :attr:`Finding.sort_key`, so the report — and
    any baseline diff against it — is deterministic regardless of
    ``jobs``.
    """
    files, errors = _discover(paths)
    findings: List[Finding] = []
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        files_key = tuple(str(p) for p in files)
        sel = frozenset(select) if select is not None else None
        work = [(files_key, p, sel, stale_noqa) for p in files_key]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result, err in pool.map(_lint_one_in_pool, work):
                findings.extend(result)
                if err is not None:
                    errors.append(err)
    else:
        project = build_project(files)
        for p in files:
            try:
                findings.extend(
                    lint_file(
                        str(p),
                        select=select,
                        project=project,
                        stale_noqa=stale_noqa,
                    )
                )
            except SyntaxError as exc:
                errors.append(
                    f"{p}: syntax error: {exc.msg} (line {exc.lineno})"
                )
    findings.sort(key=lambda f: f.sort_key)
    return findings, sorted(errors)
