"""Command-line entry point: ``python -m repro.analysis src tests``.

Exit status: 0 clean (no non-baselined findings), 1 findings,
2 bad invocation / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Set

from repro.analysis.output import (
    DEFAULT_BASELINE,
    load_baseline,
    render_findings,
    save_baseline,
    split_baselined,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.runner import lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Concurrency-invariant analyzer for the repro package "
            "(rules R000-R008; see docs/INVARIANTS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. R001,R006)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="FILE",
        help=(
            "baseline of grandfathered findings (default: "
            f"{DEFAULT_BASELINE}; silently skipped when absent)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files across N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-stale-noqa",
        action="store_true",
        help="disable R000 unused-suppression detection",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    ns = parser.parse_args(argv)

    if ns.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
            print(f"      fix: {rule.hint}")
        return 0

    if ns.jobs < 1:
        print(f"--jobs must be >= 1, got {ns.jobs}", file=sys.stderr)
        return 2

    select: Optional[Set[str]] = None
    if ns.select:
        select = {c.strip().upper() for c in ns.select.split(",") if c.strip()}
        known = {rule.code for rule in ALL_RULES}
        unknown = select - known
        if unknown:
            print(
                f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2

    findings, errors = lint_paths(
        ns.paths,
        select=select,
        jobs=ns.jobs,
        stale_noqa=not ns.no_stale_noqa,
    )
    for err in errors:
        print(f"error: {err}", file=sys.stderr)

    if ns.update_baseline:
        save_baseline(ns.baseline, findings)
        print(
            f"baseline {ns.baseline} rewritten with {len(findings)} "
            f"finding{'s' if len(findings) != 1 else ''}",
            file=sys.stderr,
        )
        return 2 if errors else 0

    baseline = set() if ns.no_baseline else load_baseline(ns.baseline)
    new, grandfathered = split_baselined(findings, baseline)

    report = render_findings(new, ns.fmt)
    if ns.output:
        with open(ns.output, "w", encoding="utf-8") as fh:
            fh.write(report + ("\n" if report else ""))
    elif report:
        print(report)
    if ns.fmt == "sarif" and ns.output:
        # sanity-check our own artifact before CI uploads it
        from repro.analysis.output import validate_sarif

        problems = validate_sarif(json.loads(report))
        for p in problems:
            print(f"error: sarif: {p}", file=sys.stderr)
        if problems:
            return 2
    if new:
        n = len(new)
        print(f"\n{n} finding{'s' if n != 1 else ''}.", file=sys.stderr)
    if grandfathered:
        print(
            f"({len(grandfathered)} baselined finding"
            f"{'s' if len(grandfathered) != 1 else ''} suppressed; see "
            f"{ns.baseline})",
            file=sys.stderr,
        )
    if errors:
        return 2
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
