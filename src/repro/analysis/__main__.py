"""Command-line entry point: ``python -m repro.analysis src tests``.

Exit status: 0 clean, 1 findings, 2 bad invocation / unreadable input.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Set

from repro.analysis.rules import ALL_RULES
from repro.analysis.runner import lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Concurrency-invariant linter for the repro package "
            "(rules R001-R005; see docs/INVARIANTS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. R001,R003)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    ns = parser.parse_args(argv)

    if ns.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
            print(f"      fix: {rule.hint}")
        return 0

    select: Optional[Set[str]] = None
    if ns.select:
        select = {c.strip().upper() for c in ns.select.split(",") if c.strip()}
        known = {rule.code for rule in ALL_RULES}
        unknown = select - known
        if unknown:
            print(
                f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2

    findings, errors = lint_paths(ns.paths, select=select)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    for f in findings:
        print(f.format())
    if findings:
        n = len(findings)
        print(f"\n{n} finding{'s' if n != 1 else ''}.", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
