"""Shared type aliases and small value objects.

The whole package identifies vertices by dense integer ids in
``[0, n)``.  Distances are ``float64``; a weight *vector* has one
component per objective.  ``INF`` marks unreachable vertices and
``NO_PARENT`` marks tree roots / unreachable vertices in parent arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Vertex",
    "EdgeTuple",
    "WeightVector",
    "WeightLike",
    "SeedLike",
    "FloatArray",
    "IntArray",
    "BoolArray",
    "INF",
    "NO_PARENT",
    "DIST_DTYPE",
    "VERTEX_DTYPE",
    "as_float_array",
    "as_vertex_array",
]

#: A vertex id (dense, ``0 <= v < n``).
Vertex = int

#: ``(u, v)`` or ``(u, v, weight)`` edge description.
EdgeTuple = Union[Tuple[int, int], Tuple[int, int, float]]

#: Per-objective weight vector of an edge.
WeightVector = Sequence[float]

#: Anything accepted where an edge weight is expected: a scalar (when
#: ``k == 1``), a per-objective sequence, or an ndarray row.
WeightLike = Union[float, int, Sequence[float], np.ndarray]

#: Anything accepted as a seed by the graph generators: an integer
#: seed, ``None`` (fresh entropy), or an existing explicit Generator
#: (the form R002 requires inside the library itself).
SeedLike = Union[int, None, np.random.Generator]

FloatArray = np.ndarray
IntArray = np.ndarray
BoolArray = np.ndarray

#: Distance value for unreachable vertices.
INF: float = float("inf")

#: Parent sentinel for roots and unreachable vertices.
NO_PARENT: int = -1

#: dtype used for all distance arrays.
DIST_DTYPE = np.float64

#: dtype used for all vertex-id arrays.
VERTEX_DTYPE = np.int64


def as_float_array(values: Iterable[float]) -> FloatArray:
    """Return ``values`` as a contiguous ``float64`` numpy array."""
    return np.ascontiguousarray(values, dtype=DIST_DTYPE)


def as_vertex_array(values: Iterable[int]) -> IntArray:
    """Return ``values`` as a contiguous ``int64`` numpy array."""
    return np.ascontiguousarray(values, dtype=VERTEX_DTYPE)
