"""NAMOA* — multi-objective A* search (the paper's refs [19, 20]).

Point-to-point exact Pareto search: like Martins' algorithm but guided
by an admissible per-objective heuristic and pruned against the
*destination's* current front, which lets it settle far fewer labels
when only one destination matters.

The heuristic used here is the strongest cheap admissible one: the
exact per-objective distance-to-go, computed by ``k`` reverse Dijkstra
passes (the "ideal point" heuristic ``h(v) = (h_1(v), ..., h_k(v))``).
It is consistent for each objective separately, so a label whose
f-vector ``g + h`` is dominated by the destination front can never
extend into a non-dominated solution and is pruned safely.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.mosp.dominance import dominates_or_equal, is_dominated_by_any
from repro.mosp.labels import Label, LabelSet
from repro.sssp.dijkstra import dijkstra
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["namoa_star", "NamoaResult"]


@dataclass
class NamoaResult:
    """Exact Pareto-optimal source→destination solutions.

    Attributes
    ----------
    source, destination:
        Endpoints of the search.
    labels:
        The destination's Pareto-optimal :class:`Label` objects (path
        reconstruction via :meth:`Label.path`).
    pops, inserts:
        Search effort counters (for comparison with Martins).
    """

    source: int
    destination: int
    labels: List[Label]
    pops: int
    inserts: int

    def front(self) -> FloatArray:
        """``(f, k)`` Pareto front of destination cost vectors."""
        if not self.labels:
            return np.empty((0, 0), dtype=DIST_DTYPE)
        return np.asarray([l.dist for l in self.labels], dtype=DIST_DTYPE)

    def paths(self) -> List[List[int]]:
        """All Pareto-optimal source→destination paths."""
        return [l.path() for l in self.labels]


def namoa_star(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    destination: int,
) -> NamoaResult:
    """Enumerate the exact source→destination Pareto front with A*.

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph(3, k=2)
    >>> _ = g.add_edge(0, 1, (1.0, 9.0)); _ = g.add_edge(1, 2, (1.0, 9.0))
    >>> _ = g.add_edge(0, 2, (9.0, 1.0))
    >>> sorted(map(tuple, namoa_star(g, 0, 2).front().tolist()))
    [(2.0, 18.0), (9.0, 1.0)]
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)
    n, k = csr.n, csr.k
    if not 0 <= source < n:
        raise VertexError(source, n, "namoa source")
    if not 0 <= destination < n:
        raise VertexError(destination, n, "namoa destination")

    # ideal-point heuristic: exact per-objective distance to destination
    rev = CSRGraph(n, csr.indices.copy(), csr.src.copy(), csr.weights.copy())
    h = np.empty((n, k), dtype=DIST_DTYPE)
    for i in range(k):
        hd, _ = dijkstra(rev, destination, objective=i)
        h[:, i] = hd

    settled: List[LabelSet] = [LabelSet() for _ in range(n)]
    goal_front = LabelSet()
    tie = itertools.count()
    root = Label(source, tuple([0.0] * k))
    f0 = tuple(h[source].tolist())
    heap: List[Tuple[Tuple[float, ...], int, Label]] = []
    pops = inserts = 0
    if np.all(np.isfinite(h[source])):
        heap.append((f0, next(tie), root))
        inserts = 1

    indptr, indices, weights = csr.indptr, csr.indices, csr.weights

    while heap:
        f, _, lab = heapq.heappop(heap)
        v = lab.vertex
        if any(dominates_or_equal(s.dist, lab.dist) for s in settled[v].labels):
            continue
        # prune: a label whose optimistic completion is dominated by a
        # found goal cost can never improve the front
        if goal_front.labels and is_dominated_by_any(f, goal_front.front()):
            continue
        settled[v].insert(lab)
        pops += 1
        if v == destination:
            goal_front.insert(lab)
            continue
        g_vec = np.asarray(lab.dist, dtype=DIST_DTYPE)
        for e in range(indptr[v], indptr[v + 1]):
            u = int(indices[e])
            if not np.all(np.isfinite(h[u])):
                continue  # u cannot reach the destination
            ng = g_vec + weights[e]
            nd = tuple(ng.tolist())
            if any(dominates_or_equal(s.dist, nd) for s in settled[u].labels):
                continue
            nf = tuple((ng + h[u]).tolist())
            if goal_front.labels and is_dominated_by_any(
                nf, goal_front.front()
            ):
                continue
            child = Label(u, nd, parent=v, parent_label=lab)
            heapq.heappush(heap, (nf, next(tie), child))
            inserts += 1

    return NamoaResult(
        source=source,
        destination=destination,
        labels=list(goal_front.labels),
        pops=pops,
        inserts=inserts,
    )
