"""Pareto dominance (the paper's Equations 1–2) in vectorised form.

A distance vector ``d_i`` *dominates* ``d_j`` (written ``d_i < d_j`` in
the paper) iff ``d_i`` is strictly smaller in at least one component
and no larger in every other.  A dominated vector is eliminated from a
Pareto-optimal distance set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.types import DIST_DTYPE, FloatArray

__all__ = [
    "dominates",
    "dominates_or_equal",
    "is_dominated_by_any",
    "pareto_filter",
]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """``True`` iff ``a`` Pareto-dominates ``b``.

    Implements Equations (1)–(2): strictly better in at least one
    objective (Eq. 1) and no worse in all others (Eq. 2).

    Examples
    --------
    >>> dominates((1, 2), (2, 2))
    True
    >>> dominates((1, 2), (1, 2))
    False
    >>> dominates((1, 3), (2, 2))
    False
    """
    a = np.asarray(a, dtype=DIST_DTYPE)
    b = np.asarray(b, dtype=DIST_DTYPE)
    return bool(np.all(a <= b) and np.any(a < b))


def dominates_or_equal(a: Sequence[float], b: Sequence[float]) -> bool:
    """``True`` iff ``a`` dominates or equals ``b`` (weak dominance)."""
    a = np.asarray(a, dtype=DIST_DTYPE)
    b = np.asarray(b, dtype=DIST_DTYPE)
    return bool(np.all(a <= b))


def is_dominated_by_any(point: Sequence[float], front: FloatArray) -> bool:
    """``True`` iff some row of ``front`` dominates ``point``.

    ``front`` is an ``(m, k)`` array; an empty front dominates nothing.
    """
    front = np.asarray(front, dtype=DIST_DTYPE)
    if front.size == 0:
        return False
    p = np.asarray(point, dtype=DIST_DTYPE)
    le = np.all(front <= p, axis=1)
    lt = np.any(front < p, axis=1)
    return bool(np.any(le & lt))


def pareto_filter(points: FloatArray, return_mask: bool = False):
    """Rows of ``points`` that are not dominated by any other row.

    Exact duplicates are kept once.  ``(m, k)`` input; returns the
    filtered array (and the boolean keep-mask when ``return_mask``).

    The implementation sorts lexicographically and sweeps, testing each
    candidate only against already-accepted rows — O(m·f) with ``f``
    the front size, much better than the naive O(m²) when fronts are
    small (the common case).
    """
    pts = np.asarray(points, dtype=DIST_DTYPE)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    m = pts.shape[0]
    keep = np.zeros(m, dtype=bool)
    if m == 0:
        filtered = pts
        return (filtered, keep) if return_mask else filtered

    # lexicographic sort: any dominator of row r sorts before r, so a
    # single forward sweep against the accepted set is complete
    order = np.lexsort(pts.T[::-1])
    accepted: list = []
    accepted_arr = np.empty((0, pts.shape[1]), dtype=DIST_DTYPE)
    seen = set()
    for idx in order:
        p = pts[idx]
        key = p.tobytes()
        if key in seen:
            continue  # duplicate of an accepted row
        if accepted_arr.shape[0]:
            le = np.all(accepted_arr <= p, axis=1)
            lt = np.any(accepted_arr < p, axis=1)
            if np.any(le & lt):
                continue
        accepted.append(idx)
        seen.add(key)
        accepted_arr = np.vstack([accepted_arr, p[None, :]])
    keep[accepted] = True
    filtered = pts[np.sort(accepted)]
    return (filtered, keep) if return_mask else filtered
