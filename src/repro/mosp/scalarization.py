"""Weighted-sum scalarisation baseline.

The folk baseline for "give me one reasonable multi-objective path":
collapse the weight vector with a convex combination
``w·λ  (λ ≥ 0, Σλ = 1)`` and run a single-objective Dijkstra.  Every
path optimal for some λ is Pareto optimal (supported solutions), but
scalarisation cannot reach non-supported Pareto points — one of the
reasons the paper's ensemble heuristic is interesting.  The ablation
benchmark compares both.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError, NotReachableError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.sssp.dijkstra import dijkstra
from repro.types import DIST_DTYPE, NO_PARENT, FloatArray

__all__ = ["weighted_sum_path"]


def weighted_sum_path(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    destination: int,
    lambdas: Optional[Sequence[float]] = None,
) -> Tuple[List[int], FloatArray]:
    """One Pareto-optimal path by scalarising the objectives.

    Parameters
    ----------
    graph:
        Multi-objective graph.
    source, destination:
        Path endpoints.
    lambdas:
        Convex-combination coefficients (``None`` = uniform).  Must be
        non-negative with a positive sum; they are normalised.

    Returns
    -------
    (path, cost):
        The vertex path and its true ``k``-vector cost.

    Raises
    ------
    NotReachableError
        When no source→destination path exists.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)
    k = csr.k
    if lambdas is None:
        lam = np.full(k, 1.0 / k, dtype=DIST_DTYPE)
    else:
        lam = np.asarray(lambdas, dtype=DIST_DTYPE)
        if lam.shape != (k,):
            raise AlgorithmError(f"lambdas must have length {k}")
        if np.any(lam < 0) or lam.sum() <= 0:
            raise AlgorithmError("lambdas must be non-negative, sum > 0")
        lam = lam / lam.sum()

    scalar = CSRGraph(
        csr.n, csr.src.copy(), csr.indices.copy(), csr.weights @ lam
    )
    dist, parent = dijkstra(scalar, source)
    if not np.isfinite(dist[destination]):
        raise NotReachableError(source, destination)

    # walk parents back to the source
    path = [destination]
    while path[-1] != source:
        p = int(parent[path[-1]])
        if p == NO_PARENT:
            raise NotReachableError(source, destination)
        path.append(p)
    path.reverse()

    # true multi-objective cost: per hop, the cheapest (under λ) edge
    cost = np.zeros(k, dtype=DIST_DTYPE)
    for u, v in zip(path, path[1:]):
        nbrs = csr.out_neighbors(u)
        wv = csr.out_weight_vectors(u)
        mask = nbrs == v
        if not mask.any():
            raise AlgorithmError(f"path edge ({u}, {v}) vanished")
        scalarised = wv[mask] @ lam
        cost += wv[mask][int(np.argmin(scalarised))]
    return path, cost
