"""Multi-objective shortest-path substrate.

The full Pareto machinery the paper's heuristic is measured against:

- :mod:`~repro.mosp.dominance` — vectorised Pareto-dominance tests and
  front filtering (the paper's Equations 1–2).
- :mod:`~repro.mosp.labels` — per-vertex Pareto label sets with
  insertion-time pruning.
- :func:`~repro.mosp.martins.martins` — Martins' label-setting
  multi-objective Dijkstra (the paper's reference [21]/[12]): enumerates
  *all* Pareto-optimal path costs from the source.  This is the exact
  baseline used to judge the quality and cost of Algorithm 2.
- :func:`~repro.mosp.scalarization.weighted_sum_path` — the classic
  scalarisation baseline (collapse objectives with a weight vector and
  run Dijkstra once).
- :mod:`~repro.mosp.pareto_front` — front merging and quality metrics.
"""

from repro.mosp.dynamic_front import DynamicParetoFront, FrontUpdateStats
from repro.mosp.dominance import (
    dominates,
    dominates_or_equal,
    is_dominated_by_any,
    pareto_filter,
)
from repro.mosp.labels import Label, LabelSet
from repro.mosp.martins import MartinsResult, martins
from repro.mosp.namoa import NamoaResult, namoa_star
from repro.mosp.pareto_front import (
    front_distance,
    merge_fronts,
    nondominated_against,
)
from repro.mosp.scalarization import weighted_sum_path

__all__ = [
    "dominates",
    "dominates_or_equal",
    "is_dominated_by_any",
    "pareto_filter",
    "Label",
    "LabelSet",
    "martins",
    "MartinsResult",
    "namoa_star",
    "NamoaResult",
    "merge_fronts",
    "front_distance",
    "nondominated_against",
    "weighted_sum_path",
    "DynamicParetoFront",
    "FrontUpdateStats",
]
