"""Pareto labels and per-vertex label sets.

The paper's §2.1 writes a vertex's Pareto-optimal state as
``(v, l) = {p1: {d1, ...}, p2: {...}}`` — a set of incomparable
distance vectors, each remembering the parent it came through.
:class:`Label` is one such entry (plus a back-pointer for path
reconstruction); :class:`LabelSet` maintains the Pareto-incomparable
invariant under insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.mosp.dominance import dominates_or_equal
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["Label", "LabelSet"]


@dataclass(frozen=True)
class Label:
    """One Pareto-optimal distance entry of a vertex.

    Attributes
    ----------
    vertex:
        The vertex this label belongs to.
    dist:
        Length-``k`` distance vector from the source.
    parent:
        Predecessor vertex on the path (``-1`` at the source).
    parent_label:
        The predecessor's :class:`Label` this one extends (``None`` at
        the source) — following these pointers reconstructs the path.
    children:
        Labels that extend this one (maintained by consumers that need
        descendant invalidation, e.g. the fully dynamic front; plain
        enumeration leaves it empty).  Mutable by design — the
        dataclass is frozen on identity fields only.
    """

    vertex: int
    dist: Tuple[float, ...]
    parent: int = -1
    parent_label: Optional["Label"] = field(default=None, repr=False, compare=False)
    children: list = field(default_factory=list, repr=False, compare=False)

    def path(self) -> List[int]:
        """Reconstruct the source→vertex path of this label."""
        out: List[int] = []
        lab: Optional[Label] = self
        while lab is not None:
            out.append(lab.vertex)
            lab = lab.parent_label
        out.reverse()
        return out

    def dist_array(self) -> FloatArray:
        """The distance vector as a numpy array."""
        return np.asarray(self.dist, dtype=DIST_DTYPE)


class LabelSet:
    """The mutually incomparable labels of one vertex.

    :meth:`insert` keeps the set Pareto-optimal: a candidate weakly
    dominated by an existing label is rejected; on acceptance every
    existing label the candidate dominates is evicted.

    Examples
    --------
    >>> s = LabelSet()
    >>> s.insert(Label(3, (2.0, 5.0)))
    True
    >>> s.insert(Label(3, (3.0, 6.0)))   # dominated
    False
    >>> s.insert(Label(3, (5.0, 1.0)))   # incomparable
    True
    >>> len(s)
    2
    """

    __slots__ = ("labels",)

    def __init__(self) -> None:
        self.labels: List[Label] = []

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self):
        return iter(self.labels)

    def insert(self, candidate: Label) -> bool:
        """Insert ``candidate`` if not weakly dominated; evict what it
        dominates.  Returns whether the candidate was inserted."""
        cd = candidate.dist
        for lab in self.labels:
            if dominates_or_equal(lab.dist, cd):
                return False
        self.labels = [
            lab for lab in self.labels if not dominates_or_equal(cd, lab.dist)
        ]
        self.labels.append(candidate)
        return True

    def remove(self, label: Label) -> bool:
        """Remove ``label`` (by identity) from the set; returns whether
        it was present.  Used by the fully dynamic front when an edge
        deletion invalidates stored labels."""
        for i, lab in enumerate(self.labels):
            if lab is label:
                del self.labels[i]
                return True
        return False

    def would_accept(self, dist: Tuple[float, ...]) -> bool:
        """Whether a label with this distance vector would be inserted."""
        return not any(
            dominates_or_equal(lab.dist, dist) for lab in self.labels
        )

    def front(self) -> FloatArray:
        """``(f, k)`` array of the current Pareto-optimal distances."""
        if not self.labels:
            return np.empty((0, 0), dtype=DIST_DTYPE)
        return np.asarray([lab.dist for lab in self.labels], dtype=DIST_DTYPE)
