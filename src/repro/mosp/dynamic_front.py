"""Incremental maintenance of *full* Pareto fronts under edge insertions.

The paper's introduction observes that "parallel algorithms for the
MOSP problem in large dynamic networks are yet to be explored" and then
deliberately sidesteps full-front maintenance by tracking one MOSP.
This module explores the sidestepped direction: it keeps **every**
vertex's Pareto-optimal label set current across insertion batches,
using the same two ideas as Algorithm 1 —

- **grouping**: candidate labels are grouped by their vertex, so each
  vertex's label set is touched by exactly one task per superstep
  (race-free, exactly the paper's ownership discipline lifted from
  scalar distances to label sets);
- **affected propagation**: only labels accepted into a set spawn
  successor candidates; untouched regions cost nothing.

Edge insertions only ever *add* non-dominated path costs or leave
fronts unchanged, so label-correcting propagation from the inserted
edges converges to the same fronts a from-scratch Martins run produces
(verified property-based in the tests).

**Deletions** are also supported (going past even the paper's
future-work list) via label provenance: every stored label remembers
its parent label and registers itself with it, so a deleted edge's
labels *and all their descendants* can be invalidated exactly.  Repair
then reseeds every vertex that lost labels from its predecessors'
surviving fronts and lets the normal label-setting propagation run —
promoted (previously dominated) paths reappear because every
Pareto-optimal path extends a Pareto-optimal prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dynamic.changes import ChangeBatch
from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.mosp.labels import Label, LabelSet
from repro.mosp.martins import martins
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.api import Engine, resolve_engine
from repro.parallel.atomics import resolve_tracker
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["DynamicParetoFront", "FrontUpdateStats"]


@dataclass
class FrontUpdateStats:
    """Profile of one :meth:`DynamicParetoFront.update` call."""

    candidates: int = 0
    accepted: int = 0
    supersteps: int = 0
    dominance_checks: int = 0
    invalidated: int = 0
    dirty_vertices: int = 0


def _publish_front_stats(stats: FrontUpdateStats) -> None:
    """Publish one finished front update to the metrics registry
    (exactly once per :meth:`DynamicParetoFront.update` call)."""
    m = get_metrics()
    if not m.enabled:
        return
    m.counter("front_updates_total", "DynamicParetoFront updates").inc()
    m.counter("front_candidates_total", "candidate labels queued").inc(
        stats.candidates
    )
    m.counter("front_accepted_total", "labels accepted into fronts").inc(
        stats.accepted
    )
    m.counter("front_dominance_checks_total", "dominance comparisons").inc(
        stats.dominance_checks
    )
    m.counter("front_invalidated_total",
              "labels invalidated by deletions").inc(stats.invalidated)
    m.histogram("front_dirty_vertices",
                "vertices reseeded per update").observe(stats.dirty_vertices)


def _link(child: Label) -> Label:
    """Register ``child`` with its parent label for descendant
    invalidation; returns the child for chaining."""
    if child.parent_label is not None:
        child.parent_label.children.append(child)
    return child


class DynamicParetoFront:
    """All-destination Pareto fronts, maintained under insertions.

    Parameters
    ----------
    graph:
        Multi-objective digraph; the caller applies each batch to it
        (``batch.apply_to(graph)``) before calling :meth:`update`.
    source:
        Source vertex of all fronts.
    engine:
        Execution engine for the propagation supersteps.

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> from repro.dynamic import ChangeBatch
    >>> g = DiGraph(2, k=2)
    >>> _ = g.add_edge(0, 1, (5.0, 5.0))
    >>> dpf = DynamicParetoFront(g, 0)
    >>> batch = ChangeBatch.insertions([(0, 1, (1.0, 9.0))])
    >>> _ = batch.apply_to(g)
    >>> _ = dpf.update(batch)
    >>> sorted(map(tuple, dpf.front(1).tolist()))
    [(1.0, 9.0), (5.0, 5.0)]
    """

    def __init__(
        self,
        graph: DiGraph,
        source: int,
        engine: Optional[Engine] = None,
    ) -> None:
        self.graph = graph
        self.source = int(source)
        self.engine = resolve_engine(engine)
        result = martins(graph, source)
        self._sets: List[LabelSet] = [LabelSet() for _ in result.labels]
        # hop index: (u, v) -> every label ever accepted whose last hop
        # is that edge.  Deletion invalidation starts here — a label can
        # be evicted from its set yet leave surviving descendants, so
        # set scans alone would miss users of a deleted edge.
        self._hop_index: Dict[Tuple[int, int], List[Label]] = {}
        for v, labs in enumerate(result.labels):
            for lab in labs:
                self._sets[v].insert(lab)
                self._register(lab)

    def _register(self, lab: Label) -> None:
        """Record an accepted label in the provenance structures."""
        _link(lab)
        if lab.parent >= 0:
            self._hop_index.setdefault(
                (lab.parent, lab.vertex), []
            ).append(lab)

    # ------------------------------------------------------------------
    def front(self, v: int) -> FloatArray:
        """``(f, k)`` Pareto front of vertex ``v`` (empty if
        unreachable)."""
        return self._sets[v].front()

    def labels(self, v: int) -> List[Label]:
        """The Pareto-optimal labels of ``v``."""
        return list(self._sets[v].labels)

    def paths(self, v: int) -> List[List[int]]:
        """All currently Pareto-optimal source→``v`` paths."""
        return [lab.path() for lab in self._sets[v].labels]

    def num_labels(self) -> int:
        """Total label count over all vertices."""
        return sum(len(s) for s in self._sets)

    # ------------------------------------------------------------------
    def update(
        self, batch: ChangeBatch, mode: str = "setting"
    ) -> FrontUpdateStats:
        """Propagate an (already applied) insertion batch.

        Two modes, same final fronts:

        - ``"setting"`` (default): a lexicographic priority queue
          seeded with the inserted-edge candidates — the incremental
          analogue of Martins' label-*setting* loop.  Each new Pareto
          label settles exactly once, so total work tracks the churn.
        - ``"correcting"``: superstep-parallel label-*correcting* with
          per-vertex grouping (the paper's Algorithm-1 structure lifted
          to label sets).  More total work (labels can be re-corrected
          across waves) in exchange for wide race-free supersteps —
          the same trade the paper makes choosing Bellman-Ford-style
          propagation over Dijkstra.

        Deletion records are processed first (invalidate labels via
        provenance, reseed dirty vertices), then insertions; a single
        propagation pass settles both.
        """
        if self.graph.num_vertices != len(self._sets):
            raise AlgorithmError(
                "graph grew vertices; rebuild DynamicParetoFront"
            )
        if mode not in ("setting", "correcting"):
            raise AlgorithmError(
                f"unknown mode {mode!r}; expected setting | correcting"
            )
        if batch.num_weight_changes:
            raise AlgorithmError(
                "DynamicParetoFront does not support weight-change "
                "records yet; replay them as a deletion + insertion pair"
            )
        stats = FrontUpdateStats()
        g = self.graph
        k = g.num_objectives
        tracer = get_tracer()

        with tracer.span(
            "dynamic_front.update", mode=mode,
            insertions=int(batch.num_insertions),
            deletions=int(batch.num_deletions),
        ):
            candidates: List[Label] = []

            # ---- deletions: invalidate via provenance, reseed dirty
            del_src, del_dst = batch.delete_records()
            if len(del_src):
                with tracer.span("dynamic_front.deletions") as sp_del:
                    dirty = self._process_deletions(
                        del_src, del_dst, stats
                    )
                    stats.dirty_vertices = len(dirty)
                    for v in sorted(dirty):
                        for u, eid in g.in_edges(v):
                            wv = g.weight(eid)
                            for lab in self._sets[u].labels:
                                nd = tuple(
                                    (np.asarray(lab.dist, dtype=DIST_DTYPE)
                                     + wv).tolist()
                                )
                                candidates.append(
                                    Label(v, nd, parent=u, parent_label=lab)
                                )
                    sp_del.set(
                        invalidated=stats.invalidated,
                        dirty_vertices=stats.dirty_vertices,
                    )

            # ---- insertions: every inserted edge extends its tail's
            # labels.  Seeds come from the *live* (u, v) weight vectors,
            # not the record's: a mixed batch may have deleted the
            # inserted edge again (records apply in order), and
            # conversely several incomparable parallel edges may all
            # matter for the front.
            src, dst, _w = batch.insert_records()
            seen_pairs = set()
            for i in range(len(src)):
                u, v = int(src[i]), int(dst[i])
                if u == v or (u, v) in seen_pairs:
                    continue
                seen_pairs.add((u, v))
                live = [
                    g.weight(eid) for vv, eid in g.out_edges(u) if vv == v
                ]
                for wv in live:
                    for lab in self._sets[u].labels:
                        nd = tuple(
                            (np.asarray(lab.dist, dtype=DIST_DTYPE)
                             + wv).tolist()
                        )
                        candidates.append(
                            Label(v, nd, parent=u, parent_label=lab)
                        )

            if mode == "setting":
                with tracer.span("dynamic_front.setting"):
                    self._update_setting(candidates, stats)
            else:
                with tracer.span("dynamic_front.correcting"):
                    self._update_correcting(candidates, stats)
        _publish_front_stats(stats)
        return stats

    # ------------------------------------------------------------------
    def _process_deletions(self, del_src, del_dst, stats) -> set:
        """Invalidate every label whose path uses a deleted edge.

        A label uses hop ``(u, v)`` iff its distance increment over its
        parent label matches no *surviving* parallel ``(u, v)`` edge.
        All descendants of an invalid label are invalid.  Returns the
        set of vertices that lost at least one stored label.
        """
        from collections import deque

        g = self.graph
        roots: List[Label] = []
        for u, v in {
            (int(a), int(b)) for a, b in zip(del_src, del_dst)
        }:
            remaining = [
                g.weight(eid) for vv, eid in g.out_edges(u) if vv == v
            ]
            for lab in self._hop_index.get((u, v), []):
                if lab.parent_label is None:
                    continue
                delta = (
                    np.asarray(lab.dist, dtype=DIST_DTYPE)
                    - np.asarray(lab.parent_label.dist, dtype=DIST_DTYPE)
                )
                if not any(
                    np.allclose(delta, w, rtol=1e-9, atol=1e-12)
                    for w in remaining
                ):
                    roots.append(lab)

        dirty: set = set()
        seen: set = set()
        queue = deque(roots)
        while queue:
            lab = queue.popleft()
            if id(lab) in seen:
                continue
            seen.add(id(lab))
            queue.extend(lab.children)
            if self._sets[lab.vertex].remove(lab):
                dirty.add(lab.vertex)
        stats.invalidated = len(seen)
        return dirty

    # ------------------------------------------------------------------
    def _update_setting(
        self, candidates: List[Label], stats: FrontUpdateStats
    ) -> None:
        """Incremental label-setting: lexicographic heap, settle once."""
        import heapq
        import itertools

        g = self.graph
        tie = itertools.count()
        heap: List[Tuple[Tuple[float, ...], int, Label]] = []
        for lab in candidates:
            heapq.heappush(heap, (lab.dist, next(tie), lab))
        stats.candidates += len(candidates)
        while heap:
            _, _, lab = heapq.heappop(heap)
            v = lab.vertex
            stats.dominance_checks += len(self._sets[v])
            if not self._sets[v].insert(lab):
                continue
            self._register(lab)
            stats.accepted += 1
            base = np.asarray(lab.dist, dtype=DIST_DTYPE)
            for u, eid in g.out_edges(v):
                nd = tuple((base + g.weight(eid)).tolist())
                stats.dominance_checks += len(self._sets[u])
                if self._sets[u].would_accept(nd):
                    child = Label(u, nd, parent=v, parent_label=lab)
                    heapq.heappush(heap, (nd, next(tie), child))
                    stats.candidates += 1

    # ------------------------------------------------------------------
    def _update_correcting(
        self, candidates: List[Label], stats: FrontUpdateStats
    ) -> None:
        """Superstep-parallel label-correcting with vertex grouping."""
        g = self.graph
        # a checked engine supplies a tracker; grouping by vertex means
        # each Pareto set is mutated by exactly one task per superstep
        tracker = resolve_tracker(None, self.engine)
        while candidates:
            stats.supersteps += 1
            stats.candidates += len(candidates)
            # group by owning vertex (the paper's Step-0 idea on labels)
            groups: Dict[int, List[Label]] = {}
            for lab in candidates:
                groups.setdefault(lab.vertex, []).append(lab)

            def process_group(
                item: Tuple[int, Tuple[int, List[Label]]]
            ) -> Tuple[List[Label], int]:
                task_id, (v, labs) = item
                accepted = []
                checks = 0
                for lab in labs:
                    checks += len(self._sets[v])
                    if tracker is not None:
                        tracker.record_write(v, task_id)
                    if self._sets[v].insert(lab):
                        accepted.append(lab)
                return accepted, checks
            # NOTE: registration of accepted labels happens below, on
            # the coordinating thread — the provenance dicts are shared

            results = self.engine.parallel_for(
                list(enumerate(groups.items())),
                process_group,
                work_fn=lambda item, r: max(1, r[1]),
            )

            # spawn successors of accepted labels (next superstep)
            candidates = []
            for accepted, checks in results:
                stats.dominance_checks += checks
                stats.accepted += len(accepted)
                for lab in accepted:
                    self._register(lab)
                for lab in accepted:
                    base = np.asarray(lab.dist, dtype=DIST_DTYPE)
                    for u, eid in g.out_edges(lab.vertex):
                        nd = tuple((base + g.weight(eid)).tolist())
                        # cheap pre-filter before queueing
                        if self._sets[u].would_accept(nd):
                            candidates.append(
                                Label(u, nd, parent=lab.vertex,
                                      parent_label=lab)
                            )
            self.engine.charge(len(candidates))
