"""Pareto-front utilities: merging and quality metrics.

Used by the benchmarks to judge how close the single path produced by
Algorithm 2 lands to the exact front enumerated by Martins' algorithm.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mosp.dominance import is_dominated_by_any, pareto_filter
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["merge_fronts", "nondominated_against", "front_distance"]


def merge_fronts(*fronts: FloatArray) -> FloatArray:
    """Pareto-filter the union of several ``(m_i, k)`` fronts."""
    stacks = [np.asarray(f, dtype=DIST_DTYPE) for f in fronts if np.size(f)]
    if not stacks:
        return np.empty((0, 0), dtype=DIST_DTYPE)
    return pareto_filter(np.vstack(stacks))


def nondominated_against(point: Sequence[float], front: FloatArray) -> bool:
    """``True`` iff ``point`` is not dominated by any row of ``front``.

    The acceptance test for heuristic solutions: a point that no exact
    Pareto-optimal cost dominates is itself Pareto optimal (when the
    front is complete).
    """
    return not is_dominated_by_any(point, front)


def front_distance(point: Sequence[float], front: FloatArray) -> float:
    """Relative excess of ``point`` over the front rows that dominate it.

    0.0 when no front row dominates ``point`` (it is itself Pareto
    optimal w.r.t. the front).  Otherwise, over the rows ``f`` that
    dominate it, the smallest worst-objective relative excess
    ``max_j (point_j - f_j) / max(f_j, eps)`` — 0.10 means the closest
    dominating front point beats it by at most 10% in its worst
    objective.  Used as the quality metric in the ensemble-weighting
    ablation.
    """
    front = np.asarray(front, dtype=DIST_DTYPE)
    if front.size == 0:
        return 0.0
    p = np.asarray(point, dtype=DIST_DTYPE)
    if not is_dominated_by_any(p, front):
        return 0.0
    dominating = front[np.all(front <= p, axis=1) & np.any(front < p, axis=1)]
    eps = 1e-12
    rel = (p[None, :] - dominating) / np.maximum(dominating, eps)
    worst_per_row = rel.max(axis=1)
    return float(worst_per_row.min())
