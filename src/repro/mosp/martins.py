"""Martins' label-setting multi-objective shortest-path algorithm.

The classical exact algorithm (Martins 1984, the paper's [21]; improved
variants are its [3]): a lexicographic priority queue of labels; the
popped label is permanent iff not dominated by the labels already
settled at its vertex; permanent labels are extended along out-edges.
With non-negative weight vectors every Pareto-optimal path cost from
the source to every vertex is enumerated.

This is the *full Pareto front* baseline the paper's heuristic
(Algorithm 2) deliberately avoids: its output size can be exponential
in the worst case, which is exactly the cost/benefit the benchmark
``bench_mosp_vs_full_pareto`` quantifies.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError, VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.mosp.dominance import dominates_or_equal
from repro.mosp.labels import Label, LabelSet
from repro.types import DIST_DTYPE, FloatArray

__all__ = ["martins", "MartinsResult"]


@dataclass
class MartinsResult:
    """Full Pareto-optimal solution from one source.

    Attributes
    ----------
    source:
        The source vertex.
    labels:
        ``labels[v]`` is the list of Pareto-optimal :class:`Label`
        objects of vertex ``v`` (empty if unreachable).
    pops, inserts:
        Work counters (labels settled / queue pushes) for the
        cost-comparison benchmarks.
    """

    source: int
    labels: List[List[Label]]
    pops: int
    inserts: int

    def front(self, v: int) -> FloatArray:
        """``(f, k)`` Pareto front of distance vectors at vertex ``v``."""
        labs = self.labels[v]
        if not labs:
            return np.empty((0, 0), dtype=DIST_DTYPE)
        return np.asarray([lab.dist for lab in labs], dtype=DIST_DTYPE)

    def paths(self, v: int) -> List[List[int]]:
        """All Pareto-optimal source→``v`` paths."""
        return [lab.path() for lab in self.labels[v]]

    def num_labels(self) -> int:
        """Total number of Pareto-optimal labels over all vertices."""
        return sum(len(ls) for ls in self.labels)


def martins(
    graph: Union[DiGraph, CSRGraph],
    source: int,
    max_labels: Optional[int] = None,
) -> MartinsResult:
    """Enumerate every Pareto-optimal path cost from ``source``.

    Parameters
    ----------
    graph:
        Graph whose edges carry ``k``-objective weight vectors.
    source:
        Source vertex.
    max_labels:
        Safety valve: abort with :class:`AlgorithmError` if more than
        this many labels settle (fronts can grow exponentially).
        ``None`` = unlimited.

    Returns
    -------
    :class:`MartinsResult`

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph(3, k=2)
    >>> _ = g.add_edge(0, 1, (1.0, 10.0))
    >>> _ = g.add_edge(0, 1, (10.0, 1.0))
    >>> r = martins(g, 0)
    >>> sorted(map(tuple, r.front(1).tolist()))
    [(1.0, 10.0), (10.0, 1.0)]
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)
    n = csr.n
    if not 0 <= source < n:
        raise VertexError(source, n, "martins source")
    k = csr.k

    settled: List[LabelSet] = [LabelSet() for _ in range(n)]
    tie = itertools.count()  # FIFO tiebreak for equal vectors
    root = Label(source, tuple([0.0] * k))
    heap: List[Tuple[Tuple[float, ...], int, Label]] = [(root.dist, next(tie), root)]
    pops = 0
    inserts = 1

    indptr, indices, weights = csr.indptr, csr.indices, csr.weights

    while heap:
        _, _, lab = heapq.heappop(heap)
        v = lab.vertex
        # discard if (weakly) dominated by a settled label of v
        if any(dominates_or_equal(s.dist, lab.dist) for s in settled[v].labels):
            continue
        settled[v].insert(lab)
        pops += 1
        if max_labels is not None and pops > max_labels:
            raise AlgorithmError(
                f"martins exceeded max_labels={max_labels}; "
                "the Pareto front is too large for exact enumeration"
            )
        dv = np.asarray(lab.dist, dtype=DIST_DTYPE)
        for e in range(indptr[v], indptr[v + 1]):
            u = int(indices[e])
            nd = tuple((dv + weights[e]).tolist())
            # prune against u's settled labels before queueing
            if any(dominates_or_equal(s.dist, nd) for s in settled[u].labels):
                continue
            child = Label(u, nd, parent=v, parent_label=lab)
            heapq.heappush(heap, (nd, next(tie), child))
            inserts += 1

    return MartinsResult(
        source=source,
        labels=[s.labels for s in settled],
        pops=pops,
        inserts=inserts,
    )
