"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, algorithm, and engine inventory.
``generate``
    Write a synthetic network (road-like / rgg / erdos-renyi) as an
    edge list.
``sssp``
    Single-objective shortest paths over an edge-list file.
``mosp``
    One balanced (or priority-weighted) multi-objective path between
    two vertices of an edge-list file.
``update-demo``
    Play random insertion (or, with ``--insert-fraction`` /
    ``--weight-change-fraction``, mixed insert/delete/re-weight)
    batches over a file or synthetic network and report per-batch
    incremental-update statistics.
``serve``
    Run the always-on update service over a synthetic edit feed:
    streaming ingest, size/latency coalescing, epoch-stamped MVCC
    snapshots, clean drain/stop.
``serve-load``
    Load-generate against a running service — concurrent mixed edits
    and verified path queries — and report sustained updates/sec,
    query latency percentiles, and torn-read violations (non-zero
    exit on any violation; the CI smoke gate).

Every command reads/writes the edge-list format of
:mod:`repro.graph.io` (``u v w1 [.. wk]`` lines).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.core import SOSPTree, apply_mixed_batch, mosp_update, sosp_update
from repro.dynamic import random_insert_batch, random_mixed_batch
from repro.errors import ReproError
from repro.graph import (
    CSRGraph,
    DiGraph,
    erdos_renyi,
    random_geometric,
    road_like,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.obs import (
    CLOCK_SOURCE,
    EXPORTERS,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)
from repro.parallel import (
    PartitionedEngine,
    SharedMemoryEngine,
    engine_observability,
    resolve_engine,
)
from repro.sssp import recompute_sssp

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel single/multi-objective shortest-path updates in "
            "dynamic networks (Khanda, Shovan & Das, SC-W 2023)"
        ),
    )
    p.add_argument("--version", action="version",
                   version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and engine inventory")

    g = sub.add_parser("generate", help="write a synthetic network")
    g.add_argument("family", choices=("road", "rgg", "er"))
    g.add_argument("output", help="edge-list path to write")
    g.add_argument("-n", type=int, default=1000, help="vertex count")
    g.add_argument("-m", type=int, default=None,
                   help="edge count (er only; default 4n)")
    g.add_argument("-k", type=int, default=2, help="objectives per edge")
    g.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("sssp", help="single-objective shortest paths")
    s.add_argument("graph", help="edge-list file")
    s.add_argument("--source", type=int, default=0)
    s.add_argument("--objective", type=int, default=0)
    s.add_argument("--algorithm", default="dijkstra",
                   choices=("dijkstra", "bellman_ford", "delta_stepping"))
    s.add_argument("--target", type=int, default=None,
                   help="print the path to this vertex")
    _add_obs_flags(s)

    m = sub.add_parser("mosp", help="one multi-objective shortest path")
    m.add_argument("graph", help="edge-list file")
    m.add_argument("--source", type=int, default=0)
    m.add_argument("--target", type=int, required=True)
    m.add_argument("--weighting", default="balanced",
                   choices=("balanced", "unit", "priority"))
    m.add_argument("--priorities", type=float, nargs="+", default=None)
    m.add_argument("--engine", default="serial",
                   choices=("serial", "threads", "simulated"))
    m.add_argument("--threads", type=int, default=4)
    _add_obs_flags(m)

    u = sub.add_parser("update-demo",
                       help="incremental updates over random batches")
    u.add_argument("graph", nargs="?", default=None,
                   help="edge-list file (default: synthetic road, n=2000)")
    u.add_argument("--source", type=int, default=0)
    u.add_argument("--steps", type=int, default=3)
    u.add_argument("--batch-size", type=int, default=50)
    u.add_argument("--seed", type=int, default=0)
    u.add_argument("--engine", default="serial",
                   choices=("serial", "threads", "processes", "shm",
                            "simulated", "partitioned"))
    u.add_argument("--threads", type=int, default=4)
    u.add_argument(
        "--partitions", type=int, default=2,
        help="shard count for --engine partitioned (one inner "
        "shared-memory pool of --threads workers per shard)",
    )
    u.add_argument(
        "--insert-fraction", type=float, default=1.0,
        help="fraction of each batch that inserts edges; the rest "
        "deletes (and re-weights, with --weight-change-fraction) live "
        "edges through the fully dynamic mixed pipeline",
    )
    u.add_argument(
        "--weight-change-fraction", type=float, default=0.0,
        help="fraction of each batch that re-weights live edges "
        "(requires insert fraction + weight-change fraction <= 1)",
    )
    u.add_argument(
        "--min-dispatch-items", type=int, default=None,
        help="override the shm engine's inline threshold (slab "
        "supersteps below it run inline on the master); pass 1 to "
        "force real worker dispatch on small demo graphs, e.g. for "
        "cross-process traces (applies to --engine shm and to the "
        "inner pools of --engine partitioned)",
    )
    _add_obs_flags(u)

    sv = sub.add_parser(
        "serve",
        help="run the always-on update service over a synthetic feed",
    )
    _add_serve_flags(sv)
    _add_obs_flags(sv)

    sl = sub.add_parser(
        "serve-load",
        help="mixed read/write load against the service; verifies "
        "snapshot isolation and reports updates/sec + query p99",
    )
    _add_serve_flags(sl)
    sl.add_argument("--queries", type=int, default=1000,
                    help="minimum verified path queries across readers")
    sl.add_argument("--readers", type=int, default=2,
                    help="concurrent reader threads")
    _add_obs_flags(sl)
    return p


def _add_serve_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("graph", nargs="?", default=None,
                     help="edge-list file (default: synthetic road, n=2000)")
    sub.add_argument("--source", type=int, default=0)
    sub.add_argument("--edits", type=int, default=200,
                     help="total edge edits fed through the service")
    sub.add_argument("--batch-size", type=int, default=25,
                     help="edits per generated feed step")
    sub.add_argument("--flush-size", type=int, default=64,
                     help="coalescer size trigger (edits per applied batch)")
    sub.add_argument("--flush-latency", type=float, default=0.02,
                     help="coalescer latency trigger in seconds")
    sub.add_argument("--max-pending", type=int, default=4096,
                     help="ingest back-pressure bound")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--engine", default="serial",
                     choices=("serial", "threads", "shm", "partitioned"))
    sub.add_argument("--threads", type=int, default=4)
    sub.add_argument("--partitions", type=int, default=2)
    sub.add_argument(
        "--insert-fraction", type=float, default=0.7,
        help="fraction of the feed that inserts edges (rest deletes / "
        "re-weights)",
    )
    sub.add_argument("--weight-change-fraction", type=float, default=0.15)
    sub.add_argument(
        "--min-dispatch-items", type=int, default=None,
        help="shm inline threshold override (see update-demo)",
    )


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record superstep spans; write a Chrome trace-event JSON "
        "file (or JSONL span log when PATH ends in .jsonl)",
    )
    sub.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect algorithm metrics; write Prometheus text format",
    )


def _load(path: str) -> DiGraph:
    return read_edge_list(path)


def _cmd_info(args, out) -> int:
    print(f"repro {__version__}", file=out)
    print("paper: Khanda, Shovan & Das, SC-W 2023 "
          "(doi:10.1145/3624062.3625134)", file=out)
    print("algorithms: sosp_update (Alg 1), mosp_update (Alg 2), "
          "sosp_update_mixed (fully dynamic), IncrementalMOSP", file=out)
    print("baselines: dijkstra, bellman_ford (3 variants), "
          "delta_stepping, martins, weighted_sum", file=out)
    print("engines: serial, threads, processes, shm, simulated, "
          "partitioned", file=out)
    print(f"observability: tracer {get_tracer().describe()}, "
          f"clock {CLOCK_SOURCE}, "
          f"exporters {', '.join(EXPORTERS)}", file=out)
    caps = engine_observability()
    print("worker spans: "
          + ", ".join(f"{name} {cap}" for name, cap in sorted(caps.items())),
          file=out)
    return 0


def _cmd_generate(args, out) -> int:
    if args.family == "road":
        g = road_like(args.n, k=args.k, seed=args.seed)
    elif args.family == "rgg":
        g = random_geometric(args.n, k=args.k, seed=args.seed)
    else:
        m = args.m if args.m is not None else 4 * args.n
        g = erdos_renyi(args.n, m, k=args.k, seed=args.seed)
    write_edge_list(g, args.output)
    print(f"wrote {g.num_vertices} vertices / {g.num_edges} edges "
          f"(k={g.num_objectives}) to {args.output}", file=out)
    return 0


def _cmd_sssp(args, out) -> int:
    g = _load(args.graph)
    dist, parent = recompute_sssp(
        g, args.source, args.objective, args.algorithm
    )
    reachable = int(np.isfinite(dist).sum())
    finite = dist[np.isfinite(dist)]
    print(f"source {args.source}: {reachable}/{g.num_vertices} reachable, "
          f"max dist {finite.max():.4g}" if reachable
          else "source reaches nothing", file=out)
    if args.target is not None:
        tree = SOSPTree(args.source, dist, parent, args.objective)
        path = tree.path_to(args.target)
        print("path:", " -> ".join(map(str, path)), file=out)
        print(f"distance: {dist[args.target]:.6g}", file=out)
    return 0


def _cmd_mosp(args, out) -> int:
    g = _load(args.graph)
    engine = resolve_engine(args.engine, threads=args.threads)
    trees = [
        SOSPTree.build(g, args.source, objective=i)
        for i in range(g.num_objectives)
    ]
    r = mosp_update(g, trees, engine=engine,
                    weighting=args.weighting, priorities=args.priorities)
    path = r.path_to(args.target)
    print("path:", " -> ".join(map(str, path)), file=out)
    print("cost:", np.round(r.cost_to(args.target), 6).tolist(), file=out)
    for i, t in enumerate(trees):
        print(f"objective {i} optimum: {t.dist[args.target]:.6g}",
              file=out)
    return 0


def _cmd_update_demo(args, out) -> int:
    tracer = get_tracer()
    with tracer.span("setup.load") as sp_load:
        g = _load(args.graph) if args.graph else road_like(2000, k=1,
                                                           seed=args.seed)
        sp_load.set(vertices=g.num_vertices, edges=g.num_edges)
    if g.num_objectives != 1:
        # demo drives Algorithm 1 directly; use the first objective
        pass
    if args.engine == "partitioned":
        inner_options = (
            {} if args.min_dispatch_items is None
            else {"min_dispatch_items": int(args.min_dispatch_items)}
        )
        engine = resolve_engine(PartitionedEngine(
            threads=args.threads, partitions=args.partitions,
            inner_options=inner_options))
    elif args.engine == "shm" and args.min_dispatch_items is not None:
        engine = resolve_engine(SharedMemoryEngine(
            threads=args.threads,
            min_dispatch_items=int(args.min_dispatch_items)))
    else:
        engine = resolve_engine(args.engine, threads=args.threads)
    with tracer.span("setup.build_tree"):
        tree = SOSPTree.build(g, args.source)
    # slab-dispatch engines (shm) only parallelise the vectorised CSR
    # kernels — route through them with an incrementally maintained
    # snapshot so --engine shm exercises the shared-memory path instead
    # of silently falling back to per-edge Python; partitioned engines
    # shard the same snapshot into per-pool sub-CSRs
    use_csr = bool(
        getattr(engine, "supports_slab_dispatch", False)
        or getattr(engine, "supports_partitioned_update", False)
    )
    with tracer.span("setup.snapshot", csr=use_csr):
        snapshot = CSRGraph.from_digraph(g) if use_csr else None
    print(f"graph: {g.num_vertices} vertices, {g.num_edges} edges "
          f"(engine: {engine.name}"
          f"{', csr kernels' if use_csr else ''})", file=out)
    mixed = (
        args.insert_fraction < 1.0 or args.weight_change_fraction > 0.0
    )
    for step in range(1, args.steps + 1):
        with tracer.span("setup.batch", step=step):
            if mixed:
                batch = random_mixed_batch(
                    g, args.batch_size, seed=args.seed + step,
                    insert_fraction=args.insert_fraction,
                    weight_change_fraction=args.weight_change_fraction,
                )
            else:
                batch = random_insert_batch(g, args.batch_size,
                                            seed=args.seed + step)
            batch.apply_to(g)
            if snapshot is not None:
                if mixed:
                    snapshot.apply_batch(batch)
                else:
                    snapshot.append_batch(batch)
        if mixed:
            stats = apply_mixed_batch(g, tree, batch, engine=engine,
                                      use_csr_kernels=use_csr,
                                      csr=snapshot)
            extra = (f", {stats.invalidated} invalidated"
                     f" (-{batch.num_deletions}"
                     f" ~{batch.num_weight_changes} edges)")
        else:
            stats = sosp_update(g, tree, batch, engine=engine,
                                use_csr_kernels=use_csr, csr=snapshot)
            extra = ""
        print(
            f"step {step}: +{batch.num_insertions} edges{extra}, "
            f"{stats.affected_total} improvements over "
            f"{stats.iterations} iterations, "
            f"{stats.relaxations} relaxations", file=out,
        )
    closer = getattr(engine, "close", None)
    if callable(closer):
        with tracer.span("teardown.close"):
            closer()  # release pool workers / shared segments promptly
    return 0


def _serve_engine(args):
    """Engine instance for serve/serve-load (update-demo's rules)."""
    if args.engine == "partitioned":
        inner_options = (
            {} if args.min_dispatch_items is None
            else {"min_dispatch_items": int(args.min_dispatch_items)}
        )
        return resolve_engine(PartitionedEngine(
            threads=args.threads, partitions=args.partitions,
            inner_options=inner_options))
    if args.engine == "shm" and args.min_dispatch_items is not None:
        return resolve_engine(SharedMemoryEngine(
            threads=args.threads,
            min_dispatch_items=int(args.min_dispatch_items)))
    return resolve_engine(args.engine, threads=args.threads)


def _make_service(args):
    from repro.service import UpdateService

    g = _load(args.graph) if args.graph else road_like(2000, k=1,
                                                       seed=args.seed)
    engine = _serve_engine(args)
    service = UpdateService(
        g, args.source, engine=engine,
        flush_size=args.flush_size, flush_latency=args.flush_latency,
        max_pending=args.max_pending,
    )
    return service, engine


def _cmd_serve(args, out) -> int:
    from itertools import islice

    from repro.dynamic.feed import stream_edits
    from repro.dynamic.stream import ChangeStream
    from repro.obs.clock import perf

    service, engine = _make_service(args)
    g = service.graph
    print(f"serving: {g.num_vertices} vertices, {g.num_edges} edges "
          f"(engine: {engine.name}, flush {args.flush_size} edits / "
          f"{args.flush_latency * 1000:.0f} ms)", file=out)
    replica = g.copy()
    steps = max(1, -(-args.edits // max(1, args.batch_size)))
    stream = ChangeStream(
        replica, batch_size=max(1, args.batch_size), steps=steps,
        insert_fraction=args.insert_fraction,
        weight_change_fraction=args.weight_change_fraction,
        seed=args.seed,
    )
    service.start()
    t0 = perf()
    offered = 0
    for edit in islice(stream_edits(stream), args.edits):
        service.submit(edit)
        offered += 1
    drained = service.drain(timeout=300.0)
    wall = perf() - t0
    clean = service.stop(drain=True)
    closer = getattr(engine, "close", None)
    if callable(closer):
        closer()  # the CLI owns the engine instance, not the service
    snap = service.snapshot()
    rate = service.edits_applied / wall if wall > 0 else 0.0
    print(f"ingested {offered} edits -> {service.batches_applied} batches "
          f"-> {service.epochs_published} epochs "
          f"({rate:.0f} edits/s sustained)", file=out)
    print(f"final epoch {snap.epoch}: digest {snap.digest[:12]}, "
          f"drain {'clean' if drained else 'TIMED OUT'}, "
          f"stop {'clean' if clean else 'UNCLEAN'}, "
          f"state {service.state}", file=out)
    if service.error is not None:
        print(f"service error: {service.error}", file=out)
        return 1
    return 0 if (drained and clean) else 1


def _cmd_serve_load(args, out) -> int:
    from repro.service import run_load

    service, engine = _make_service(args)
    g = service.graph
    print(f"serving: {g.num_vertices} vertices, {g.num_edges} edges "
          f"(engine: {engine.name}, {args.readers} readers)", file=out)
    service.start()
    report = run_load(
        service, edits=args.edits, queries=args.queries,
        readers=args.readers, batch_size=args.batch_size, seed=args.seed,
        insert_fraction=args.insert_fraction,
        weight_change_fraction=args.weight_change_fraction,
    )
    clean_stop = service.stop(drain=True)
    closer = getattr(engine, "close", None)
    if callable(closer):
        closer()  # the CLI owns the engine instance, not the service
    print(f"writes: {report.edits_applied}/{report.edits_offered} edits "
          f"applied over {report.epochs} epochs "
          f"({report.updates_per_sec:.0f} updates/s sustained)", file=out)
    print(f"reads: {report.queries} verified queries, "
          f"p50 {report.query_p50_s * 1e6:.0f} us, "
          f"p99 {report.query_p99_s * 1e6:.0f} us", file=out)
    print(f"isolation: {report.torn_reads} torn reads, "
          f"{report.reader_errors} reader errors, "
          f"drain {'clean' if report.drained else 'TIMED OUT'}, "
          f"stop {'clean' if clean_stop else 'UNCLEAN'}", file=out)
    if service.error is not None:
        print(f"service error: {service.error}", file=out)
    return 0 if (report.clean and clean_stop) else 1


_COMMANDS = {
    "info": _cmd_info,
    "generate": _cmd_generate,
    "sssp": _cmd_sssp,
    "mosp": _cmd_mosp,
    "update-demo": _cmd_update_demo,
    "serve": _cmd_serve,
    "serve-load": _cmd_serve_load,
}


def _run_with_obs(args, out) -> int:
    """Run the command under a recording tracer / enabled metrics
    registry (``--trace`` / ``--metrics``), then export."""
    tracer = Tracer(recording=True)
    with use_tracer(tracer), use_metrics():
        with tracer.span(f"cli.{args.command}"):
            code = _COMMANDS[args.command](args, out)
        registry = get_metrics()
    if args.trace is not None:
        spans = tracer.drain()
        if str(args.trace).endswith(".jsonl"):
            n = export_jsonl(spans, args.trace)
            print(f"wrote {n} spans to {args.trace}", file=out)
        else:
            n = export_chrome_trace(spans, args.trace, metrics=registry)
            print(f"wrote {n} trace events to {args.trace}", file=out)
    if args.metrics is not None:
        n = export_prometheus(registry, args.metrics)
        print(f"wrote {n} metric samples to {args.metrics}", file=out)
    return code


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "trace", None) or getattr(args, "metrics", None):
            return _run_with_obs(args, out)
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
