"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, algorithm, and engine inventory.
``generate``
    Write a synthetic network (road-like / rgg / erdos-renyi) as an
    edge list.
``sssp``
    Single-objective shortest paths over an edge-list file.
``mosp``
    One balanced (or priority-weighted) multi-objective path between
    two vertices of an edge-list file.
``update-demo``
    Play random insertion (or, with ``--insert-fraction`` /
    ``--weight-change-fraction``, mixed insert/delete/re-weight)
    batches over a file or synthetic network and report per-batch
    incremental-update statistics.

Every command reads/writes the edge-list format of
:mod:`repro.graph.io` (``u v w1 [.. wk]`` lines).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.core import SOSPTree, apply_mixed_batch, mosp_update, sosp_update
from repro.dynamic import random_insert_batch, random_mixed_batch
from repro.errors import ReproError
from repro.graph import (
    CSRGraph,
    DiGraph,
    erdos_renyi,
    random_geometric,
    road_like,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.obs import (
    CLOCK_SOURCE,
    EXPORTERS,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)
from repro.parallel import (
    PartitionedEngine,
    SharedMemoryEngine,
    engine_observability,
    resolve_engine,
)
from repro.sssp import recompute_sssp

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel single/multi-objective shortest-path updates in "
            "dynamic networks (Khanda, Shovan & Das, SC-W 2023)"
        ),
    )
    p.add_argument("--version", action="version",
                   version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and engine inventory")

    g = sub.add_parser("generate", help="write a synthetic network")
    g.add_argument("family", choices=("road", "rgg", "er"))
    g.add_argument("output", help="edge-list path to write")
    g.add_argument("-n", type=int, default=1000, help="vertex count")
    g.add_argument("-m", type=int, default=None,
                   help="edge count (er only; default 4n)")
    g.add_argument("-k", type=int, default=2, help="objectives per edge")
    g.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("sssp", help="single-objective shortest paths")
    s.add_argument("graph", help="edge-list file")
    s.add_argument("--source", type=int, default=0)
    s.add_argument("--objective", type=int, default=0)
    s.add_argument("--algorithm", default="dijkstra",
                   choices=("dijkstra", "bellman_ford", "delta_stepping"))
    s.add_argument("--target", type=int, default=None,
                   help="print the path to this vertex")
    _add_obs_flags(s)

    m = sub.add_parser("mosp", help="one multi-objective shortest path")
    m.add_argument("graph", help="edge-list file")
    m.add_argument("--source", type=int, default=0)
    m.add_argument("--target", type=int, required=True)
    m.add_argument("--weighting", default="balanced",
                   choices=("balanced", "unit", "priority"))
    m.add_argument("--priorities", type=float, nargs="+", default=None)
    m.add_argument("--engine", default="serial",
                   choices=("serial", "threads", "simulated"))
    m.add_argument("--threads", type=int, default=4)
    _add_obs_flags(m)

    u = sub.add_parser("update-demo",
                       help="incremental updates over random batches")
    u.add_argument("graph", nargs="?", default=None,
                   help="edge-list file (default: synthetic road, n=2000)")
    u.add_argument("--source", type=int, default=0)
    u.add_argument("--steps", type=int, default=3)
    u.add_argument("--batch-size", type=int, default=50)
    u.add_argument("--seed", type=int, default=0)
    u.add_argument("--engine", default="serial",
                   choices=("serial", "threads", "processes", "shm",
                            "simulated", "partitioned"))
    u.add_argument("--threads", type=int, default=4)
    u.add_argument(
        "--partitions", type=int, default=2,
        help="shard count for --engine partitioned (one inner "
        "shared-memory pool of --threads workers per shard)",
    )
    u.add_argument(
        "--insert-fraction", type=float, default=1.0,
        help="fraction of each batch that inserts edges; the rest "
        "deletes (and re-weights, with --weight-change-fraction) live "
        "edges through the fully dynamic mixed pipeline",
    )
    u.add_argument(
        "--weight-change-fraction", type=float, default=0.0,
        help="fraction of each batch that re-weights live edges "
        "(requires insert fraction + weight-change fraction <= 1)",
    )
    u.add_argument(
        "--min-dispatch-items", type=int, default=None,
        help="override the shm engine's inline threshold (slab "
        "supersteps below it run inline on the master); pass 1 to "
        "force real worker dispatch on small demo graphs, e.g. for "
        "cross-process traces (applies to --engine shm and to the "
        "inner pools of --engine partitioned)",
    )
    _add_obs_flags(u)
    return p


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record superstep spans; write a Chrome trace-event JSON "
        "file (or JSONL span log when PATH ends in .jsonl)",
    )
    sub.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect algorithm metrics; write Prometheus text format",
    )


def _load(path: str) -> DiGraph:
    return read_edge_list(path)


def _cmd_info(args, out) -> int:
    print(f"repro {__version__}", file=out)
    print("paper: Khanda, Shovan & Das, SC-W 2023 "
          "(doi:10.1145/3624062.3625134)", file=out)
    print("algorithms: sosp_update (Alg 1), mosp_update (Alg 2), "
          "sosp_update_mixed (fully dynamic), IncrementalMOSP", file=out)
    print("baselines: dijkstra, bellman_ford (3 variants), "
          "delta_stepping, martins, weighted_sum", file=out)
    print("engines: serial, threads, processes, shm, simulated, "
          "partitioned", file=out)
    print(f"observability: tracer {get_tracer().describe()}, "
          f"clock {CLOCK_SOURCE}, "
          f"exporters {', '.join(EXPORTERS)}", file=out)
    caps = engine_observability()
    print("worker spans: "
          + ", ".join(f"{name} {cap}" for name, cap in sorted(caps.items())),
          file=out)
    return 0


def _cmd_generate(args, out) -> int:
    if args.family == "road":
        g = road_like(args.n, k=args.k, seed=args.seed)
    elif args.family == "rgg":
        g = random_geometric(args.n, k=args.k, seed=args.seed)
    else:
        m = args.m if args.m is not None else 4 * args.n
        g = erdos_renyi(args.n, m, k=args.k, seed=args.seed)
    write_edge_list(g, args.output)
    print(f"wrote {g.num_vertices} vertices / {g.num_edges} edges "
          f"(k={g.num_objectives}) to {args.output}", file=out)
    return 0


def _cmd_sssp(args, out) -> int:
    g = _load(args.graph)
    dist, parent = recompute_sssp(
        g, args.source, args.objective, args.algorithm
    )
    reachable = int(np.isfinite(dist).sum())
    finite = dist[np.isfinite(dist)]
    print(f"source {args.source}: {reachable}/{g.num_vertices} reachable, "
          f"max dist {finite.max():.4g}" if reachable
          else "source reaches nothing", file=out)
    if args.target is not None:
        tree = SOSPTree(args.source, dist, parent, args.objective)
        path = tree.path_to(args.target)
        print("path:", " -> ".join(map(str, path)), file=out)
        print(f"distance: {dist[args.target]:.6g}", file=out)
    return 0


def _cmd_mosp(args, out) -> int:
    g = _load(args.graph)
    engine = resolve_engine(args.engine, threads=args.threads)
    trees = [
        SOSPTree.build(g, args.source, objective=i)
        for i in range(g.num_objectives)
    ]
    r = mosp_update(g, trees, engine=engine,
                    weighting=args.weighting, priorities=args.priorities)
    path = r.path_to(args.target)
    print("path:", " -> ".join(map(str, path)), file=out)
    print("cost:", np.round(r.cost_to(args.target), 6).tolist(), file=out)
    for i, t in enumerate(trees):
        print(f"objective {i} optimum: {t.dist[args.target]:.6g}",
              file=out)
    return 0


def _cmd_update_demo(args, out) -> int:
    tracer = get_tracer()
    with tracer.span("setup.load") as sp_load:
        g = _load(args.graph) if args.graph else road_like(2000, k=1,
                                                           seed=args.seed)
        sp_load.set(vertices=g.num_vertices, edges=g.num_edges)
    if g.num_objectives != 1:
        # demo drives Algorithm 1 directly; use the first objective
        pass
    if args.engine == "partitioned":
        inner_options = (
            {} if args.min_dispatch_items is None
            else {"min_dispatch_items": int(args.min_dispatch_items)}
        )
        engine = resolve_engine(PartitionedEngine(
            threads=args.threads, partitions=args.partitions,
            inner_options=inner_options))
    elif args.engine == "shm" and args.min_dispatch_items is not None:
        engine = resolve_engine(SharedMemoryEngine(
            threads=args.threads,
            min_dispatch_items=int(args.min_dispatch_items)))
    else:
        engine = resolve_engine(args.engine, threads=args.threads)
    with tracer.span("setup.build_tree"):
        tree = SOSPTree.build(g, args.source)
    # slab-dispatch engines (shm) only parallelise the vectorised CSR
    # kernels — route through them with an incrementally maintained
    # snapshot so --engine shm exercises the shared-memory path instead
    # of silently falling back to per-edge Python; partitioned engines
    # shard the same snapshot into per-pool sub-CSRs
    use_csr = bool(
        getattr(engine, "supports_slab_dispatch", False)
        or getattr(engine, "supports_partitioned_update", False)
    )
    with tracer.span("setup.snapshot", csr=use_csr):
        snapshot = CSRGraph.from_digraph(g) if use_csr else None
    print(f"graph: {g.num_vertices} vertices, {g.num_edges} edges "
          f"(engine: {engine.name}"
          f"{', csr kernels' if use_csr else ''})", file=out)
    mixed = (
        args.insert_fraction < 1.0 or args.weight_change_fraction > 0.0
    )
    for step in range(1, args.steps + 1):
        with tracer.span("setup.batch", step=step):
            if mixed:
                batch = random_mixed_batch(
                    g, args.batch_size, seed=args.seed + step,
                    insert_fraction=args.insert_fraction,
                    weight_change_fraction=args.weight_change_fraction,
                )
            else:
                batch = random_insert_batch(g, args.batch_size,
                                            seed=args.seed + step)
            batch.apply_to(g)
            if snapshot is not None:
                if mixed:
                    snapshot.apply_batch(batch)
                else:
                    snapshot.append_batch(batch)
        if mixed:
            stats = apply_mixed_batch(g, tree, batch, engine=engine,
                                      use_csr_kernels=use_csr,
                                      csr=snapshot)
            extra = (f", {stats.invalidated} invalidated"
                     f" (-{batch.num_deletions}"
                     f" ~{batch.num_weight_changes} edges)")
        else:
            stats = sosp_update(g, tree, batch, engine=engine,
                                use_csr_kernels=use_csr, csr=snapshot)
            extra = ""
        print(
            f"step {step}: +{batch.num_insertions} edges{extra}, "
            f"{stats.affected_total} improvements over "
            f"{stats.iterations} iterations, "
            f"{stats.relaxations} relaxations", file=out,
        )
    closer = getattr(engine, "close", None)
    if callable(closer):
        with tracer.span("teardown.close"):
            closer()  # release pool workers / shared segments promptly
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "generate": _cmd_generate,
    "sssp": _cmd_sssp,
    "mosp": _cmd_mosp,
    "update-demo": _cmd_update_demo,
}


def _run_with_obs(args, out) -> int:
    """Run the command under a recording tracer / enabled metrics
    registry (``--trace`` / ``--metrics``), then export."""
    tracer = Tracer(recording=True)
    with use_tracer(tracer), use_metrics():
        with tracer.span(f"cli.{args.command}"):
            code = _COMMANDS[args.command](args, out)
        registry = get_metrics()
    if args.trace is not None:
        spans = tracer.drain()
        if str(args.trace).endswith(".jsonl"):
            n = export_jsonl(spans, args.trace)
            print(f"wrote {n} spans to {args.trace}", file=out)
        else:
            n = export_chrome_trace(spans, args.trace, metrics=registry)
            print(f"wrote {n} trace events to {args.trace}", file=out)
    if args.metrics is not None:
        n = export_prometheus(registry, args.metrics)
        print(f"wrote {n} metric samples to {args.metrics}", file=out)
    return code


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "trace", None) or getattr(args, "metrics", None):
            return _run_with_obs(args, out)
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
