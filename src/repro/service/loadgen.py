"""Mixed read/write load generator with torn-read verification.

Drives a running :class:`~repro.service.service.UpdateService` from
both sides at once: a producer feeds it a seeded stream of edge edits
(back-pressured through ``submit``), while reader threads hammer
:meth:`~repro.service.service.UpdateService.snapshot` with path/
distance queries.  Every reader *proves* snapshot isolation on every
query round:

- the held epoch's BLAKE2b digest must re-verify (bytes unchanged
  since publication — no torn read), and
- its arrays must still refuse writes (immutability was not lost on
  the way through an engine wrapper).

The result is a :class:`LoadReport` with sustained updates/sec and
query latency percentiles — the numbers the service benchmark ledgers
and the CI smoke job assert on.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.dynamic.feed import stream_edits
from repro.dynamic.stream import ChangeStream
from repro.errors import ReproError
from repro.obs.clock import perf
from repro.obs.metrics import percentile
from repro.service.service import ServiceState, UpdateService

__all__ = ["LoadReport", "run_load"]


class LoadReport:
    """Outcome of one load-generator run (all fields public)."""

    __slots__ = (
        "edits_offered", "edits_applied", "epochs", "queries",
        "torn_reads", "reader_errors", "wall_seconds",
        "updates_per_sec", "query_p50_s", "query_p99_s", "drained",
    )

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    @property
    def clean(self) -> bool:
        """True iff the run proved the service's guarantees."""
        return bool(
            self.torn_reads == 0 and self.reader_errors == 0 and self.drained
        )

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LoadReport({self.to_dict()!r})"


def _reader(
    service: UpdateService,
    rng: np.random.Generator,
    stop: threading.Event,
    target: int,
    counters: Dict[str, int],
    latencies: List[float],
    lock: threading.Lock,
) -> None:
    n = service.snapshot().num_vertices
    while True:
        with lock:
            if counters["queries"] >= target and stop.is_set():
                return
        snap = service.snapshot()
        v = int(rng.integers(0, n))
        t0 = perf()
        torn = 0
        errors = 0
        try:
            d = snap.distance(v)
            if np.isfinite(d):
                snap.path_to(v)
        except Exception:  # repro: noqa(R003) - counted; any error fails report.clean loudly
            errors += 1
        dt = perf() - t0
        # the isolation proof: held-epoch bytes unchanged + still frozen
        if not snap.verify():
            torn += 1
        if snap.dist.flags.writeable or snap.parent.flags.writeable:
            torn += 1
        with lock:
            counters["queries"] += 1
            counters["torn"] += torn
            counters["errors"] += errors
            latencies.append(dt)


def run_load(
    service: UpdateService,
    *,
    edits: int = 200,
    queries: int = 1000,
    readers: int = 2,
    batch_size: int = 25,
    seed: int = 0,
    insert_fraction: float = 0.7,
    weight_change_fraction: float = 0.15,
    submit_timeout: Optional[float] = 30.0,
    drain_timeout: Optional[float] = 120.0,
) -> LoadReport:
    """Drive ``edits`` writes and ``>= queries`` verified reads.

    The service must already be running.  Edits are generated against a
    private replica of the service's graph (the service's copy is
    writer-thread-owned), so generation sees the evolving topology
    without racing the writer.
    """
    if service.state != ServiceState.RUNNING:
        raise ReproError(
            f"run_load needs a running service, got {service.state!r}"
        )
    replica = service.graph.copy()
    steps = max(1, -(-edits // max(1, batch_size)))
    stream = ChangeStream(
        replica, batch_size=max(1, batch_size), steps=steps,
        insert_fraction=insert_fraction,
        weight_change_fraction=weight_change_fraction, seed=seed,
    )
    edit_iter = itertools.islice(stream_edits(stream), edits)

    stop = threading.Event()
    lock = threading.Lock()
    counters = {"queries": 0, "torn": 0, "errors": 0}
    latencies: List[float] = []
    threads = [
        threading.Thread(
            target=_reader,
            args=(service, np.random.default_rng(seed + 1 + i), stop,
                  queries, counters, latencies, lock),
            name=f"repro-loadgen-reader-{i}",
            daemon=True,
        )
        for i in range(max(1, readers))
    ]
    for t in threads:
        t.start()

    offered = 0
    t0 = perf()
    for edit in edit_iter:
        try:
            if not service.submit(edit, timeout=submit_timeout):
                break  # back-pressure timeout: report what we sustained
        except ReproError:
            break  # service failed/stopped mid-run; the report shows it
        offered += 1
    drained = service.drain(timeout=drain_timeout)
    wall = perf() - t0

    stop.set()
    for t in threads:
        t.join(timeout=60.0)
    with lock:
        lat = sorted(latencies)
        report = LoadReport(
            edits_offered=offered,
            edits_applied=service.edits_applied,
            epochs=service.epochs_published,
            queries=counters["queries"],
            torn_reads=counters["torn"],
            reader_errors=counters["errors"],
            wall_seconds=wall,
            updates_per_sec=(
                service.edits_applied / wall if wall > 0 else 0.0
            ),
            query_p50_s=percentile(lat, 0.50) if lat else 0.0,
            query_p99_s=percentile(lat, 0.99) if lat else 0.0,
            drained=drained,
        )
    return report
