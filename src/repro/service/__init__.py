"""Always-on update service: streaming ingest over the update kernels.

The paper's setting is a *rapidly growing* network whose change
batches arrive continuously; the repo's CLI commands, by contrast, run
one batch sequence and exit.  This package is the long-lived middle
layer (ROADMAP item 2): an :class:`~repro.service.service.UpdateService`
that

1. **ingests** individual :class:`~repro.dynamic.feed.EdgeEdit` events
   into a bounded, back-pressured queue,
2. **coalesces** them into :class:`~repro.dynamic.changes.ChangeBatch`
   batches on size- and latency-triggers
   (:class:`~repro.service.coalesce.Coalescer` — the BatchHL-style
   batch-dynamic serving shape), and
3. **applies** each batch through ``sosp_update`` /
   ``apply_mixed_batch`` on a single writer thread, publishing an
   epoch-stamped immutable :class:`~repro.service.snapshot.EpochSnapshot`
   of dist/parent after every batch,

so concurrent path queries never block on — or observe a torn — update
(MVCC: readers pin an epoch, writers publish the next one).
:mod:`repro.service.loadgen` drives a mixed read/write load against a
running service and verifies the torn-read guarantee end to end.
"""

from repro.service.coalesce import Coalescer
from repro.service.loadgen import LoadReport, run_load
from repro.service.service import ServiceState, UpdateService
from repro.service.snapshot import EpochSnapshot

__all__ = [
    "Coalescer",
    "EpochSnapshot",
    "LoadReport",
    "ServiceState",
    "UpdateService",
    "run_load",
]
