"""Size- and latency-triggered coalescing of edge edits into batches.

The ingest half of the service: producers :meth:`~Coalescer.offer`
individual edits into a bounded buffer; the single writer thread
:meth:`~Coalescer.take`\\ s them back as flush groups.  A flush is cut
when either

- **size**: ``flush_size`` edits are pending (a full batch amortises
  one update pass over many edits — the batch-dynamic model), or
- **latency**: the oldest pending edit has waited ``flush_latency``
  seconds (a trickle of edits must still reach readers promptly).

The buffer is bounded at ``max_pending``: a producer that outruns the
writer blocks in ``offer`` (or times out) instead of growing the queue
without limit — back-pressure, not buffering, is the overload story.

Timing goes through :func:`repro.obs.clock.perf`, the sanctioned
monotonic clock (rule R005 keeps raw ``time.*`` reads out of service
code).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.dynamic.feed import EdgeEdit
from repro.errors import ReproError
from repro.obs.clock import perf

__all__ = ["Coalescer"]


class Coalescer:
    """Bounded edit buffer with size/latency flush triggers."""

    def __init__(
        self,
        flush_size: int = 128,
        flush_latency: float = 0.05,
        max_pending: int = 4096,
    ) -> None:
        if flush_size < 1:
            raise ReproError(f"flush_size must be >= 1, got {flush_size}")
        if flush_latency <= 0:
            raise ReproError(
                f"flush_latency must be > 0, got {flush_latency}"
            )
        if max_pending < flush_size:
            raise ReproError(
                f"max_pending ({max_pending}) must be >= flush_size "
                f"({flush_size})"
            )
        self.flush_size = int(flush_size)
        self.flush_latency = float(flush_latency)
        self.max_pending = int(max_pending)
        self._edits: Deque[Tuple[float, EdgeEdit]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.offered_total = 0
        self.rejected_total = 0

    # ----------------------------------------------------------- state
    @property
    def depth(self) -> int:
        """Edits currently pending (the queue-depth gauge reads this)."""
        return len(self._edits)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------- producers
    def offer(
        self, edit: EdgeEdit, timeout: Optional[float] = None
    ) -> bool:
        """Enqueue one edit; block while the buffer is full.

        Returns ``True`` on acceptance, ``False`` when the buffer
        stayed full for ``timeout`` seconds (the producer's overload
        signal).  Raises :class:`ReproError` once the coalescer is
        closed — a drained service must not silently swallow edits.
        """
        with self._cond:
            if timeout is None:
                while len(self._edits) >= self.max_pending:
                    if self._closed:
                        break
                    self._cond.wait()
            else:
                deadline = perf() + float(timeout)
                while len(self._edits) >= self.max_pending:
                    if self._closed:
                        break
                    remaining = deadline - perf()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self.rejected_total += 1
                        return False
            if self._closed:
                raise ReproError("offer() on a closed coalescer")
            self._edits.append((perf(), edit))
            self.offered_total += 1
            self._cond.notify_all()
            return True

    # ---------------------------------------------------------- writer
    def take(self, timeout: Optional[float] = None) -> List[EdgeEdit]:
        """Wait for a flush trigger; return the flushed edits.

        Cuts at most ``flush_size`` edits (FIFO).  An empty list means
        the wait timed out with no trigger, or the coalescer is closed
        and fully drained — the writer's signal to exit its loop.
        """
        with self._cond:
            deadline = None if timeout is None else perf() + float(timeout)
            while True:
                n = len(self._edits)
                if n >= self.flush_size:
                    break
                if self._closed:
                    break  # flush whatever remains, then []
                now = perf()
                if n:
                    age = now - self._edits[0][0]
                    if age >= self.flush_latency:
                        break
                    wait = self.flush_latency - age
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return []
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)
            out = [
                self._edits.popleft()[1]
                for _ in range(min(self.flush_size, len(self._edits)))
            ]
            if out:
                self._cond.notify_all()  # wake producers blocked on full
            return out

    def close(self) -> None:
        """Stop accepting edits; pending ones remain takeable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
