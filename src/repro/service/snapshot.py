"""Epoch-stamped immutable read snapshots of the SOSP tree (MVCC).

A snapshot is the unit readers hold: frozen (``writeable=False``)
copies of ``dist``/``parent`` plus the epoch number and the CSR stamp
of the graph state they were computed against.  The writer publishes a
new snapshot after every applied batch by swapping one attribute — an
atomic reference store — so a reader either sees the old epoch in full
or the new epoch in full, never a mix.

Each snapshot carries a BLAKE2b digest of its payload taken at publish
time; :meth:`EpochSnapshot.verify` recomputes it, which is how the
load generator (and the property tests) prove the absence of torn
reads rather than assert it.
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.types import FloatArray, IntArray

__all__ = ["EpochSnapshot", "freeze", "payload_digest"]


def freeze(array: np.ndarray) -> np.ndarray:
    """An owning, read-only copy of ``array``."""
    out = np.array(array, copy=True)
    out.setflags(write=False)
    return out


def payload_digest(dist: FloatArray, parent: IntArray) -> str:
    """BLAKE2b hex digest over the snapshot payload bytes."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(dist).tobytes())
    h.update(np.ascontiguousarray(parent).tobytes())
    return h.hexdigest()


class EpochSnapshot:
    """One immutable epoch of the served shortest-path state.

    Parameters
    ----------
    epoch:
        Monotonically increasing publication counter (0 = the initial
        tree, before any batch).
    source:
        Source vertex of the tree.
    dist, parent:
        The tree arrays.  Copied and frozen unless they are already
        read-only (the shared-memory engine's
        ``publish_snapshot`` hands back pre-frozen arrays — no second
        copy).
    stamp:
        The CSR ``tail_stamp`` (or any state fingerprint) of the graph
        version this epoch reflects; ``None`` when the service runs
        without a CSR mirror.
    """

    __slots__ = ("epoch", "source", "dist", "parent", "stamp", "digest")

    def __init__(
        self,
        epoch: int,
        source: int,
        dist: FloatArray,
        parent: IntArray,
        stamp: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.epoch = int(epoch)
        self.source = int(source)
        self.dist = dist if not dist.flags.writeable else freeze(dist)
        self.parent = (
            parent if not parent.flags.writeable else freeze(parent)
        )
        self.stamp = stamp
        self.digest = payload_digest(self.dist, self.parent)

    # ------------------------------------------------------------- reads
    @property
    def num_vertices(self) -> int:
        return int(self.dist.shape[0])

    def distance(self, v: int) -> float:
        """The served distance to ``v`` in this epoch."""
        return float(self.dist[v])

    def path_to(self, v: int) -> List[int]:
        """Parent-chain path ``source -> v`` in this epoch.

        Raises :class:`ReproError` when ``v`` is unreachable in this
        epoch, and — defensively — when the parent chain does not
        terminate (a torn snapshot could cycle; an intact one cannot).
        """
        if not np.isfinite(self.dist[v]):
            raise ReproError(
                f"vertex {v} is unreachable in epoch {self.epoch}"
            )
        path = [int(v)]
        seen = 0
        while path[-1] != self.source:
            nxt = int(self.parent[path[-1]])
            if nxt < 0 or seen > self.num_vertices:
                raise ReproError(
                    f"broken parent chain at vertex {path[-1]} "
                    f"(epoch {self.epoch})"
                )
            path.append(nxt)
            seen += 1
        path.reverse()
        return path

    def verify(self) -> bool:
        """Recompute the payload digest; ``True`` iff untorn."""
        return payload_digest(self.dist, self.parent) == self.digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpochSnapshot(epoch={self.epoch}, n={self.num_vertices}, "
            f"digest={self.digest[:8]}…)"
        )
