"""The always-on update service: one writer, many lock-free readers.

Threading model
---------------
One **writer thread** owns every piece of mutable state — the graph,
the SOSP tree, the CSR mirror, the engine — and runs the ingest loop:
take a coalesced flush group, recompose it into a
:class:`~repro.dynamic.changes.ChangeBatch`, apply it (graph → CSR →
``sosp_update``/``apply_mixed_batch``), then publish the next
:class:`~repro.service.snapshot.EpochSnapshot`.  Publication is a
single attribute store of an immutable object, so **readers** call
:meth:`UpdateService.snapshot` without any lock and can hold the
returned epoch for as long as they like: its arrays are frozen copies
the writer never touches again (MVCC — readers pin versions, the
writer only ever creates new ones).

Lifecycle
---------
``NEW → RUNNING → DRAINING → STOPPED``, with ``FAILED`` reachable from
``RUNNING``/``DRAINING`` when a batch application raises.  A failed
service is *degraded, not gone*: the last good epoch keeps serving
reads, producers get an error instead of silent loss, and
:attr:`UpdateService.error` carries the cause.  ``stop(drain=True)``
closes ingest, lets the writer work the queue dry, joins it, and
releases the engine (when the service created it).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core import SOSPTree, apply_mixed_batch, sosp_update
from repro.dynamic.changes import KIND_INSERT, ChangeBatch
from repro.dynamic.feed import EdgeEdit, batch_of, edits_of
from repro.errors import ReproError
from repro.graph import CSRGraph, DiGraph
from repro.obs.clock import perf
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel import resolve_engine
from repro.service.coalesce import Coalescer
from repro.service.snapshot import EpochSnapshot

__all__ = ["ServiceState", "UpdateService"]


class ServiceState:
    """Lifecycle states (plain strings; comparable and printable)."""

    NEW = "new"
    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


class UpdateService:
    """Long-running ingest/apply/publish loop over one SOSP tree.

    Parameters
    ----------
    graph:
        The served network.  The service takes ownership: after
        :meth:`start`, only the writer thread may mutate it.
    source:
        Source vertex of the maintained tree.
    engine:
        An engine instance, or an engine name for
        :func:`~repro.parallel.resolve_engine` (the service closes
        engines it resolved itself; instances stay caller-owned).
    flush_size / flush_latency / max_pending:
        Coalescing policy — see :class:`~repro.service.coalesce.Coalescer`.
    """

    def __init__(
        self,
        graph: DiGraph,
        source: int = 0,
        *,
        engine: Union[str, Any] = "serial",
        threads: int = 4,
        flush_size: int = 128,
        flush_latency: float = 0.05,
        max_pending: int = 4096,
    ) -> None:
        self.graph = graph
        self.source = int(source)
        self._own_engine = isinstance(engine, str)
        self.engine = (
            resolve_engine(engine, threads=threads)
            if isinstance(engine, str) else engine
        )
        self._use_csr = bool(
            getattr(self.engine, "supports_slab_dispatch", False)
            or getattr(self.engine, "supports_partitioned_update", False)
        )
        self.tree = SOSPTree.build(graph, self.source)
        self.csr: Optional[CSRGraph] = (
            CSRGraph.from_digraph(graph) if self._use_csr else None
        )
        self.coalescer = Coalescer(
            flush_size=flush_size,
            flush_latency=flush_latency,
            max_pending=max_pending,
        )
        self.state = ServiceState.NEW
        self.error: Optional[BaseException] = None
        self.epochs_published = 0
        self.edits_applied = 0
        self.batches_applied = 0
        self._thread: Optional[threading.Thread] = None
        self._in_flight = 0
        self._idle = threading.Condition()
        self._snapshot: EpochSnapshot = self._freeze_epoch(0)

    # ------------------------------------------------------------ reads
    def snapshot(self) -> EpochSnapshot:
        """The current epoch — lock-free, immutable, holdable forever."""
        return self._snapshot

    @property
    def queue_depth(self) -> int:
        return self.coalescer.depth

    # -------------------------------------------------------- lifecycle
    def start(self) -> "UpdateService":
        if self.state != ServiceState.NEW:
            raise ReproError(
                f"start() in state {self.state!r}; services are "
                f"single-use (build a new one)"
            )
        self.state = ServiceState.RUNNING
        self._thread = threading.Thread(
            target=self._run, name="repro-update-service", daemon=True
        )
        self._thread.start()
        return self

    def submit(
        self, edit: EdgeEdit, timeout: Optional[float] = None
    ) -> bool:
        """Offer one edit; blocks under back-pressure.

        Returns ``False`` when the queue stayed full for ``timeout``
        seconds.  Raises once the service stopped accepting (drained,
        stopped, or failed).
        """
        if self.state not in (ServiceState.RUNNING,):
            raise ReproError(f"submit() in state {self.state!r}")
        return self.coalescer.offer(edit, timeout=timeout)

    def submit_batch(
        self, batch: ChangeBatch, timeout: Optional[float] = None
    ) -> int:
        """Offer every record of ``batch``; returns edits accepted."""
        accepted = 0
        for edit in edits_of(batch):
            if not self.submit(edit, timeout=timeout):
                break
            accepted += 1
        return accepted

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted edit is applied and published.

        Returns ``False`` on timeout (or when the writer failed before
        the queue emptied).  Producers should be quiet while draining —
        new edits extend the wait.
        """
        deadline = None if timeout is None else perf() + float(timeout)
        with self._idle:
            while True:
                if self.state == ServiceState.FAILED:
                    return False
                # exact accounting (not queue emptiness): an edit is
                # outstanding from the moment offer() accepted it until
                # the writer published its epoch, so the window where a
                # flush group left the queue but is still being applied
                # never reads as drained
                if self.edits_applied >= self.coalescer.offered_total:
                    return True
                if self.state == ServiceState.STOPPED:
                    return False
                wait = 0.5
                if deadline is not None:
                    remaining = deadline - perf()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._idle.wait(wait)

    def stop(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the service (idempotent); returns ``True`` on a clean
        drain-and-join.

        ``drain=True`` lets the writer work the queue dry first;
        ``drain=False`` abandons pending edits (they were never
        acknowledged as applied — the graph stays consistent with the
        last published epoch).  The engine is closed iff the service
        resolved it from a name.
        """
        if self.state in (ServiceState.STOPPED, ServiceState.NEW):
            if self.state == ServiceState.NEW:
                self.state = ServiceState.STOPPED
                self._close_engine()
            return True
        clean = True
        if self.state == ServiceState.RUNNING:
            self.state = (
                ServiceState.DRAINING if drain else ServiceState.STOPPED
            )
        self.coalescer.close()
        if self._thread is not None:
            self._thread.join(timeout)
            clean = not self._thread.is_alive()
            self._thread = None
        if self.state != ServiceState.FAILED:
            self.state = ServiceState.STOPPED
        self._close_engine()
        return clean and self.state == ServiceState.STOPPED

    def _close_engine(self) -> None:
        closer = getattr(self.engine, "close", None)
        if self._own_engine and callable(closer):
            closer()

    # ------------------------------------------------------ writer side
    def _run(self) -> None:
        tracer = get_tracer()
        metrics = get_metrics()
        depth_gauge = metrics.gauge(
            "service_queue_depth", "edits pending in the ingest coalescer"
        )
        batch_hist = metrics.histogram(
            "service_batch_seconds", "apply+publish seconds per flush group"
        )
        epoch_counter = metrics.counter(
            "service_epochs_total", "snapshots published since start"
        )
        edit_counter = metrics.counter(
            "service_edits_total", "edge edits applied since start"
        )
        try:
            while True:
                edits = self.coalescer.take(timeout=0.1)
                depth_gauge.set(float(self.coalescer.depth))
                if not edits:
                    if self.coalescer.closed and self.coalescer.depth == 0:
                        break
                    if (
                        self.state == ServiceState.STOPPED
                    ):  # stop(drain=False): abandon the queue
                        break
                    with self._idle:
                        self._idle.notify_all()
                    continue
                with self._idle:
                    self._in_flight = len(edits)
                t0 = perf()
                with tracer.span(
                    "service.batch", edits=len(edits),
                    epoch=self.epochs_published + 1,
                ):
                    self._apply(edits)
                    self._publish()
                batch_hist.observe(perf() - t0)
                epoch_counter.inc()
                edit_counter.inc(float(len(edits)))
                self.edits_applied += len(edits)
                self.batches_applied += 1
                with self._idle:
                    self._in_flight = 0
                    self._idle.notify_all()
        except BaseException as exc:  # repro: noqa(R003) - captured on self.error; state goes FAILED, producers get errors
            self.error = exc
            self.state = ServiceState.FAILED
            self.coalescer.close()
            with self._idle:
                self._in_flight = 0
                self._idle.notify_all()

    def _apply(self, edits: List[EdgeEdit]) -> None:
        batch = batch_of(edits, k=self.graph.num_objectives)
        insert_only = bool((batch.kind == KIND_INSERT).all())
        batch.apply_to(self.graph)
        if self.csr is not None:
            if insert_only:
                self.csr.append_batch(batch)
            else:
                self.csr.apply_batch(batch)
        if insert_only:
            sosp_update(
                self.graph, self.tree, batch, engine=self.engine,
                use_csr_kernels=self._use_csr, csr=self.csr,
            )
        else:
            apply_mixed_batch(
                self.graph, self.tree, batch, engine=self.engine,
                use_csr_kernels=self._use_csr, csr=self.csr,
            )

    def _freeze_epoch(self, epoch: int) -> EpochSnapshot:
        stamp: Optional[Tuple[Any, ...]] = (
            self.csr.tail_stamp if self.csr is not None else ("epoch", epoch)
        )
        publish = getattr(self.engine, "publish_snapshot", None)
        if callable(publish):
            arrays: Dict[str, Any] = publish(
                {"dist": self.tree.dist, "parent": self.tree.parent}, stamp
            )
            return EpochSnapshot(
                epoch, self.source, arrays["dist"], arrays["parent"], stamp
            )
        return EpochSnapshot(
            epoch, self.source, self.tree.dist, self.tree.parent, stamp
        )

    def _publish(self) -> None:
        snap = self._freeze_epoch(self.epochs_published + 1)
        # single reference store: readers see the old epoch or this one
        self._snapshot = snap
        self.epochs_published += 1

    # ------------------------------------------------------------ sugar
    def __enter__(self) -> "UpdateService":
        return self.start() if self.state == ServiceState.NEW else self

    def __exit__(self, *exc: object) -> None:
        self.stop(drain=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateService(state={self.state}, "
            f"epoch={self._snapshot.epoch}, depth={self.queue_depth}, "
            f"engine={getattr(self.engine, 'name', self.engine)!r})"
        )
