"""The sanctioned clock: the only place algorithm-adjacent code reads time.

Rule R005 confines wall-clock reads to ``repro/bench/`` (measured
experiment timestamps) and this package (span timing).  Everything in
``repro/core`` and friends that needs a duration opens a
:class:`~repro.obs.tracer.Tracer` span instead of calling
``time.perf_counter`` directly, so *modeled* time (the simulated
engine's virtual clock) and *profiled* time (spans) cannot be confused
and the clock source is swappable in exactly one place.
"""

from __future__ import annotations

import time

__all__ = ["perf", "wall", "SOURCE"]

#: Human-readable name of the span clock (``repro info`` reports it).
SOURCE = "time.perf_counter"


def perf() -> float:
    """Monotonic high-resolution seconds; the span clock."""
    return time.perf_counter()


def wall() -> float:
    """Wall-clock epoch seconds; exporter timestamps only."""
    return time.time()
