"""Observability: superstep tracing, metrics, and exporters.

Zero-dependency subsystem answering the paper's evaluation question —
*where does the time go?* — for every run, not just the bench harness:

- :mod:`repro.obs.tracer` — nested spans (algorithm phase → superstep
  → worker task) with a passive default and a zero-cost
  ``REPRO_OBS=off`` mode;
- :mod:`repro.obs.engine` — :class:`TracedEngine`, one annotated span
  per ``parallel_for`` superstep on any backend (applied automatically
  by :func:`repro.parallel.api.resolve_engine` while a recording
  tracer is active);
- :mod:`repro.obs.metrics` — counters/gauges/histograms published once
  per kernel call from the existing stats objects;
- :mod:`repro.obs.export` — JSONL, Chrome trace-event JSON
  (Perfetto-loadable), and Prometheus text exporters, wired into the
  CLI via ``--trace``/``--metrics``;
- :mod:`repro.obs.collect` — cross-process collection: pool workers
  record spans/metric deltas into preallocated buffers and ship them
  back piggybacked on the engines' tagged replies, clock-aligned and
  re-parented under the dispatching superstep span at merge;
- :mod:`repro.obs.report` — ``python -m repro.obs report``, rolling a
  merged trace up into the paper's phase taxonomy (Step 1/2/3, seed,
  exchange, dispatch overhead, worker idle/skew).

See ``docs/OBSERVABILITY.md`` for the span/metric ↔ paper phase map.
"""

from repro.obs.clock import SOURCE as CLOCK_SOURCE
from repro.obs.collect import (
    WorkerCapture,
    WorkerReport,
    estimate_offset,
    merge_report,
    merge_reports,
    obs_header,
)
from repro.obs.engine import TracedEngine
from repro.obs.export import (
    EXPORTERS,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    parse_prometheus,
    read_jsonl,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.report import attribute_trace, load_trace, render_text
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CLOCK_SOURCE",
    "TracedEngine",
    "WorkerCapture",
    "WorkerReport",
    "estimate_offset",
    "merge_report",
    "merge_reports",
    "obs_header",
    "attribute_trace",
    "load_trace",
    "render_text",
    "EXPORTERS",
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "parse_prometheus",
    "read_jsonl",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
