"""Engine wrapper emitting one span per superstep, on any backend.

``TracedEngine`` wraps an :class:`~repro.parallel.api.Engine`
(including a :class:`~repro.parallel.checked.CheckedEngine` — the
sanitizer and the tracer compose) and annotates every
``parallel_for``/``map_reduce`` call — one superstep — with:

- ``phase``: the name of the enclosing algorithm span (e.g.
  ``sosp_update.step2``), read from the tracer's context;
- ``backend`` / ``threads``: the wrapped engine and its width;
- ``items``: superstep size;
- ``work_total`` / ``work_p50`` / ``work_p95`` / ``work_max``: the
  per-task work-unit distribution from the kernel's existing
  ``work_fn`` accounting — the straggler/imbalance signal of the
  paper's dynamic-scheduling discussion.

Task functions are wrapped in a picklable :class:`_TaskRunner` that
re-attaches the superstep span inside the worker, so spans opened by
task bodies reparent correctly even on pool threads that never saw the
caller's context.  Worker *processes* see their own default tracer, so
the attach is a harmless no-op there — their spans instead travel the
piggybacked collector protocol of :mod:`repro.obs.collect` and are
re-parented under the superstep span at merge time.  A superstep that
lost a worker and re-ran inline after rollback (the shm
``BrokenProcessPool`` path) is stamped ``recovery=true``, so crash
recoveries are visible in traces.

:func:`repro.parallel.api.resolve_engine` applies this wrapper
automatically whenever the active tracer is recording; algorithm code
never constructs it by hand.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.obs.metrics import get_metrics
from repro.obs.tracer import Span, current_span, get_tracer

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["TracedEngine"]


class _TaskRunner:
    """Picklable task shim: run ``fn`` with the superstep span attached."""

    __slots__ = ("fn", "span")

    def __init__(self, fn: Callable[[T], R], span: Span) -> None:
        self.fn = fn
        self.span = span

    def __call__(self, item: T) -> R:
        with get_tracer().attach(self.span):
            return self.fn(item)


class TracedEngine:
    """Wrap any engine so each superstep emits an annotated span."""

    def __init__(self, inner: Any) -> None:
        if isinstance(inner, TracedEngine):
            inner = inner.inner  # never stack tracers
        self.inner = inner

    @property
    def name(self) -> str:
        return f"traced({self.inner.name})"

    @property
    def threads(self) -> int:
        return int(self.inner.threads)

    def _superstep(
        self,
        op: str,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]],
        run: Callable[[Callable[[T], R]], List[R]],
    ) -> List[R]:
        tracer = get_tracer()
        enclosing = current_span()
        with tracer.span(
            "superstep",
            op=op,
            phase=enclosing.name if enclosing is not None else "",
            backend=self.inner.name,
            threads=self.threads,
            items=len(items),
        ) as sp:
            results = run(_TaskRunner(fn, sp))
            if getattr(self.inner, "last_superstep_recovery", False):
                sp.set(recovery=True)
            if work_fn is not None and results:
                costs = sorted(
                    float(work_fn(items[i], results[i]))
                    for i in range(len(items))
                )
                n = len(costs)
                sp.set(
                    work_total=sum(costs),
                    work_p50=costs[min(n - 1, round(0.50 * (n - 1)))],
                    work_p95=costs[min(n - 1, round(0.95 * (n - 1)))],
                    work_max=costs[-1],
                )
            m = get_metrics()
            if m.enabled:
                m.counter(
                    "engine_supersteps_total",
                    "parallel_for/map_reduce barriers executed",
                ).inc()
                m.histogram(
                    "engine_superstep_items",
                    "tasks per superstep",
                ).observe(len(items))
        return results

    def parallel_for(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> List[R]:
        return self._superstep(
            "parallel_for", items, fn, work_fn,
            lambda task: self.inner.parallel_for(items, task,
                                                 work_fn=work_fn),
        )

    def map_reduce(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        reduce_fn: Callable[[Any, R], Any],
        init: Any,
        work_fn: Optional[Callable[[T, R], float]] = None,
    ) -> Any:
        tracer = get_tracer()
        enclosing = current_span()
        with tracer.span(
            "superstep",
            op="map_reduce",
            phase=enclosing.name if enclosing is not None else "",
            backend=self.inner.name,
            threads=self.threads,
            items=len(items),
        ) as sp:
            return self.inner.map_reduce(
                items, _TaskRunner(fn, sp), reduce_fn, init,
                work_fn=work_fn,
            )

    def parallel_for_slabs(
        self,
        n_items: int,
        task: Any,
        work_fn: Optional[Callable[[Any, Any], float]] = None,
        min_chunk: int = 1,
    ) -> List[Any]:
        """Slab-dispatch fast path: one span per dispatched superstep.

        The work distribution is computed here from the backend's
        ``last_slab_spans`` — spans on the shm backend therefore report
        the same non-empty ``work_p50/p95/max`` the closure backends
        do, plus the dispatch payload size in bytes.  When the tracer
        is recording, the shm workers additionally record one
        ``worker.slab`` span per slab and ship them back piggybacked on
        the reply (:mod:`repro.obs.collect`); the merge re-parents them
        under this superstep span.  A superstep that lost a worker and
        re-ran inline after rollback is stamped ``recovery=true``.
        """
        tracer = get_tracer()
        enclosing = current_span()
        with tracer.span(
            "superstep",
            op="parallel_for_slabs",
            phase=enclosing.name if enclosing is not None else "",
            backend=self.inner.name,
            threads=self.threads,
            items=n_items,
        ) as sp:
            results = self.inner.parallel_for_slabs(
                n_items, task, work_fn=work_fn, min_chunk=min_chunk
            )
            if getattr(self.inner, "last_superstep_recovery", False):
                sp.set(recovery=True)
            spans = list(getattr(self.inner, "last_slab_spans", []) or [])
            sp.set(
                slabs=len(spans),
                dispatch_bytes=int(
                    getattr(self.inner, "last_dispatch_bytes", 0)
                ),
            )
            if work_fn is not None and results and len(spans) == len(results):
                costs = sorted(
                    float(work_fn(spans[i], results[i]))
                    for i in range(len(results))
                )
                n = len(costs)
                sp.set(
                    work_total=sum(costs),
                    work_p50=costs[min(n - 1, round(0.50 * (n - 1)))],
                    work_p95=costs[min(n - 1, round(0.95 * (n - 1)))],
                    work_max=costs[-1],
                )
            m = get_metrics()
            if m.enabled:
                m.counter(
                    "engine_supersteps_total",
                    "parallel_for/map_reduce barriers executed",
                ).inc()
                m.histogram(
                    "engine_superstep_items",
                    "tasks per superstep",
                ).observe(len(spans))
        return results

    def plant(self, name: str, array: Any, fingerprint: Any = None) -> Any:
        """Forward array planting to a shared-memory backend."""
        return self.inner.plant(name, array, fingerprint=fingerprint)

    def close(self) -> None:
        """Release the wrapped backend's pool/segments, if it has any."""
        inner_close = getattr(self.inner, "close", None)
        if callable(inner_close):
            inner_close()

    def charge(self, units: float) -> None:
        self.inner.charge(units)

    def __getattr__(self, attr: str) -> Any:
        # backend-specific surface (tracker, virtual_time, trace, ...)
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracedEngine({self.inner!r})"
