"""Cross-process span/metric collection for pool workers.

The slab spans of :class:`~repro.obs.engine.TracedEngine` used to stop
at the master: workers saw their own default (null) tracer, so the
shm/process/partitioned backends — which carry all real workloads —
were observability blind spots.  This module closes the gap without
adding a single IPC round trip:

1. **Opt-in header.**  When the master's active tracer is recording,
   :func:`obs_header` returns a tiny ``{"t_send": ...}`` dict that
   rides inside the existing dispatch payload.  With a passive or null
   tracer (``REPRO_OBS=off``) it returns ``None`` and both the dispatch
   payload and the tagged reply are byte-identical to the
   pre-collection protocol — zero growth, re-checked by the CI
   disabled-overhead gate.
2. **Worker capture.**  The worker wraps its chunk in a
   :class:`WorkerCapture`: a :class:`WorkerCollector` (a recording
   tracer whose sink is a *preallocated* :class:`SpanBuffer` — appends
   are index stores, never list growth, and overflow drops + counts
   instead of allocating) plus a fresh enabled
   :class:`~repro.obs.metrics.MetricsRegistry` whose final state is by
   construction the chunk's metric delta.
3. **Piggybacked reply.**  The capture's :class:`WorkerReport` —
   spans, metric deltas, the worker's receive/reply clock readings —
   returns inside the existing tagged reply (tag ``b"O"``), so the
   master pays one extra pickle field, not an extra message.
4. **Clock alignment + merge.**  Worker ``perf_counter`` epochs are
   not comparable across processes, so :func:`merge_report` estimates
   each worker's clock offset NTP-style from the four timestamps of
   the dispatch round trip (master send/done, worker receive/reply),
   rebases the spans onto the master clock, re-parents them under the
   dispatching superstep span (clamped so no merged span starts before
   its parent — the invariant ``validate_chrome_trace`` now checks),
   and aggregates the metric deltas into the session registry with
   ``worker``/``shard`` labels.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs import clock
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.tracer import Span, Tracer, get_tracer, set_tracer

__all__ = [
    "DEFAULT_CAPACITY",
    "SpanBuffer",
    "WorkerCollector",
    "WorkerReport",
    "WorkerCapture",
    "obs_header",
    "estimate_offset",
    "merge_report",
    "merge_reports",
]

#: Span slots preallocated per worker chunk.  A chunk executes a
#: handful of slabs, so 512 covers deep kernel nesting with room to
#: spare; overflow is counted, never grown.
DEFAULT_CAPACITY = 512


class SpanBuffer:
    """Fixed-capacity span sink with preallocated slots.

    ``append`` is an index store into a list allocated once up front —
    the hot path of a worker chunk never grows a container.  Appends
    past ``capacity`` increment :attr:`dropped` (surfaced master-side
    as ``worker_spans_dropped_total``) instead of allocating.
    """

    __slots__ = ("capacity", "dropped", "_slots", "_n")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ReproError(f"span buffer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.dropped = 0
        self._slots: List[Optional[Span]] = [None] * self.capacity
        self._n = 0

    def append(self, span: Span) -> None:
        if self._n < self.capacity:
            self._slots[self._n] = span
            self._n += 1
        else:
            self.dropped += 1

    def spans(self) -> List[Span]:
        """The recorded spans, in completion order."""
        return [s for s in self._slots[: self._n] if s is not None]

    def __len__(self) -> int:
        return self._n


class WorkerCollector(Tracer):
    """Recording tracer whose sink is a preallocated :class:`SpanBuffer`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        super().__init__(recording=True)
        self.buffer = SpanBuffer(capacity)

    def _record(self, span: Span) -> None:
        self.buffer.append(span)

    def drain(self) -> List[Span]:
        with self._lock:
            out = self.buffer.spans()
            fresh = SpanBuffer(self.buffer.capacity)
            # the drop count is cumulative for the collector's
            # lifetime: a capture that drains mid-chunk must still
            # report every span the full buffer refused, not reset
            # worker_spans_dropped_total back to zero
            fresh.dropped = self.buffer.dropped
            self.buffer = fresh
        return out

    def describe(self) -> str:
        return "collecting"


class WorkerReport:
    """One worker chunk's observability payload (picklable).

    ``t_recv``/``t_reply`` are the worker's own ``perf_counter``
    readings at chunk entry/exit; together with the master's
    send/done timestamps they drive :func:`estimate_offset`.
    """

    __slots__ = ("pid", "t_recv", "t_reply", "spans", "metrics", "dropped")

    def __init__(
        self,
        pid: int,
        t_recv: float,
        t_reply: float,
        spans: List[Dict[str, Any]],
        metrics: Dict[str, Tuple[str, Any]],
        dropped: int = 0,
    ) -> None:
        self.pid = pid
        self.t_recv = t_recv
        self.t_reply = t_reply
        self.spans = spans
        self.metrics = metrics
        self.dropped = dropped

    def __reduce__(self) -> Tuple[Any, ...]:
        return (
            WorkerReport,
            (self.pid, self.t_recv, self.t_reply, self.spans,
             self.metrics, self.dropped),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerReport(pid={self.pid}, spans={len(self.spans)}, "
            f"metrics={len(self.metrics)}, dropped={self.dropped})"
        )


class WorkerCapture:
    """Worker-side capture scope for one dispatched chunk.

    Entering installs the collector as the process tracer and a fresh
    enabled registry as the process metrics sink (both restored on
    exit); :meth:`task` wraps one unit of kernel work in a span and
    publishes the harness metrics (``worker_tasks_total``,
    ``worker_task_seconds``); :meth:`report` seals the chunk into a
    :class:`WorkerReport` for the tagged reply.
    """

    def __init__(self, header: Mapping[str, Any]) -> None:
        self.t_recv = clock.perf()
        capacity = int(header.get("capacity", DEFAULT_CAPACITY))
        self.collector = WorkerCollector(capacity=capacity)
        self.registry = MetricsRegistry(enabled=True)
        self._prev_tracer: Optional[Tracer] = None
        self._prev_metrics: Optional[MetricsRegistry] = None

    def __enter__(self) -> "WorkerCapture":
        self._prev_tracer = set_tracer(self.collector)
        self._prev_metrics = set_metrics(self.registry)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._prev_tracer is not None:
            set_tracer(self._prev_tracer)
        if self._prev_metrics is not None:
            set_metrics(self._prev_metrics)

    @contextmanager
    def task(self, name: str, **attrs: Any) -> Iterator[Span]:
        """One unit of worker kernel work: a span plus harness metrics."""
        with self.collector.span(name, **attrs) as sp:
            yield sp
        self.registry.counter(
            "worker_tasks_total", "kernel tasks executed inside pool workers"
        ).inc()
        self.registry.histogram(
            "worker_task_seconds", "per-task wall seconds inside pool workers"
        ).observe(sp.elapsed)

    def report(self) -> WorkerReport:
        return WorkerReport(
            pid=os.getpid(),
            t_recv=self.t_recv,
            t_reply=clock.perf(),
            spans=[sp.to_dict() for sp in self.collector.buffer.spans()],
            metrics=self.registry.deltas(),
            dropped=self.collector.buffer.dropped,
        )


def obs_header(capacity: int = DEFAULT_CAPACITY) -> Optional[Dict[str, float]]:
    """The dispatch-payload collection header, or ``None`` when off.

    ``None`` unless the master's active tracer is *recording* — the
    passive default and the ``REPRO_OBS=off`` null tracer both return
    ``None``, which keeps worker collection fully disabled and every
    dispatch/reply payload byte-identical to the pre-collection
    protocol.
    """
    if not get_tracer().recording:
        return None
    return {"t_send": clock.perf(), "capacity": float(capacity)}


def estimate_offset(
    t_send: float, t_recv: float, t_reply: float, t_done: float
) -> float:
    """Worker-clock minus master-clock estimate (two-sample NTP).

    With the master sending at ``t_send``/collecting at ``t_done`` and
    the worker receiving at ``t_recv``/replying at ``t_reply`` (each on
    its own monotonic clock), symmetric-delay cancellation gives the
    classic ``((t_recv - t_send) + (t_reply - t_done)) / 2``.  The
    estimate is exact up to dispatch asymmetry, which is bounded by the
    round trip — merged spans therefore always land inside the
    dispatching superstep's window.
    """
    return ((t_recv - t_send) + (t_reply - t_done)) / 2.0


def merge_report(
    report: WorkerReport,
    t_send: float,
    t_done: float,
    anchor: Optional[Span] = None,
    labels: Optional[Mapping[str, str]] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Merge one worker's report into the master's tracer/registry.

    Spans are rebased onto the master clock via
    :func:`estimate_offset`, given fresh master span ids (worker id
    counters collide across processes), re-parented — internal nesting
    preserved, top-level spans under ``anchor`` (the dispatching
    superstep span) — and clamped so no merged span starts before its
    anchor.  Metric deltas are folded into the registry with the
    worker's pid (and any caller ``labels``, e.g. the shard index)
    appended as labels.  Returns the number of spans merged.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics()
    offset = estimate_offset(t_send, report.t_recv, report.t_reply, t_done)
    all_labels: Dict[str, str] = dict(labels or {})
    all_labels["worker"] = str(report.pid)
    merged = 0
    if tracer.recording and report.spans:
        rows = [r for r in report.spans if r.get("end") is not None]
        # two passes: buffers record spans in completion order, so a
        # child's row precedes its parent's — ids must all exist before
        # parent links are resolved
        id_map: Dict[int, Span] = {
            int(r["span_id"]): Span(str(r["name"])) for r in rows
        }
        floor = anchor.start if anchor is not None else None
        for row in rows:
            sp = id_map[int(row["span_id"])]
            parent = (
                id_map.get(int(row["parent_id"]))
                if row.get("parent_id") is not None
                else None
            )
            if parent is not None:
                sp.parent_id = parent.span_id
            elif anchor is not None:
                sp.parent_id = anchor.span_id
            start = float(row["start"]) - offset
            end = float(row["end"]) - offset
            if floor is not None and start < floor:
                start = floor
            sp.start = start
            sp.end = max(end, start)
            # one synthetic lane per worker process in trace viewers
            sp.thread = int(report.pid)
            sp.attrs = dict(row.get("attrs") or {})
            sp.attrs.update(all_labels)
            sp.attrs["clock_offset"] = offset
            tracer.record_finished(sp)
            merged += 1
    if report.metrics:
        registry.merge_deltas(report.metrics, labels=all_labels)
    if report.dropped and registry.enabled:
        registry.counter(
            "worker_spans_dropped_total",
            "worker spans dropped by full collector buffers",
        ).inc(float(report.dropped))
    return merged


def merge_reports(
    reports: List[WorkerReport],
    t_send: float,
    anchor: Optional[Span] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> int:
    """Merge every chunk report of one superstep; returns spans merged.

    The done-timestamp is read here, once, after all replies arrived —
    a slightly pessimistic round trip for early chunks, which only
    shrinks the offset estimate's error bars asymmetrically within the
    superstep window (spans still merge inside it).
    """
    t_done = clock.perf()
    return sum(
        merge_report(r, t_send, t_done, anchor=anchor, labels=labels)
        for r in reports
    )
