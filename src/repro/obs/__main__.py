"""Observability utilities: ``python -m repro.obs <command>``.

``validate <trace.json>``
    Schema-check a Chrome trace file written by ``--trace``; exit 0
    when valid, 1 with one problem per line otherwise.  CI's
    ``trace-smoke`` job runs this on a fresh ``update-demo`` trace.
``report <trace> [--json] [--min-coverage F]``
    Roll a merged trace (span ``.jsonl`` log or Chrome trace file) up
    into the paper's phase taxonomy (Step 1/2/3, seed, exchange,
    dispatch overhead, worker idle/skew — see
    :mod:`repro.obs.report`).  ``--min-coverage 0.95`` exits 1 unless
    at least 95% of wall time lands in named phases.
``overhead [--gate RATIO]``
    Measure the disabled-path cost of the default (passive) tracer
    against the ``REPRO_OBS=off`` null tracer on a synthetic
    ``sosp_update`` workload.  Exits 1 when the median passive runtime
    exceeds ``gate × median`` of the no-obs baseline (default gate
    1.10 — the CI regression budget).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from repro.obs.clock import perf
from repro.obs.export import validate_chrome_trace
from repro.obs.report import attribute_trace, load_trace, render_text
from repro.obs.tracer import NULL_TRACER, Tracer, use_tracer

__all__ = ["main"]


def _cmd_validate(args: argparse.Namespace, out: TextIO) -> int:
    problems = validate_chrome_trace(args.path)
    if problems:
        for p in problems:
            print(p, file=out)
        return 1
    print(f"{args.path}: valid Chrome trace", file=out)
    return 0


def _cmd_report(args: argparse.Namespace, out: TextIO) -> int:
    report = attribute_trace(load_trace(args.path))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print(render_text(report, source=str(args.path)), file=out)
    if args.min_coverage is not None:
        if float(report["coverage"]) < args.min_coverage:
            print(
                f"coverage gate FAILED: {float(report['coverage']):.3f} < "
                f"{args.min_coverage:.3f}",
                file=out,
            )
            return 1
        print(
            f"coverage gate passed ({float(report['coverage']):.3f} >= "
            f"{args.min_coverage:.3f})",
            file=out,
        )
    return 0


def _workload_once() -> None:
    """One small Algorithm-1 update — the unit the gate times."""
    from repro.core import SOSPTree, sosp_update
    from repro.dynamic import random_insert_batch
    from repro.graph import road_like

    g = road_like(400, k=1, seed=0)
    tree = SOSPTree.build(g, 0)
    batch = random_insert_batch(g, 40, seed=1)
    batch.apply_to(g)
    sosp_update(g, tree, batch)


def _median_runtime(tracer: Tracer, repeats: int) -> float:
    times: List[float] = []
    with use_tracer(tracer):
        _workload_once()  # warm caches outside the timed repeats
        for _ in range(repeats):
            t0 = perf()
            _workload_once()
            times.append(perf() - t0)
    times.sort()
    return times[len(times) // 2]


def _cmd_overhead(args: argparse.Namespace, out: TextIO) -> int:
    baseline = _median_runtime(NULL_TRACER, args.repeats)
    passive = _median_runtime(Tracer(recording=False), args.repeats)
    ratio = passive / baseline if baseline > 0 else float("inf")
    print(
        f"no-obs baseline {baseline * 1e3:.2f} ms, "
        f"passive tracer {passive * 1e3:.2f} ms, "
        f"ratio {ratio:.3f} (gate {args.gate:.2f})",
        file=out,
    )
    if ratio > args.gate:
        print("overhead gate FAILED", file=out)
        return 1
    print("overhead gate passed", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    p = argparse.ArgumentParser(prog="repro.obs")
    sub = p.add_subparsers(dest="command", required=True)
    v = sub.add_parser("validate", help="schema-check a Chrome trace file")
    v.add_argument("path")
    r = sub.add_parser(
        "report", help="phase-taxonomy attribution of a merged trace"
    )
    r.add_argument("path")
    r.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    r.add_argument("--min-coverage", type=float, default=None,
                   help="exit 1 unless this fraction of wall time lands "
                        "in named phases")
    o = sub.add_parser("overhead", help="disabled-tracer overhead gate")
    o.add_argument("--gate", type=float, default=1.10,
                   help="max passive/no-obs median runtime ratio")
    o.add_argument("--repeats", type=int, default=9,
                   help="timed repetitions per configuration")
    args = p.parse_args(argv)
    if args.command == "validate":
        return _cmd_validate(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    return _cmd_overhead(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
