"""Nested-span tracing for supersteps and algorithm phases.

A :class:`Span` is one timed region — an algorithm phase
(``sosp_update.step2``), one engine superstep, or a worker task.  Spans
nest: the tracer keeps the current span in a :mod:`contextvars`
variable, so ``with tracer.span(...)`` anywhere in the call stack
parents correctly without plumbing span objects through every
signature.

Three tracer states, in order of cost:

- :data:`NULL_TRACER` — truly disabled: ``span()`` returns a shared
  dummy span and performs **zero clock reads** (the no-obs baseline
  the CI overhead gate compares against; select it for a whole process
  with ``REPRO_OBS=off``).
- the default ``Tracer(recording=False)`` — *passive*: spans are timed
  (two clock reads each, exactly what the hand-rolled
  ``perf_counter`` pairs they replaced cost) so ``step_seconds``
  surfaces stay populated, but nothing is retained.
- ``Tracer(recording=True)`` — spans are additionally appended to
  :attr:`Tracer.finished` for export (JSONL / Chrome trace /
  Prometheus; see :mod:`repro.obs.export`).

Worker threads of a pool do **not** inherit the caller's context, so
the active tracer is a module global (:func:`get_tracer` /
:func:`use_tracer`) and :class:`~repro.obs.engine.TracedEngine`
re-attaches the superstep span inside each task via :func:`attach`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import clock

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "current_span",
]

_ids = itertools.count(1)

#: The innermost open span of the current context (None at top level).
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed region with attributes and a parent link."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "thread", "attrs")

    def __init__(
        self,
        name: str,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        self.name = name
        self.span_id: int = next(_ids)
        self.parent_id = parent_id
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.thread: int = threading.get_ident()
        self.attrs: Dict[str, Any] = dict(attrs)

    @property
    def elapsed(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "elapsed": self.elapsed,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, elapsed={self.elapsed:.6f})"
        )


class Tracer:
    """Span factory; records finished spans when ``recording``."""

    def __init__(self, recording: bool = False) -> None:
        self.recording = bool(recording)
        self.finished: List[Span] = []
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; times it and (when recording) keeps it."""
        parent = _CURRENT.get()
        sp = Span(name, parent_id=parent.span_id if parent else None,
                  **attrs)
        token = _CURRENT.set(sp)
        sp.start = clock.perf()
        try:
            yield sp
        finally:
            sp.end = clock.perf()
            _CURRENT.reset(token)
            if self.recording:
                with self._lock:
                    self._record(sp)

    def _record(self, span: Span) -> None:
        """Sink for finished spans (subclasses override the storage —
        the cross-process :class:`~repro.obs.collect.WorkerCollector`
        writes into a preallocated buffer instead of a growing list)."""
        self.finished.append(span)

    def record_finished(self, span: Span) -> None:
        """Record an externally produced, already-closed span.

        The cross-process merge path
        (:func:`repro.obs.collect.merge_report`) rebases worker spans
        onto the master clock and appends them here so one ``drain()``
        yields the merged timeline.  No-op unless recording.
        """
        if self.recording:
            with self._lock:
                self._record(span)

    @contextmanager
    def attach(self, span: Optional[Span]) -> Iterator[None]:
        """Make ``span`` the current parent in this context.

        Worker tasks run in pool threads that did not inherit the
        superstep's context; attaching the superstep span reparents any
        span the task body opens.
        """
        token = _CURRENT.set(span)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def drain(self) -> List[Span]:
        """Remove and return every finished span recorded so far."""
        with self._lock:
            out = self.finished
            self.finished = []
        return out

    def describe(self) -> str:
        """One-word state for ``repro info``."""
        return "recording" if self.recording else "passive"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(recording={self.recording})"


class NullTracer(Tracer):
    """Fully disabled tracer: no clock reads, one shared dummy span.

    The dummy span reports ``elapsed == 0.0``; callers that populate
    timing dictionaries from span elapsed therefore report zeros, which
    is the documented meaning of ``REPRO_OBS=off``.
    """

    def __init__(self) -> None:
        super().__init__(recording=False)
        self._null_span = Span("null")
        self._null_span.end = self._null_span.start  # elapsed == 0.0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield self._null_span

    @contextmanager
    def attach(self, span: Optional[Span]) -> Iterator[None]:
        yield

    def describe(self) -> str:
        return "off"


#: The process-wide disabled tracer (the no-obs baseline).
NULL_TRACER = NullTracer()


def _default_tracer() -> Tracer:
    if os.environ.get("REPRO_OBS", "").strip().lower() in ("off", "0"):
        return NULL_TRACER
    return Tracer(recording=False)


_TRACER: Tracer = _default_tracer()
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide active tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _TRACER
    with _TRACER_LOCK:
        prev = _TRACER
        _TRACER = tracer
    return prev


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    prev = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)


def current_span() -> Optional[Span]:
    """The innermost open span of the calling context, if any."""
    return _CURRENT.get()
