"""Counters, gauges, and histograms for the update algorithms.

The registry is the single emission point for algorithm statistics:
kernels accumulate into their per-call stats objects exactly as before
and *publish* them here once, at the end of the call, so the inner
loops pay nothing and a metric can never be double-counted (the
``UpdateStats`` duplication risk the per-tree emission helper in
:mod:`repro.core.mosp_update` retires).

The default process-wide registry is **disabled**: every mutation is an
early-returning no-op, so library users who never look at metrics pay
one attribute check per publish site.  The CLI (``--metrics``), the
bench runner, and tests install an enabled registry with
:func:`use_metrics`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "labeled_name",
    "set_metrics",
    "use_metrics",
]

#: Raw histogram samples shipped per metric in a cross-process delta.
_MAX_SHIPPED_SAMPLES = 256


def labeled_name(
    name: str, labels: Optional[Mapping[str, str]] = None
) -> str:
    """Append ``labels`` to ``name`` in Prometheus label syntax.

    Labels are sorted by key so the same label set always produces the
    same series name; an empty/absent mapping returns ``name``
    unchanged.
    """
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing total.

    ``inc`` is locked: counters are mutated from shard-driver threads
    merging worker reports concurrently (and from the service ingest
    thread while readers export), and a lost ``+=`` would silently
    under-count drop/total series.  Publication is batched (once per
    call, never per inner-loop item), so the lock is off every hot
    path.
    """

    __slots__ = ("name", "help", "value", "_enabled", "_lock")

    def __init__(self, name: str, help: str = "", enabled: bool = True) -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self._enabled = enabled
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if not self._enabled:
            return
        if n < 0:
            raise ReproError(f"counter {self.name}: negative increment {n}")
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "help", "value", "_enabled")

    def __init__(self, name: str, help: str = "", enabled: bool = True) -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self._enabled = enabled

    def set(self, v: float) -> None:
        if self._enabled:
            self.value = float(v)


class Histogram:
    """Raw-sample histogram summarised as count/sum/min/max/p50/p95."""

    __slots__ = ("name", "help", "values", "_enabled", "_lock")

    def __init__(self, name: str, help: str = "", enabled: bool = True) -> None:
        self.name = name
        self.help = help
        self.values: List[float] = []
        self._enabled = enabled
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        if self._enabled:
            with self._lock:
                self.values.append(float(v))

    def summary(self) -> Dict[str, float]:
        """The summary statistics of everything observed so far."""
        if not self.values:
            return {"count": 0.0, "sum": 0.0}
        s = sorted(self.values)
        return {
            "count": float(len(s)),
            "sum": float(sum(s)),
            "min": s[0],
            "max": s[-1],
            "p50": percentile(s, 0.50),
            "p95": percentile(s, 0.95),
        }


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    if not sorted_values:
        raise ReproError("percentile of an empty sample")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(idx)]


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Kind-checked name → metric store.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the cached instance afterwards; asking for an existing name with a
    different kind raises (silent kind confusion would corrupt
    exports).  A disabled registry hands out no-op metrics so call
    sites never branch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, kind: type, name: str, help: str) -> _Metric:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = kind(name, help, enabled=self.enabled)
                self._metrics[name] = m
            elif type(m) is not kind:
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}, requested {kind.__name__}"
                )
            return m

    def counter(self, name: str, help: str = "") -> Counter:
        m = self._get(Counter, name, help)
        assert isinstance(m, Counter)
        return m

    def gauge(self, name: str, help: str = "") -> Gauge:
        m = self._get(Gauge, name, help)
        assert isinstance(m, Gauge)
        return m

    def histogram(self, name: str, help: str = "") -> Histogram:
        m = self._get(Histogram, name, help)
        assert isinstance(m, Histogram)
        return m

    def snapshot(self) -> Dict[str, Any]:
        """Name → value (counters/gauges) or summary dict (histograms)."""
        out: Dict[str, Any] = {}
        with self._lock:
            items: List[Tuple[str, _Metric]] = sorted(self._metrics.items())
        for name, m in items:
            out[name] = m.summary() if isinstance(m, Histogram) else m.value
        return out

    def reset(self) -> None:
        """Drop every registered metric (tests and long sessions)."""
        with self._lock:
            self._metrics.clear()

    def deltas(self) -> Dict[str, Tuple[str, Any]]:
        """Kind-tagged picklable dump: ``name -> (kind, payload)``.

        The cross-process collector ships a *fresh* worker-side
        registry back to the master this way, so every payload is by
        construction a delta: counters/gauges carry their value,
        histograms their raw samples (capped at
        :data:`_MAX_SHIPPED_SAMPLES` — worker chunks observe a handful
        of samples, and an unbounded list would grow the reply).
        """
        out: Dict[str, Tuple[str, Any]] = {}
        with self._lock:
            items: List[Tuple[str, _Metric]] = sorted(self._metrics.items())
        for name, m in items:
            if isinstance(m, Counter):
                out[name] = ("counter", m.value)
            elif isinstance(m, Gauge):
                out[name] = ("gauge", m.value)
            else:
                out[name] = ("histogram", list(m.values[:_MAX_SHIPPED_SAMPLES]))
        return out

    def merge_deltas(
        self,
        deltas: Mapping[str, Tuple[str, Any]],
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a :meth:`deltas` dump into this registry.

        ``labels`` (e.g. ``{"shard": "0", "worker": "4711"}``) are
        appended to each metric name in Prometheus label syntax, so
        per-worker/per-shard series stay separable in exports while the
        unlabelled master series remain untouched.  No-op when
        disabled.
        """
        if not self.enabled:
            return
        for name, (kind, payload) in sorted(deltas.items()):
            labeled = labeled_name(name, labels)
            if kind == "counter":
                self.counter(labeled).inc(float(payload))
            elif kind == "gauge":
                self.gauge(labeled).set(float(payload))
            elif kind == "histogram":
                hist = self.histogram(labeled)
                for v in payload:
                    hist.observe(float(v))
            else:
                raise ReproError(
                    f"metric delta {name!r} has unknown kind {kind!r}"
                )

    def to_prometheus(self) -> str:
        """Prometheus text exposition (histograms as summaries)."""
        lines: List[str] = []
        with self._lock:
            items = sorted(self._metrics.items())
        for name, m in items:
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            if isinstance(m, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(m.value)}")
            elif isinstance(m, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(m.value)}")
            else:
                s = m.summary()
                lines.append(f"# TYPE {name} summary")
                for q in ("p50", "p95"):
                    if q in s:
                        quant = q[1:] if q == "p50" else "95"
                        lines.append(
                            f'{name}{{quantile="0.{quant}"}} {_fmt(s[q])}'
                        )
                lines.append(f"{name}_sum {_fmt(s['sum'])}")
                lines.append(f"{name}_count {_fmt(s['count'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def _fmt(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(float(v))


_METRICS: MetricsRegistry = MetricsRegistry(enabled=False)
_METRICS_LOCK = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide active registry (disabled by default)."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry``; returns the previous one."""
    global _METRICS
    with _METRICS_LOCK:
        prev = _METRICS
        _METRICS = registry
    return prev


@contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_metrics`; installs a fresh enabled registry
    when none is given."""
    reg = registry if registry is not None else MetricsRegistry(enabled=True)
    prev = set_metrics(reg)
    try:
        yield reg
    finally:
        set_metrics(prev)
