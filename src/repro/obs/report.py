"""Phase attribution over a merged trace: where did the wall time go?

The paper's evaluation (Figs. 4-6) is a time-attribution story — which
step, which superstep, which worker — and a merged cross-process trace
(:mod:`repro.obs.collect`) contains everything needed to retell it.
This module rolls a span stream up into the paper's phase taxonomy:

==========  ==========================================================
bucket      spans
==========  ==========================================================
driver      ``cli.*`` / ``bench.*`` roots (argument parsing, printing)
setup       ``setup.*`` (graph/tree construction, batch generation)
step1       per-tree SOSP updates: ``*.step1``, ``*.invalidate``,
            the per-objective ``*.sosp_update_<i>`` wrappers
seed        ``*.seed`` (Step I of the mixed pipeline)
step2       propagation / combine: ``*.step2``, ``*.propagate``,
            ``partitioned.superstep``, ``*.ensemble``
step3       combined-graph solve: ``*.bellman_ford``, ``*.reassign``
exchange    ``partitioned.exchange`` boundary merges
front       ``dynamic_front.*`` (label-correcting Pareto front)
dispatch    engine-superstep time not covered by worker execution —
            payload pickling, pool round trips, reply decode
teardown    ``teardown.*`` (engine close, exports)
other       anything unrecognised (kept visible, counted against
            coverage)
==========  ==========================================================

Attribution is by **self time**: each master span contributes its
elapsed time minus the *interval union* of its master children's, so
nested phases never double-count — even when children run concurrently
on shard threads.  Sibling spans on different threads still overlap
each other in wall time, so on a multithreaded master the per-phase
sums are *lane time* (like ``user`` vs ``real`` in ``time(1)``) and
may exceed ``wall_seconds``; ``coverage`` is therefore defined as the
share of wall time **not** lost to the ``other`` bucket, which stays
in ``[0, 1]``.  Engine ``superstep`` spans inherit their kernel phase
from the ``phase`` attribute :class:`~repro.obs.engine.TracedEngine`
stamps; when a superstep has merged worker spans, the worker execution
window stays in the kernel phase and only the uncovered remainder
counts as ``dispatch``.  Worker spans themselves (rows carrying a
``worker`` attribute) are never added on top — they run *inside* the
superstep window on other CPUs — but they do drive the per-worker
busy/idle/skew summary.

``python -m repro.obs report trace.jsonl`` renders the roll-up as text
or JSON; ``--min-coverage`` turns the "≥ N% of wall time attributed to
named phases" acceptance bar into an exit code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.obs.export import read_jsonl
from repro.obs.tracer import Span

__all__ = ["PHASES", "load_trace", "attribute_trace", "render_text"]

#: Report buckets, in render order.
PHASES = (
    "driver", "setup", "step1", "seed", "step2", "step3",
    "exchange", "front", "dispatch", "teardown", "other",
)

_SpanLike = Union[Span, Dict[str, Any]]


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read span rows from a ``.jsonl`` span log or a Chrome trace file.

    Both are produced by :mod:`repro.obs.export`; Chrome events are
    mapped back to span rows (µs → seconds, ``args`` → ``attrs`` with
    ``span_id``/``parent_id`` lifted out), so the report runs on
    whichever artifact a pipeline kept.
    """
    p = Path(path)
    if p.suffix == ".jsonl":
        return read_jsonl(p)
    with open(p, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError:
            # a .json span log written via export_jsonl despite the name
            return read_jsonl(p)
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        raise ReproError(f"{p}: neither a span log nor a Chrome trace")
    rows: List[Dict[str, Any]] = []
    for ev in doc["traceEvents"]:
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start = float(ev.get("ts", 0.0)) / 1e6
        end = start + float(ev.get("dur", 0.0)) / 1e6
        rows.append(
            {
                "name": str(ev.get("name", "")),
                "span_id": span_id,
                "parent_id": parent_id,
                "start": start,
                "end": end,
                "elapsed": end - start,
                "thread": ev.get("tid", 0),
                "attrs": args,
            }
        )
    return rows


def _classify(name: str) -> Optional[str]:
    """Phase bucket for a span name, or ``None`` to inherit the parent's."""
    if name.startswith(("cli.", "bench.")):
        return "driver"
    if name.startswith("setup."):
        return "setup"
    if name.startswith("teardown"):
        return "teardown"
    if name.startswith("dynamic_front"):
        return "front"
    if name == "partitioned.superstep":
        return "step2"
    last = name.rsplit(".", 1)[-1]
    if last in ("step1", "invalidate") or last.startswith("sosp_update"):
        return "step1"
    if last == "seed":
        return "seed"
    if last in ("step2", "propagate", "ensemble"):
        return "step2"
    if last in ("bellman_ford", "reassign"):
        return "step3"
    if last == "exchange":
        return "exchange"
    return None


def attribute_trace(rows: Sequence[_SpanLike]) -> Dict[str, Any]:
    """Roll a span stream up into the phase taxonomy (see module doc).

    Returns a JSON-ready dict: ``wall_seconds``, per-phase
    ``phases``/``fractions``, ``coverage`` (named-phase share of wall),
    span counts, and a ``workers`` busy/idle/skew summary.
    """
    spans = [
        r.to_dict() if isinstance(r, Span) else dict(r)
        for r in rows
    ]
    spans = [s for s in spans if s.get("end") is not None]
    master = [s for s in spans if "worker" not in (s.get("attrs") or {})]
    workers = [s for s in spans if "worker" in (s.get("attrs") or {})]
    phases: Dict[str, float] = {p: 0.0 for p in PHASES}
    if not master:
        return {
            "wall_seconds": 0.0,
            "phases": phases,
            "fractions": {p: 0.0 for p in PHASES},
            "coverage": 0.0,
            "spans": 0,
            "worker_spans": len(workers),
            "workers": {"count": 0, "busy_seconds": 0.0,
                        "idle_seconds": 0.0, "max_skew_seconds": 0.0},
        }
    wall = max(float(s["end"]) for s in master) - min(
        float(s["start"]) for s in master
    )
    by_id = {s["span_id"]: s for s in master if s.get("span_id") is not None}
    child_ivals: Dict[Any, List[List[float]]] = {}
    for s in master:
        pid = s.get("parent_id")
        if pid in by_id:
            p = by_id[pid]
            lo = max(float(s["start"]), float(p["start"]))
            hi = min(float(s["end"]), float(p["end"]))
            if hi > lo:
                child_ivals.setdefault(pid, []).append([lo, hi])
    # merged-interval child coverage per parent: concurrent children on
    # shard threads overlap, so a plain elapsed sum would over-subtract
    child_sum: Dict[Any, float] = {}
    for pid, ivals in child_ivals.items():
        ivals.sort()
        covered = 0.0
        cur_lo, cur_hi = ivals[0]
        for lo, hi in ivals[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        child_sum[pid] = covered
    worker_by_anchor: Dict[Any, List[Dict[str, Any]]] = {}
    for w in workers:
        worker_by_anchor.setdefault(w.get("parent_id"), []).append(w)

    def bucket_of(s: Dict[str, Any]) -> str:
        """Resolve the bucket, inheriting up the parent chain.

        Inheritance stops at ``driver``: an anonymous helper inside a
        kernel phase belongs to that phase, but an unrecognised span
        sitting directly under the driver root is *unexplained* time
        and must land in ``other``, not be absorbed silently.
        """
        seen = 0
        cur: Optional[Dict[str, Any]] = s
        while cur is not None and seen < 64:  # cycle guard
            name = str(cur.get("name", ""))
            if name == "superstep":
                phase_attr = str((cur.get("attrs") or {}).get("phase", ""))
                b = _classify(phase_attr) if phase_attr else None
            else:
                b = _classify(name)
            if b is not None:
                if b == "driver" and cur is not s:
                    return "other"
                return b
            cur = by_id.get(cur.get("parent_id"))
            seen += 1
        return "other"

    busy_by_pid: Dict[str, float] = {}
    idle_total = 0.0
    max_skew = 0.0
    for s in master:
        self_time = max(
            0.0, float(s["elapsed"]) - child_sum.get(s.get("span_id"), 0.0)
        )
        bucket = bucket_of(s)
        merged = worker_by_anchor.get(s.get("span_id"))
        if merged:
            # worker execution window stays in the kernel phase; only
            # the uncovered remainder of the superstep is dispatch cost
            window = max(float(w["end"]) for w in merged) - min(
                float(w["start"]) for w in merged
            )
            window = min(window, self_time)
            phases[bucket] += window
            phases["dispatch"] += self_time - window
            per_pid: Dict[str, float] = {}
            for w in merged:
                pid = str((w.get("attrs") or {}).get("worker"))
                per_pid[pid] = per_pid.get(pid, 0.0) + float(w["elapsed"])
                busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + float(
                    w["elapsed"]
                )
            threads = (s.get("attrs") or {}).get("threads", len(per_pid))
            try:
                lanes = max(int(threads), len(per_pid))
            except (TypeError, ValueError):
                lanes = len(per_pid)
            idle_total += max(0.0, lanes * window - sum(per_pid.values()))
            if per_pid:
                max_skew = max(
                    max_skew, max(per_pid.values()) - min(per_pid.values())
                )
        else:
            phases[bucket] += self_time
    # named-phase sums are lane time and may exceed wall on a
    # multithreaded master; unexplained time only ever lands in
    # "other", so coverage is wall's un-"other" share, in [0, 1]
    coverage = (
        max(0.0, min(1.0, 1.0 - phases["other"] / wall))
        if wall > 0 else 0.0
    )
    return {
        "wall_seconds": wall,
        "phases": phases,
        "fractions": {
            p: (v / wall if wall > 0 else 0.0) for p, v in phases.items()
        },
        "coverage": coverage,
        "spans": len(master),
        "worker_spans": len(workers),
        "workers": {
            "count": len(busy_by_pid),
            "busy_seconds": sum(busy_by_pid.values()),
            "idle_seconds": idle_total,
            "max_skew_seconds": max_skew,
        },
    }


def render_text(report: Dict[str, Any], source: str = "") -> str:
    """Human-readable rendering of :func:`attribute_trace`'s dict."""
    wall = float(report["wall_seconds"])
    lines: List[str] = []
    if source:
        lines.append(f"trace: {source}")
    lines.append(
        f"wall: {wall * 1e3:.2f} ms over {report['spans']} spans "
        f"({report['worker_spans']} worker spans from "
        f"{report['workers']['count']} workers)"
    )
    lines.append("phase attribution:")
    for p in PHASES:
        v = float(report["phases"][p])
        if v <= 0.0:
            continue
        frac = float(report["fractions"][p])
        lines.append(f"  {p:<10} {v * 1e3:>10.2f} ms  {frac * 100:5.1f}%")
    lines.append(
        f"coverage: {float(report['coverage']) * 100:.1f}% of wall time "
        f"attributed to named phases"
    )
    w = report["workers"]
    if w["count"]:
        lines.append(
            f"workers: busy {float(w['busy_seconds']) * 1e3:.2f} ms, "
            f"est. idle {float(w['idle_seconds']) * 1e3:.2f} ms, "
            f"max skew {float(w['max_skew_seconds']) * 1e3:.2f} ms"
        )
    return "\n".join(lines)
