"""Span and metric exporters: JSONL, Chrome trace events, Prometheus text.

Three sinks for one span stream:

- :func:`export_jsonl` — one JSON object per line, lossless
  (:meth:`~repro.obs.tracer.Span.to_dict` rows; read back with
  :func:`read_jsonl`).
- :func:`export_chrome_trace` — the Trace Event Format's complete
  (``"ph": "X"``) events, loadable in Perfetto / ``chrome://tracing``;
  :func:`validate_chrome_trace` checks the schema without a browser.
- :func:`export_prometheus` — the metrics registry in Prometheus text
  exposition format (:func:`parse_prometheus` reads the samples back).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "export_jsonl",
    "read_jsonl",
    "export_chrome_trace",
    "validate_chrome_trace",
    "export_prometheus",
    "parse_prometheus",
    "EXPORTERS",
]

#: Registered exporter names (``repro info`` reports these).
EXPORTERS = ("jsonl", "chrome-trace", "prometheus")

_SpanLike = Union[Span, Dict[str, Any]]


def _as_dict(span: _SpanLike) -> Dict[str, Any]:
    return span.to_dict() if isinstance(span, Span) else dict(span)


def export_jsonl(spans: Sequence[_SpanLike], path: Union[str, Path]) -> int:
    """Write one JSON object per span; returns the row count."""
    rows = [_as_dict(s) for s in spans]
    with open(path, "w", encoding="utf-8") as f:
        for row in rows:
            f.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a span log written by :func:`export_jsonl`."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def export_chrome_trace(
    spans: Sequence[_SpanLike],
    path: Union[str, Path],
    metrics: Union[MetricsRegistry, None] = None,
) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    Span start times are rebased so the earliest span starts at 0 µs;
    thread idents are compacted to small ``tid`` integers.  Span
    attributes (phase, items, work distribution, ...) land in each
    event's ``args``.  A metrics snapshot, when given, is embedded as
    ``otherData.metrics``.
    """
    rows = [_as_dict(s) for s in spans]
    starts = [r["start"] for r in rows if r.get("end") is not None]
    t0 = min(starts) if starts else 0.0
    tids: Dict[int, int] = {}
    events: List[Dict[str, Any]] = []
    for r in rows:
        if r.get("end") is None:
            continue  # never-closed spans have no duration
        tid = tids.setdefault(int(r["thread"]), len(tids))
        args = dict(r.get("attrs") or {})
        args["span_id"] = r["span_id"]
        if r.get("parent_id") is not None:
            args["parent_id"] = r["parent_id"]
        events.append(
            {
                "name": str(r["name"]),
                "ph": "X",
                "ts": (r["start"] - t0) * 1e6,
                "dur": (r["end"] - r["start"]) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.snapshot()
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, sort_keys=True)
    return len(events)


def validate_chrome_trace(source: Union[str, Path, Dict[str, Any]]) -> List[str]:
    """Schema-check a Chrome trace document; returns problem strings
    (empty list = valid).

    Checks the subset of the Trace Event Format this package emits:
    a ``traceEvents`` list of complete events with string ``name``,
    ``ph == "X"``, non-negative numeric ``ts``/``dur``, integer
    ``pid``/``tid``, and a dict ``args`` carrying an integer
    ``span_id``.  A second pass checks parent/child time consistency:
    an event whose ``args.parent_id`` resolves to another event must
    not start before its parent — a merged worker span violating this
    means the clock-offset estimation (or its clamping) is broken.
    """
    problems: List[str] = []
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as exc:
                return [f"not JSON: {exc}"]
    else:
        doc = source
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing string name")
        if ev.get("ph") != "X":
            problems.append(f"{where}: ph is {ev.get('ph')!r}, expected 'X'")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                problems.append(f"{where}: {key} is not a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} is not an integer")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: args is not an object")
        elif not isinstance(args.get("span_id"), int):
            problems.append(f"{where}: args.span_id is not an integer")
    # second pass: no event may start before the event its parent_id
    # resolves to (catches clock-offset merge bugs for worker spans)
    by_id: Dict[int, Dict[str, Any]] = {}
    for ev in events:
        if not isinstance(ev, dict):
            continue
        args = ev.get("args")
        if isinstance(args, dict) and isinstance(args.get("span_id"), int):
            by_id[args["span_id"]] = ev
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            continue
        parent_id = args.get("parent_id")
        parent = by_id.get(parent_id) if isinstance(parent_id, int) else None
        if parent is None:
            continue
        ts, pts = ev.get("ts"), parent.get("ts")
        if (
            isinstance(ts, (int, float)) and not isinstance(ts, bool)
            and isinstance(pts, (int, float)) and not isinstance(pts, bool)
            and ts < pts
        ):
            problems.append(
                f"traceEvents[{i}]: ts {ts} precedes parent span "
                f"{parent_id}'s start {pts}"
            )
    return problems


def export_prometheus(
    registry: MetricsRegistry, path: Union[str, Path]
) -> int:
    """Write the registry in Prometheus text format; returns sample count."""
    text = registry.to_prometheus()
    Path(path).write_text(text, encoding="utf-8")
    return len(parse_prometheus(text))


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse text-exposition samples back into ``{sample_name: value}``.

    Labelled samples keep their label suffix verbatim (e.g.
    ``'latency{quantile="0.5"}'``).  Comment and blank lines are
    skipped.  Inverse of :meth:`MetricsRegistry.to_prometheus` for
    round-trip tests.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out
