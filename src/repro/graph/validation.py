"""Structural validation of graphs and weight matrices.

These checks are the preconditions of every algorithm in the package:
finite non-negative weights, consistent objective arity, in/out
adjacency that mirror each other.  They run in O(n + m) and are cheap
enough to call in tests and debug builds; library code trusts its
inputs after construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, WeightError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph

__all__ = ["validate_digraph", "validate_csr", "check_weights"]


def check_weights(weights: np.ndarray, k: int) -> None:
    """Raise :class:`WeightError` unless ``weights`` is a valid
    ``(m, k)`` matrix of finite non-negative floats."""
    w = np.asarray(weights)
    if w.ndim != 2 or w.shape[1] != k:
        raise WeightError(
            f"weights must have shape (m, {k}); got {w.shape}"
        )
    if w.size and not np.all(np.isfinite(w)):
        raise WeightError("weights contain non-finite values")
    if w.size and np.any(w < 0):
        raise WeightError("weights contain negative values")


def validate_digraph(g: DiGraph) -> None:
    """Full structural audit of a :class:`DiGraph`.

    Checks endpoint ranges, in/out adjacency consistency (each live
    edge appears exactly once in both lists), live-edge count, and
    weight validity.  Raises :class:`GraphError`/:class:`WeightError`
    on the first violation.
    """
    n = g.num_vertices
    seen_out = 0
    for u in range(n):
        for v, eid in g.out_edges(u):
            su, sv = g.edge_endpoints(eid)
            if su != u or sv != v:
                raise GraphError(
                    f"out adjacency of {u} lists edge {eid} with endpoints "
                    f"({su}, {sv})"
                )
            seen_out += 1
    seen_in = 0
    for v in range(n):
        for u, eid in g.in_edges(v):
            su, sv = g.edge_endpoints(eid)
            if su != u or sv != v:
                raise GraphError(
                    f"in adjacency of {v} lists edge {eid} with endpoints "
                    f"({su}, {sv})"
                )
            seen_in += 1
    if seen_out != g.num_edges or seen_in != g.num_edges:
        raise GraphError(
            f"adjacency/live-edge mismatch: out={seen_out} in={seen_in} "
            f"m={g.num_edges}"
        )
    _, _, w = g.edge_arrays()
    check_weights(w, g.num_objectives)


def validate_csr(csr: CSRGraph) -> None:
    """Audit a :class:`CSRGraph`: monotone indptr, consistent reverse
    adjacency, in-range indices, valid weights."""
    if csr.indptr[0] != 0 or csr.indptr[-1] != csr.m:
        raise GraphError("forward indptr endpoints wrong")
    if np.any(np.diff(csr.indptr) < 0):
        raise GraphError("forward indptr not monotone")
    if csr.rev_indptr[0] != 0 or csr.rev_indptr[-1] != csr.m:
        raise GraphError("reverse indptr endpoints wrong")
    if np.any(np.diff(csr.rev_indptr) < 0):
        raise GraphError("reverse indptr not monotone")
    if csr.m:
        if csr.indices.min() < 0 or csr.indices.max() >= csr.n:
            raise GraphError("forward indices out of range")
        if csr.rev_indices.min() < 0 or csr.rev_indices.max() >= csr.n:
            raise GraphError("reverse indices out of range")
    # forward and reverse must contain the same multiset of edges
    fwd = sorted(zip(csr.src.tolist(), csr.indices.tolist()))
    rev_dst = np.repeat(
        np.arange(csr.n), np.diff(csr.rev_indptr).astype(np.int64)
    )
    rev = sorted(zip(csr.rev_indices.tolist(), rev_dst.tolist()))
    if fwd != rev:
        raise GraphError("forward and reverse CSR disagree on edge multiset")
    # edge_perm must map reverse rows onto matching forward rows
    for j in range(csr.m):
        row = int(csr.edge_perm[j])
        if csr.src[row] != csr.rev_indices[j]:
            raise GraphError(f"edge_perm[{j}] maps to a different tail vertex")
    check_weights(csr.weights, csr.k)
    # the incremental COO tail, when present
    if csr.num_tail_edges:
        if csr.tail_dst.shape[0] != csr.num_tail_edges or (
            csr.tail_weights.shape != (csr.num_tail_edges, csr.k)
        ):
            raise GraphError("tail arrays disagree on edge count")
        if csr.tail_src.min() < 0 or csr.tail_src.max() >= csr.n or (
            csr.tail_dst.min() < 0 or csr.tail_dst.max() >= csr.n
        ):
            raise GraphError("tail endpoints out of range")
        check_weights(csr.tail_weights, csr.k)
