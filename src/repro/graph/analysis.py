"""Structural graph analysis: components, BFS, degree and diameter stats.

Used by the dataset registry to verify stand-ins match their paper
dataset's topology class, by the examples for reachability reporting,
and generally handy for downstream users.  Everything is from scratch
(no networkx in ``src/``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Union

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import VERTEX_DTYPE, IntArray

__all__ = [
    "bfs_hops",
    "weakly_connected_components",
    "largest_wcc_fraction",
    "degree_statistics",
    "estimate_effective_diameter",
    "graph_summary",
    "partition_by_ranges",
    "partition_edgecut",
    "refine_partition_greedy",
]


def _to_csr(graph: Union[DiGraph, CSRGraph]) -> CSRGraph:
    return graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)


def bfs_hops(graph: Union[DiGraph, CSRGraph], source: int) -> IntArray:
    """Hop distance from ``source`` along directed edges (-1 if
    unreachable)."""
    csr = _to_csr(graph)
    if not 0 <= source < csr.n:
        raise VertexError(source, csr.n, "bfs source")
    hops = np.full(csr.n, -1, dtype=VERTEX_DTYPE)
    hops[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in csr.out_neighbors(u):
            if hops[v] < 0:
                hops[v] = hops[u] + 1
                queue.append(int(v))
    return hops


def weakly_connected_components(
    graph: Union[DiGraph, CSRGraph]
) -> List[List[int]]:
    """Vertex lists of the weakly connected components (largest first)."""
    csr = _to_csr(graph)
    seen = np.zeros(csr.n, dtype=bool)
    components: List[List[int]] = []
    for start in range(csr.n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in csr.out_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(int(v))
                    queue.append(int(v))
            for v in csr.in_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(int(v))
                    queue.append(int(v))
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_wcc_fraction(graph: Union[DiGraph, CSRGraph]) -> float:
    """|largest weakly connected component| / n (0.0 for empty graphs)."""
    csr = _to_csr(graph)
    if csr.n == 0:
        return 0.0
    return len(weakly_connected_components(csr)[0]) / csr.n


def degree_statistics(graph: Union[DiGraph, CSRGraph]) -> Dict[str, float]:
    """Out-degree statistics: mean, max, standard deviation, and the
    fraction of sink vertices (out-degree zero)."""
    csr = _to_csr(graph)
    if csr.n == 0:
        return {"mean": 0.0, "max": 0.0, "std": 0.0, "sinks": 0.0}
    deg = np.diff(csr.indptr).astype(float)
    return {
        "mean": float(deg.mean()),
        "max": float(deg.max()),
        "std": float(deg.std()),
        "sinks": float((deg == 0).mean()),
    }


def estimate_effective_diameter(
    graph: Union[DiGraph, CSRGraph],
    samples: int = 8,
    quantile: float = 0.9,
    seed: int = 0,
) -> float:
    """Sampled effective diameter: the ``quantile`` of finite BFS hop
    distances over ``samples`` random sources.

    The exact diameter costs O(n·m); a handful of BFS runs gives the
    scale that matters for shortest-path workloads (propagation depth,
    Bellman-Ford round counts).
    """
    csr = _to_csr(graph)
    if csr.n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(csr.n, size=min(samples, csr.n), replace=False)
    values = []
    for s in sources:
        hops = bfs_hops(csr, int(s))
        finite = hops[hops >= 0]
        if len(finite) > 1:
            values.append(float(np.quantile(finite, quantile)))
    return max(values) if values else 0.0


def _live_edge_arrays(
    graph: Union[DiGraph, CSRGraph]
) -> "tuple[IntArray, IntArray]":
    """``(src, dst)`` of every live edge (tombstones filtered, tail
    included) — the edge view the partition helpers score against."""
    csr = _to_csr(graph)
    src = np.concatenate(
        (np.asarray(csr.src), np.asarray(csr.tail_src))
    ).astype(np.int64)
    dst = np.concatenate(
        (np.asarray(csr.indices), np.asarray(csr.tail_dst))
    ).astype(np.int64)
    w0 = np.concatenate((csr.weights[:, 0], csr.tail_weights[:, 0]))
    alive = np.isfinite(w0)
    return src[alive], dst[alive]


def partition_by_ranges(n: int, parts: int) -> IntArray:
    """Assign ``n`` vertices to ``parts`` contiguous, balanced ranges.

    Returns the length-``n`` owner array: vertex ``v`` belongs to
    partition ``part[v]``.  Range sizes differ by at most one; with
    ``parts > n`` the trailing partitions own no vertices (legal — the
    partitioned engine treats them as empty shards).  Contiguous ranges
    are the paper's default layout: road-network ids are
    locality-ordered, so range cuts approximate geometric cuts.
    """
    if parts < 1:
        raise VertexError(parts, 1, "partition count")
    part = np.empty(n, dtype=np.int64)
    bounds = [round(p * n / parts) for p in range(parts + 1)]
    for p in range(parts):
        part[bounds[p] : bounds[p + 1]] = p
    return part


def partition_edgecut(
    graph: Union[DiGraph, CSRGraph], part: IntArray
) -> int:
    """Number of live directed edges crossing partitions under ``part``."""
    src, dst = _live_edge_arrays(graph)
    part = np.asarray(part, dtype=np.int64)
    return int(np.count_nonzero(part[src] != part[dst]))


def refine_partition_greedy(
    graph: Union[DiGraph, CSRGraph],
    part: IntArray,
    passes: int = 2,
    balance_tolerance: float = 0.1,
) -> IntArray:
    """Greedy min-edgecut refinement of a vertex partition.

    Sweeps the vertices in id order (deterministic); a vertex moves to
    the partition holding the plurality of its in+out neighbours when
    that strictly reduces the edge cut, the target stays within
    ``ceil(n/parts * (1 + balance_tolerance))`` vertices, and the
    source partition keeps at least one vertex.  Returns a new owner
    array; the input is not mutated.  A cheap stand-in for the
    multilevel partitioners the paper's MPI layer would use — good
    enough to shave range-cut edges on non-locality-ordered ids.
    """
    src, dst = _live_edge_arrays(graph)
    part = np.asarray(part, dtype=np.int64).copy()
    n = int(part.shape[0])
    if n == 0 or src.size == 0:
        return part
    parts = int(part.max()) + 1
    if parts < 2:
        return part
    sizes = np.bincount(part, minlength=parts)
    cap = -(-n // parts)  # ceil
    cap = int(cap * (1.0 + balance_tolerance)) + 1
    # undirected incident lists for the gain computation
    order = np.argsort(src, kind="stable")
    out_nbr_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(out_nbr_ptr, src + 1, 1)
    np.cumsum(out_nbr_ptr, out=out_nbr_ptr)
    out_nbrs = dst[order]
    rorder = np.argsort(dst, kind="stable")
    in_nbr_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(in_nbr_ptr, dst + 1, 1)
    np.cumsum(in_nbr_ptr, out=in_nbr_ptr)
    in_nbrs = src[rorder]
    for _ in range(max(0, passes)):
        moved = False
        for v in range(n):
            nbrs = np.concatenate((
                out_nbrs[out_nbr_ptr[v] : out_nbr_ptr[v + 1]],
                in_nbrs[in_nbr_ptr[v] : in_nbr_ptr[v + 1]],
            ))
            nbrs = nbrs[nbrs != v]  # self-loops never cross a cut
            if nbrs.size == 0:
                continue
            counts = np.bincount(part[nbrs], minlength=parts)
            cur = int(part[v])
            best = int(np.argmax(counts))  # ties -> smallest id
            if (
                best != cur
                and counts[best] > counts[cur]
                and sizes[best] < cap
                and sizes[cur] > 1
            ):
                part[v] = best
                sizes[cur] -= 1
                sizes[best] += 1
                moved = True
        if not moved:
            break
    return part


def graph_summary(graph: Union[DiGraph, CSRGraph]) -> Dict[str, object]:
    """One-stop structural profile (used by dataset reporting)."""
    csr = _to_csr(graph)
    deg = degree_statistics(csr)
    return {
        "vertices": csr.n,
        "edges": csr.m,
        "objectives": csr.k,
        "avg_out_degree": round(deg["mean"], 3),
        "max_out_degree": int(deg["max"]),
        "largest_wcc_fraction": round(largest_wcc_fraction(csr), 4),
        "effective_diameter": estimate_effective_diameter(csr),
    }
