"""Structural graph analysis: components, BFS, degree and diameter stats.

Used by the dataset registry to verify stand-ins match their paper
dataset's topology class, by the examples for reachability reporting,
and generally handy for downstream users.  Everything is from scratch
(no networkx in ``src/``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Union

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import VERTEX_DTYPE, IntArray

__all__ = [
    "bfs_hops",
    "weakly_connected_components",
    "largest_wcc_fraction",
    "degree_statistics",
    "estimate_effective_diameter",
    "graph_summary",
]


def _to_csr(graph: Union[DiGraph, CSRGraph]) -> CSRGraph:
    return graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)


def bfs_hops(graph: Union[DiGraph, CSRGraph], source: int) -> IntArray:
    """Hop distance from ``source`` along directed edges (-1 if
    unreachable)."""
    csr = _to_csr(graph)
    if not 0 <= source < csr.n:
        raise VertexError(source, csr.n, "bfs source")
    hops = np.full(csr.n, -1, dtype=VERTEX_DTYPE)
    hops[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in csr.out_neighbors(u):
            if hops[v] < 0:
                hops[v] = hops[u] + 1
                queue.append(int(v))
    return hops


def weakly_connected_components(
    graph: Union[DiGraph, CSRGraph]
) -> List[List[int]]:
    """Vertex lists of the weakly connected components (largest first)."""
    csr = _to_csr(graph)
    seen = np.zeros(csr.n, dtype=bool)
    components: List[List[int]] = []
    for start in range(csr.n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in csr.out_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(int(v))
                    queue.append(int(v))
            for v in csr.in_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(int(v))
                    queue.append(int(v))
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_wcc_fraction(graph: Union[DiGraph, CSRGraph]) -> float:
    """|largest weakly connected component| / n (0.0 for empty graphs)."""
    csr = _to_csr(graph)
    if csr.n == 0:
        return 0.0
    return len(weakly_connected_components(csr)[0]) / csr.n


def degree_statistics(graph: Union[DiGraph, CSRGraph]) -> Dict[str, float]:
    """Out-degree statistics: mean, max, standard deviation, and the
    fraction of sink vertices (out-degree zero)."""
    csr = _to_csr(graph)
    if csr.n == 0:
        return {"mean": 0.0, "max": 0.0, "std": 0.0, "sinks": 0.0}
    deg = np.diff(csr.indptr).astype(float)
    return {
        "mean": float(deg.mean()),
        "max": float(deg.max()),
        "std": float(deg.std()),
        "sinks": float((deg == 0).mean()),
    }


def estimate_effective_diameter(
    graph: Union[DiGraph, CSRGraph],
    samples: int = 8,
    quantile: float = 0.9,
    seed: int = 0,
) -> float:
    """Sampled effective diameter: the ``quantile`` of finite BFS hop
    distances over ``samples`` random sources.

    The exact diameter costs O(n·m); a handful of BFS runs gives the
    scale that matters for shortest-path workloads (propagation depth,
    Bellman-Ford round counts).
    """
    csr = _to_csr(graph)
    if csr.n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(csr.n, size=min(samples, csr.n), replace=False)
    values = []
    for s in sources:
        hops = bfs_hops(csr, int(s))
        finite = hops[hops >= 0]
        if len(finite) > 1:
            values.append(float(np.quantile(finite, quantile)))
    return max(values) if values else 0.0


def graph_summary(graph: Union[DiGraph, CSRGraph]) -> Dict[str, object]:
    """One-stop structural profile (used by dataset reporting)."""
    csr = _to_csr(graph)
    deg = degree_statistics(csr)
    return {
        "vertices": csr.n,
        "edges": csr.m,
        "objectives": csr.k,
        "avg_out_degree": round(deg["mean"], 3),
        "max_out_degree": int(deg["max"]),
        "largest_wcc_fraction": round(largest_wcc_fraction(csr), 4),
        "effective_diameter": estimate_effective_diameter(csr),
    }
