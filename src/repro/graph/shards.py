"""Per-shard sub-CSR extraction for the partitioned engine.

A *shard* owns a set of vertices (``part[v] == index``) and every live
edge whose **destination** it owns — destination ownership is what the
pull-based Step-2 kernels need: relaxing a frontier vertex only reads
its in-edges, so a shard's local :class:`~repro.graph.csr.CSRGraph`
contains the complete in-neighbourhood of every owned vertex.

Vertices are renumbered into a compact *local id space*: owned
vertices first (``0 .. n_owned``, in ascending global order), then the
*ghosts* — non-owned sources of the shard's edges — after them.  The
``l2g`` / ``g2l`` maps translate between the spaces; ``g2l`` is ``-1``
for globals absent from the shard.  Because every edge destination is
owned, the propagation kernels only ever **write** local ids below
``n_owned``; ghost slots are written exclusively by the engine's
boundary-exchange merge.

``boundary`` is the shard's *cut-edge source list*: local ids of owned
vertices with at least one out-edge into another shard.  Improvements
to these are the only state other shards can observe, so they are the
only vertices the exchange phase ever emits.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.types import FloatArray, IntArray

__all__ = ["CSRShard", "build_shard", "build_shards", "live_edge_arrays"]


class CSRShard:
    """One partition's local graph: owned range, ghost map, sub-CSR."""

    __slots__ = ("index", "owned", "n_owned", "l2g", "g2l", "csr", "boundary")

    def __init__(
        self,
        index: int,
        owned: IntArray,
        l2g: IntArray,
        g2l: IntArray,
        csr: CSRGraph,
        boundary: Set[int],
    ) -> None:
        self.index = index
        self.owned = owned
        self.n_owned = int(owned.shape[0])
        self.l2g = l2g
        self.g2l = g2l
        self.csr = csr
        self.boundary = boundary

    @property
    def n_local(self) -> int:
        """Owned + ghost vertex count (the sub-CSR's ``n``)."""
        return int(self.l2g.shape[0])

    @property
    def num_ghosts(self) -> int:
        return self.n_local - self.n_owned

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRShard(index={self.index}, owned={self.n_owned}, "
            f"ghosts={self.num_ghosts}, edges={self.csr.num_edges}, "
            f"boundary={len(self.boundary)})"
        )


def live_edge_arrays(
    snapshot: CSRGraph,
) -> Tuple[IntArray, IntArray, FloatArray]:
    """Every live edge of ``snapshot`` as ``(src, dst, weights)``.

    Base rows come first, tail rows after, tombstones (``inf`` weight
    rows) filtered — the same per-destination candidate order a
    compaction would produce, so shard-local kernels see predecessors
    in the canonical order regardless of when either side compacts.
    """
    src = np.concatenate(
        (np.asarray(snapshot.src), np.asarray(snapshot.tail_src))
    ).astype(np.int64)
    dst = np.concatenate(
        (np.asarray(snapshot.indices), np.asarray(snapshot.tail_dst))
    ).astype(np.int64)
    w = np.concatenate((snapshot.weights, snapshot.tail_weights))
    if snapshot.num_dead:
        alive = np.isfinite(w[:, 0])
        src, dst, w = src[alive], dst[alive], w[alive]
    return src, dst, w


def build_shard(
    index: int,
    n: int,
    src: IntArray,
    dst: IntArray,
    w: FloatArray,
    part: IntArray,
    k: int,
) -> CSRShard:
    """Extract shard ``index`` from the global live-edge arrays.

    ``src``/``dst``/``w`` must come from :func:`live_edge_arrays` (or
    equal filtering) so row order — and hence the kernels' tie-breaking
    predecessor order — matches the global snapshot.
    """
    owned = np.flatnonzero(part == index).astype(np.int64)
    sel = part[dst] == index if dst.size else np.zeros(0, dtype=bool)
    es, ed, ew = src[sel], dst[sel], w[sel]
    ghosts = np.unique(es[part[es] != index]) if es.size else es
    l2g = np.concatenate((owned, ghosts.astype(np.int64)))
    g2l = np.full(n, -1, dtype=np.int64)
    g2l[l2g] = np.arange(l2g.shape[0], dtype=np.int64)
    if ew.shape[0] == 0:
        ew = np.empty((0, k), dtype=np.float64)
    sub = CSRGraph(int(l2g.shape[0]), g2l[es], g2l[ed], ew)
    # boundary: owned vertices with an out-edge whose destination is
    # owned elsewhere (their improvements must be emitted)
    out_cut = (
        (part[src] == index) & (part[dst] != index)
        if src.size
        else np.zeros(0, dtype=bool)
    )
    boundary = {int(lid) for lid in g2l[np.unique(src[out_cut])]}
    return CSRShard(index, owned, l2g, g2l, sub, boundary)


def build_shards(
    snapshot: CSRGraph, part: IntArray, parts: Optional[int] = None
) -> List[CSRShard]:
    """Shard ``snapshot`` under the owner assignment ``part``.

    ``parts`` fixes the shard count (required when trailing partitions
    own no vertices); defaults to ``max(part) + 1``.
    """
    part = np.asarray(part, dtype=np.int64)
    if part.shape[0] != snapshot.n:
        raise GraphError(
            f"partition assignment covers {part.shape[0]} vertices, "
            f"snapshot has {snapshot.n}"
        )
    if parts is None:
        parts = int(part.max()) + 1 if part.size else 1
    src, dst, w = live_edge_arrays(snapshot)
    return [
        build_shard(p, snapshot.n, src, dst, w, part, snapshot.k)
        for p in range(parts)
    ]
