"""Seeded synthetic network generators.

Two families matter for the reproduction (§4, Table 2):

- **Road-like networks** (:func:`grid_road`, :func:`road_like`): the
  paper uses road-usa, roadNet-CA and roadNet-PA — huge, very sparse
  (average degree 2.5–2.8), large-diameter, nearly planar graphs.  Our
  stand-in is a perturbed grid: a lattice with random missing streets
  and occasional diagonal shortcuts, which matches that sparsity and
  diameter class at configurable size.
- **Random geometric graphs** (:func:`random_geometric`): the paper
  uses rgg-n-2-20-s0 (the classic Graph500 RGG; average degree ≈ 6.6),
  chosen for the wireless-sensor-network scenario.  We generate the
  same family — n points in the unit square, edges within radius r —
  with a grid-bucket neighbour search (pure numpy, no KD-tree
  dependency).

All generators return a :class:`~repro.graph.digraph.DiGraph` with
``k`` random objectives attached (uniform by default) and are fully
deterministic given a seed.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.multiweight import uniform_weights
from repro.types import SeedLike

__all__ = [
    "grid_road",
    "road_like",
    "random_geometric",
    "erdos_renyi",
    "preferential_attachment",
    "layered_dag",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _attach(g: DiGraph, pairs, k: int, rng: np.random.Generator,
            low: float = 1.0, high: float = 10.0) -> DiGraph:
    """Add edges ``pairs`` to ``g`` with fresh uniform weight vectors."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    w = uniform_weights(len(pairs), k, rng, low=low, high=high)
    for i, (u, v) in enumerate(pairs):
        g.add_edge(int(u), int(v), w[i])
    return g


# ----------------------------------------------------------------------
# road-like family
# ----------------------------------------------------------------------
def grid_road(
    rows: int,
    cols: int,
    k: int = 1,
    seed: SeedLike = 0,
    drop_fraction: float = 0.1,
    diagonal_fraction: float = 0.02,
    bidirectional: bool = True,
) -> DiGraph:
    """A perturbed ``rows x cols`` lattice imitating a road network.

    Each lattice edge exists with probability ``1 - drop_fraction``
    (dropped streets); additionally ``diagonal_fraction`` of cells gain
    a diagonal shortcut.  With ``bidirectional=True`` each street is two
    directed edges with *independent* weights (asymmetric traffic).

    Average degree lands in the road-network range (~2.5–3.5 directed
    out-degree for the defaults), the diameter is Θ(rows + cols).
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid_road needs rows >= 1 and cols >= 1")
    rng = _rng(seed)
    n = rows * cols
    g = DiGraph(n, k)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    pairs = []
    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            if c + 1 < cols and rng.random() >= drop_fraction:
                pairs.append((u, vid(r, c + 1)))
            if r + 1 < rows and rng.random() >= drop_fraction:
                pairs.append((u, vid(r + 1, c)))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_fraction
            ):
                pairs.append((u, vid(r + 1, c + 1)))
    if bidirectional:
        pairs = pairs + [(v, u) for (u, v) in pairs]
    return _attach(g, pairs, k, rng)


def road_like(n: int, k: int = 1, seed: SeedLike = 0, **kwargs: Any) -> DiGraph:
    """A road-network stand-in with approximately ``n`` vertices.

    Convenience wrapper that picks grid dimensions near ``sqrt(n)`` and
    delegates to :func:`grid_road` — used by the Table 2 dataset
    registry as the stand-in for road-usa / roadNet-CA / roadNet-PA.
    """
    if n < 1:
        raise GraphError("road_like needs n >= 1")
    rows = max(1, int(math.isqrt(n)))
    cols = max(1, (n + rows - 1) // rows)
    return grid_road(rows, cols, k=k, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# random geometric family
# ----------------------------------------------------------------------
def random_geometric(
    n: int,
    radius: Optional[float] = None,
    k: int = 1,
    seed: SeedLike = 0,
    target_degree: float = 6.6,
    bidirectional: bool = True,
) -> DiGraph:
    """Random geometric graph on ``n`` uniform points in the unit square.

    Vertices ``u, v`` are connected when their Euclidean distance is at
    most ``radius``.  When ``radius`` is omitted it is chosen so the
    expected average degree matches ``target_degree`` (default 6.6,
    matching rgg-n-2-20-s0 from the paper's Table 2):
    ``E[deg] ≈ n * pi * r^2`` so ``r = sqrt(target / (n * pi))``.

    The neighbour search buckets points into a ``radius``-sized grid
    and compares only the 3x3 neighbouring cells — O(n · deg) instead
    of O(n²), pure numpy.
    """
    if n < 1:
        raise GraphError("random_geometric needs n >= 1")
    rng = _rng(seed)
    if radius is None:
        radius = math.sqrt(target_degree / (max(n, 2) * math.pi))
    pts = rng.random((n, 2))
    # Cell side must be >= radius for the 3x3 search to be exhaustive;
    # capping at ~sqrt(n) keeps the bucket index O(n) even for tiny radii
    # (cells merely get larger than strictly needed, which stays correct).
    ncells = max(1, min(int(1.0 / radius), int(math.isqrt(n)) + 1))
    cell = np.minimum((pts * ncells).astype(np.int64), ncells - 1)
    cell_key = cell[:, 0] * ncells + cell[:, 1]
    order = np.argsort(cell_key, kind="stable")
    sorted_keys = cell_key[order]
    # bucket boundaries
    starts = np.searchsorted(sorted_keys, np.arange(ncells * ncells), side="left")
    ends = np.searchsorted(sorted_keys, np.arange(ncells * ncells), side="right")

    r2 = radius * radius
    pairs = []
    for i in range(n):
        cx, cy = int(cell[i, 0]), int(cell[i, 1])
        for dx in (-1, 0, 1):
            nx = cx + dx
            if not 0 <= nx < ncells:
                continue
            for dy in (-1, 0, 1):
                ny = cy + dy
                if not 0 <= ny < ncells:
                    continue
                key = nx * ncells + ny
                js = order[starts[key] : ends[key]]
                js = js[js > i]  # each unordered pair once
                if len(js) == 0:
                    continue
                d = pts[js] - pts[i]
                close = js[(d * d).sum(axis=1) <= r2]
                for j in close:
                    pairs.append((i, int(j)))
    if bidirectional:
        pairs = pairs + [(v, u) for (u, v) in pairs]
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g


# ----------------------------------------------------------------------
# generic families (test fixtures, ablations)
# ----------------------------------------------------------------------
def erdos_renyi(n: int, m: int, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """G(n, m): exactly ``m`` directed edges with distinct random pairs.

    Self-loops are excluded; pairs are sampled without replacement.
    """
    if n < 1:
        raise GraphError("erdos_renyi needs n >= 1")
    max_m = n * (n - 1)
    if m > max_m:
        raise GraphError(f"cannot place {m} simple directed edges in n={n}")
    rng = _rng(seed)
    chosen: set = set()
    pairs = []
    # rejection sampling is fine while m << n^2; fall back to explicit
    # enumeration for dense requests
    if m > max_m // 2:
        all_pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        idx = rng.choice(len(all_pairs), size=m, replace=False)
        pairs = [all_pairs[i] for i in idx]
    else:
        while len(pairs) < m:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v or (u, v) in chosen:
                continue
            chosen.add((u, v))
            pairs.append((u, v))
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g


def preferential_attachment(n: int, m_per_vertex: int = 2, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """Barabási–Albert-style scale-free digraph.

    Each new vertex attaches ``m_per_vertex`` out-edges to existing
    vertices chosen proportionally to their current degree; each
    attachment also adds the reverse edge so the hub structure is
    reachable in both directions.
    """
    if n < 2:
        raise GraphError("preferential_attachment needs n >= 2")
    rng = _rng(seed)
    targets = [0]  # degree-weighted urn
    pairs = []
    for v in range(1, n):
        picks: set = set()
        want = min(m_per_vertex, v)
        while len(picks) < want:
            picks.add(int(targets[int(rng.integers(0, len(targets)))]))
        for u in picks:
            pairs.append((v, u))
            pairs.append((u, v))
            targets.extend((u, v))
        targets.append(v)
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng)


def layered_dag(layers: int, width: int, k: int = 1, seed: SeedLike = 0,
                fanout: int = 3) -> DiGraph:
    """A layered DAG: ``layers`` layers of ``width`` vertices.

    Every vertex connects to ``fanout`` random vertices of the next
    layer.  Useful for Pareto-front stress tests: the number of
    source→sink paths is ``width^(layers-1)``-ish while the graph stays
    small.
    """
    if layers < 1 or width < 1:
        raise GraphError("layered_dag needs layers >= 1 and width >= 1")
    rng = _rng(seed)
    n = layers * width
    pairs = []
    for layer in range(layers - 1):
        base = layer * width
        nxt = base + width
        for i in range(width):
            u = base + i
            f = min(fanout, width)
            vs = rng.choice(width, size=f, replace=False)
            for v in vs:
                pairs.append((u, nxt + int(v)))
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g


def path_graph(n: int, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    if n < 1:
        raise GraphError("path_graph needs n >= 1")
    rng = _rng(seed)
    pairs = [(i, i + 1) for i in range(n - 1)]
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g


def cycle_graph(n: int, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """Directed cycle on ``n`` vertices."""
    if n < 2:
        raise GraphError("cycle_graph needs n >= 2")
    rng = _rng(seed)
    pairs = [(i, (i + 1) % n) for i in range(n)]
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng)


def complete_graph(n: int, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """Complete digraph (every ordered pair, no self-loops)."""
    if n < 1:
        raise GraphError("complete_graph needs n >= 1")
    rng = _rng(seed)
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g


def star_graph(n: int, k: int = 1, seed: SeedLike = 0) -> DiGraph:
    """Star: centre 0 with edges to and from each leaf."""
    if n < 1:
        raise GraphError("star_graph needs n >= 1")
    rng = _rng(seed)
    pairs = []
    for v in range(1, n):
        pairs.append((0, v))
        pairs.append((v, 0))
    g = DiGraph(n, k)
    return _attach(g, pairs, k, rng) if pairs else g
