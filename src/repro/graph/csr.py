"""Compressed sparse-row (CSR) snapshots of a digraph, with incremental append.

The vectorised kernels (Bellman-Ford rounds, batched relaxation of
affected frontiers) want cache-friendly contiguous arrays rather than
the pointer-chasing adjacency of :class:`~repro.graph.digraph.DiGraph`.
A :class:`CSRGraph` freezes a digraph into

- forward CSR: ``indptr``/``indices``/``weights`` sorted by source, and
- reverse CSR: the same edges sorted by destination, with ``edge_perm``
  mapping reverse positions back to forward edge rows,

so both "neighbours of u" and "predecessors of v" are O(degree) slices.

Incremental append (the dynamic-batch story)
--------------------------------------------
A frozen snapshot would force an O(|E|) re-freeze after every change
batch, wiping out the point of an O(affected) update algorithm.
:meth:`CSRGraph.append_edges` therefore follows an **append-or-rebuild
policy**: appended edges land in a small COO *tail* (``tail_src`` /
``tail_dst`` / ``tail_weights``) in O(|batch|); only when the tail
outgrows ``max(MIN_TAIL_REBUILD, TAIL_REBUILD_FRACTION * m)`` is the
whole structure re-frozen, so the amortised per-batch cost stays
O(|batch|).  The per-vertex query methods merge the tail transparently;
whole-array consumers (``indptr``/``indices``/``src``/...) see only the
frozen base and must call :meth:`compact` first — or go through
:meth:`ensure`, which static solvers use at their entry points.

Deletion and weight mutation (the fully dynamic story)
------------------------------------------------------
:meth:`delete_edges` and :meth:`update_edge_weights` extend the
incremental contract to the other two record kinds without an O(|E|)
re-freeze: a deleted edge is *tombstoned* in place — its weight row
(base or tail) becomes ``+inf``, which no shortest-path relaxation can
ever improve through — and a weight change overwrites its target row
directly.  Both target the live matching edge with the
lexicographically smallest weight vector, exactly mirroring
:meth:`DiGraph.remove_edge` semantics so an incrementally maintained
snapshot stays edge-multiset-equal to its digraph.  Mutating a base
row bumps :attr:`base_stamp` (tail rows bump :attr:`tail_stamp`), so
shared-memory engines re-plant exactly the arrays that changed.
Tombstones are physically dropped at the next :meth:`compact`;
until then ``num_edges`` discounts them, structural queries
(``out_neighbors``/``in_neighbors``/degrees) may still report the dead
endpoints, and weight queries return their ``inf`` rows — harmless to
the relaxation kernels, which only ever take minima.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterator, Tuple, Union

import numpy as np

from repro.errors import GraphError, VertexError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, IntArray

if TYPE_CHECKING:  # circular at runtime: dynamic.changes uses graphs
    from repro.dynamic.changes import ChangeBatch

__all__ = ["CSRGraph"]


class CSRGraph:
    """CSR snapshot with forward and reverse adjacency plus a COO tail.

    Attributes
    ----------
    n, m, k:
        Vertex count, **frozen-base** edge count, number of objectives.
        ``num_edges`` additionally counts the appended tail.
    indptr, indices:
        Forward CSR over the frozen base: out-neighbours of ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``.
    weights:
        ``(m, k)`` float64, row ``i`` is the weight vector of forward
        edge ``i`` (head ``indices[i]``, tail given by the row's CSR
        bucket).
    rev_indptr, rev_indices:
        Reverse CSR: in-neighbours (predecessors) of ``v`` are
        ``rev_indices[rev_indptr[v]:rev_indptr[v+1]]``.
    edge_perm:
        ``rev`` position → forward edge row, i.e. the weight of the
        ``j``-th reverse edge is ``weights[edge_perm[j]]``.
    src:
        ``(m,)`` tail vertex of each forward edge row (the COO twin of
        the forward CSR, kept because edge-centric kernels want it).
    tail_src, tail_dst, tail_weights:
        Edges appended since the last freeze (COO, insertion order);
        empty on a compact snapshot.
    """

    #: Rebuild when the tail exceeds this fraction of the frozen base.
    TAIL_REBUILD_FRACTION = 0.25
    #: ... but never rebuild for tails smaller than this (absorbs tiny
    #: batches on tiny graphs without thrashing).
    MIN_TAIL_REBUILD = 64

    #: Process-wide snapshot identity source (see :attr:`uid`).
    _UID_SOURCE = itertools.count(1)

    __slots__ = (
        "n",
        "m",
        "k",
        "indptr",
        "indices",
        "weights",
        "src",
        "rev_indptr",
        "rev_indices",
        "edge_perm",
        "tail_src",
        "tail_dst",
        "tail_weights",
        "uid",
        "base_version",
        "tail_version",
        "num_dead",
    )

    def __init__(
        self,
        n: int,
        src: IntArray,
        dst: IntArray,
        weights: FloatArray,
    ) -> None:
        src, dst, weights = self._coerce_edges(src, dst, weights)
        if int(n) >= 0 and len(src) and (
            src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n
        ):
            raise VertexError(int(max(src.max(initial=0), dst.max(initial=0))), n)
        self.n = int(n)
        self.k = int(weights.shape[1])
        #: Process-unique snapshot id; together with the version
        #: counters it forms the fingerprints shared-memory engines use
        #: to skip re-copying unchanged arrays (see :attr:`base_stamp`).
        self.uid = next(self._UID_SOURCE)
        self.base_version = 0
        self.tail_version = 0
        #: Tombstoned (deleted-in-place) rows across base + tail; see
        #: :meth:`delete_edges`.  Discounted from :attr:`num_edges` and
        #: physically dropped by :meth:`compact`.
        self.num_dead = 0
        self._freeze(src, dst, weights)
        self.tail_src = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_dst = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_weights = np.empty((0, self.k), dtype=DIST_DTYPE)

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        """Restore a pickled/copied snapshot under a **fresh** uid.

        ``uid`` is process-local identity: a duplicate (pickle round
        trip, ``copy.deepcopy``) that kept the original's uid would
        present the same ``(uid, version)`` fingerprints while its
        array contents can diverge independently, so a shared-memory
        engine would skip re-planting and run kernels on stale data.
        Reassigning here keeps :attr:`base_stamp`/:attr:`tail_stamp`
        unique per live snapshot object.
        """
        for slot, value in state.items():
            setattr(self, slot, value)
        self.uid = next(self._UID_SOURCE)

    @staticmethod
    def _coerce_edges(
        src: IntArray, dst: IntArray, weights: FloatArray
    ) -> Tuple[IntArray, IntArray, FloatArray]:
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        weights = np.ascontiguousarray(weights, dtype=DIST_DTYPE)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
        m = src.shape[0]
        if dst.shape[0] != m or weights.shape[0] != m:
            raise GraphError("src/dst/weights length mismatch")
        return src, dst, weights

    def _freeze(self, src: IntArray, dst: IntArray, weights: FloatArray) -> None:
        """(Re)build the sorted base arrays from COO edges."""
        n = self.n
        self.m = int(src.shape[0])
        self.base_version += 1

        # forward CSR: stable sort edges by src
        order = np.argsort(src, kind="stable")
        self.src = src[order]
        self.indices = dst[order]
        self.weights = weights[order]
        self.indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.indptr, self.src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

        # reverse CSR: sort forward rows by dst
        rev_order = np.argsort(self.indices, kind="stable")
        self.edge_perm = rev_order.astype(VERTEX_DTYPE)
        self.rev_indices = self.src[rev_order]
        rev_dst = self.indices[rev_order]
        self.rev_indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.rev_indptr, rev_dst + 1, 1)
        np.cumsum(self.rev_indptr, out=self.rev_indptr)

    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, g: DiGraph) -> "CSRGraph":
        """Snapshot a :class:`DiGraph` (live edges only)."""
        src, dst, w = g.edge_arrays()
        return cls(g.num_vertices, src, dst, w)

    @classmethod
    def ensure(cls, graph: Union[DiGraph, "CSRGraph"]) -> "CSRGraph":
        """Coerce to a **compact** snapshot.

        A :class:`DiGraph` is frozen; a :class:`CSRGraph` with a tail
        is compacted in place (no-op when already compact).  This is
        the entry point the static SSSP solvers use, so an
        incrementally appended snapshot is always safe to hand to them.
        """
        if isinstance(graph, cls):
            graph.compact()
            return graph
        return cls.from_digraph(graph)

    # ------------------------------------------------------------------
    # incremental append (append-or-rebuild policy)
    # ------------------------------------------------------------------
    @property
    def num_tail_edges(self) -> int:
        """Edges currently in the appended COO tail."""
        return int(self.tail_src.shape[0])

    @property
    def num_edges(self) -> int:
        """Live edge count: frozen base plus appended tail, minus
        tombstoned rows."""
        return self.m + self.num_tail_edges - self.num_dead

    @property
    def is_compact(self) -> bool:
        """Whether all edges live in the sorted base (empty tail, no
        tombstones)."""
        return self.num_tail_edges == 0 and self.num_dead == 0

    @property
    def base_stamp(self) -> Tuple[int, int]:
        """Fingerprint of the frozen base arrays.

        Changes exactly when :meth:`_freeze` runs (construction,
        :meth:`compact`, the rebuild branch of :meth:`append_edges`),
        so a shared-memory engine can re-plant
        ``indptr``/``indices``/``weights``/reverse arrays only when the
        base actually changed — tail-only appends keep the stamp and
        cost zero copies.
        """
        return (self.uid, self.base_version)

    @property
    def tail_stamp(self) -> Tuple[int, int, int]:
        """Fingerprint of the COO tail (changes on every append or
        rebuild; includes the base version because :meth:`compact`
        empties the tail)."""
        return (self.uid, self.base_version, self.tail_version)

    def append_edges(
        self, src: IntArray, dst: IntArray, weights: FloatArray
    ) -> None:
        """Append a batch of edges in O(|batch|) amortised.

        New edges go to the COO tail; when the tail outgrows
        ``max(MIN_TAIL_REBUILD, TAIL_REBUILD_FRACTION * m)`` the whole
        snapshot is re-frozen (and the tail emptied).  Query methods
        see the appended edges immediately either way.
        """
        src, dst, weights = self._coerce_edges(src, dst, weights)
        if weights.shape[1] != self.k:
            raise GraphError(
                f"appended weights have k={weights.shape[1]}, snapshot "
                f"has k={self.k}"
            )
        if len(src) == 0:
            return
        if src.min() < 0 or src.max() >= self.n or dst.min() < 0 or dst.max() >= self.n:
            raise VertexError(
                int(max(src.max(initial=0), dst.max(initial=0))), self.n
            )
        self.tail_src = np.concatenate((self.tail_src, src))
        self.tail_dst = np.concatenate((self.tail_dst, dst))
        self.tail_weights = np.concatenate((self.tail_weights, weights))
        self.tail_version += 1
        limit = max(self.MIN_TAIL_REBUILD,
                    int(self.TAIL_REBUILD_FRACTION * self.m))
        if self.num_tail_edges > limit:
            self.compact()

    def append_batch(self, batch: "ChangeBatch") -> None:
        """Append the insertion records of a
        :class:`~repro.dynamic.changes.ChangeBatch` (duck-typed to
        avoid an import cycle).  Deletion and weight-change records are
        rejected — use :meth:`apply_batch` for mixed batches."""
        if getattr(batch, "num_deletions", 0) or getattr(
            batch, "num_weight_changes", 0
        ):
            raise GraphError(
                "append_batch takes insertion batches only; use "
                "apply_batch() for mixed insert/delete/weight-change "
                "batches"
            )
        src, dst, w = batch.insert_records()
        self.append_edges(src, dst, w)

    def apply_batch(self, batch: "ChangeBatch") -> None:
        """Apply a mixed :class:`~repro.dynamic.changes.ChangeBatch` in
        record order, the CSR twin of
        :meth:`~repro.dynamic.changes.ChangeBatch.apply_to`.

        Insertions append to the COO tail, deletions tombstone their
        target row, weight changes overwrite theirs; runs of
        consecutive insertions are appended in one O(|run|) call.
        After ``batch.apply_to(graph)`` + ``snapshot.apply_batch(batch)``
        the snapshot's live edge multiset equals the digraph's.
        """
        kind = np.asarray(batch.kind)
        b = int(kind.shape[0])
        i = 0
        while i < b:
            j = i + 1
            while j < b and kind[j] == kind[i]:
                j += 1
            code = int(kind[i])
            if code == 1:  # KIND_INSERT (duck-typed, no import cycle)
                self.append_edges(
                    batch.src[i:j], batch.dst[i:j], batch.weights[i:j]
                )
            elif code == 0:  # KIND_DELETE
                self.delete_edges(batch.src[i:j], batch.dst[i:j])
            else:  # KIND_WEIGHT
                self.update_edge_weights(
                    batch.src[i:j], batch.dst[i:j], batch.weights[i:j]
                )
            i = j

    def _find_live_min(self, u: int, v: int) -> Tuple[int, int]:
        """Locate the live ``(u, v)`` edge with the lexicographically
        smallest weight vector (the :meth:`DiGraph.remove_edge` target).

        Returns ``(where, row)`` with ``where`` 0 = base / 1 = tail, or
        ``(-1, -1)`` when no live edge matches.  Base rows precede tail
        rows in the scan, matching insertion order, so ties resolve to
        the same multiset outcome as the digraph.
        """
        best_where, best_row = -1, -1
        best_w: Tuple[float, ...] = ()
        for row in range(int(self.indptr[u]), int(self.indptr[u + 1])):
            if int(self.indices[row]) != v:
                continue
            w = tuple(self.weights[row])
            if not np.isfinite(w[0]):
                continue  # tombstone
            if best_where < 0 or w < best_w:
                best_where, best_row, best_w = 0, row, w
        if self.num_tail_edges:
            for row in np.flatnonzero(
                (self.tail_src == u) & (self.tail_dst == v)
            ):
                w = tuple(self.tail_weights[int(row)])
                if not np.isfinite(w[0]):
                    continue
                if best_where < 0 or w < best_w:
                    best_where, best_row, best_w = 1, int(row), w
        return best_where, best_row

    def delete_edges(self, src: IntArray, dst: IntArray) -> int:
        """Tombstone one live edge per ``(u, v)`` record, in order.

        The target row's weight vector becomes ``+inf`` — semantically
        deleted for every relaxation kernel (``dist + inf`` never
        improves anything) without disturbing the CSR layout.  Records
        with no live match are skipped (the idempotent semantics of
        :meth:`ChangeBatch.apply_to`).  Returns the number tombstoned.
        """
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        removed = 0
        base_touched = tail_touched = False
        for u, v in zip(src.tolist(), dst.tolist()):
            where, row = self._find_live_min(int(u), int(v))
            if where < 0:
                continue
            if where == 0:
                self.weights[row, :] = np.inf
                base_touched = True
            else:
                self.tail_weights[row, :] = np.inf
                tail_touched = True
            self.num_dead += 1
            removed += 1
        if base_touched:
            self.base_version += 1
        if tail_touched:
            self.tail_version += 1
        return removed

    def update_edge_weights(
        self, src: IntArray, dst: IntArray, weights: FloatArray
    ) -> int:
        """Overwrite the weight vector of one live edge per record.

        Each ``(u, v, w)`` record re-resolves its target (the live
        lex-min parallel edge) *after* the previous record applied, so
        consecutive changes to one pair behave exactly like repeated
        :meth:`DiGraph.set_weight` calls through
        :meth:`ChangeBatch.apply_to`.  Records with no live match are
        skipped.  Returns the number of rows rewritten.
        """
        src, dst, weights = self._coerce_edges(src, dst, weights)
        if weights.shape[1] != self.k:
            raise GraphError(
                f"weight updates have k={weights.shape[1]}, snapshot "
                f"has k={self.k}"
            )
        changed = 0
        base_touched = tail_touched = False
        for i in range(len(src)):
            where, row = self._find_live_min(int(src[i]), int(dst[i]))
            if where < 0:
                continue
            if where == 0:
                self.weights[row] = weights[i]
                base_touched = True
            else:
                self.tail_weights[row] = weights[i]
                tail_touched = True
            changed += 1
        if base_touched:
            self.base_version += 1
        if tail_touched:
            self.tail_version += 1
        return changed

    def compact(self) -> None:
        """Merge the tail into the sorted base, dropping tombstoned
        rows (no-op when already compact)."""
        if self.is_compact:
            return
        src = np.concatenate((self.src, self.tail_src))
        dst = np.concatenate((self.indices, self.tail_dst))
        w = np.concatenate((self.weights, self.tail_weights))
        if self.num_dead:
            alive = np.isfinite(w).all(axis=1)
            src, dst, w = src[alive], dst[alive], w[alive]
        # un-sort is unnecessary: _freeze stable-sorts by src, and the
        # base is already src-sorted, so base rows keep their relative
        # order and tail rows land after them within each bucket.
        self._freeze(src, dst, w)
        self.num_dead = 0
        self.tail_src = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_dst = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_weights = np.empty((0, self.k), dtype=DIST_DTYPE)

    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> IntArray:
        """Array of out-neighbour ids of ``u`` (may contain repeats)."""
        base = self.indices[self.indptr[u] : self.indptr[u + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_dst[self.tail_src == u]))

    def out_weights(self, u: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``u``'s out-edges, aligned with
        :meth:`out_neighbors`."""
        base = self.weights[self.indptr[u] : self.indptr[u + 1], objective]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate(
            (base, self.tail_weights[self.tail_src == u, objective])
        )

    def out_weight_vectors(self, u: int) -> FloatArray:
        """``(deg, k)`` weight vectors of ``u``'s out-edges."""
        base = self.weights[self.indptr[u] : self.indptr[u + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_weights[self.tail_src == u]))

    def in_neighbors(self, v: int) -> IntArray:
        """Array of predecessor ids of ``v``."""
        base = self.rev_indices[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_src[self.tail_dst == v]))

    def in_weights(self, v: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``v``'s in-edges, aligned with
        :meth:`in_neighbors`."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        base = self.weights[rows, objective]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate(
            (base, self.tail_weights[self.tail_dst == v, objective])
        )

    def in_weight_vectors(self, v: int) -> FloatArray:
        """``(indeg, k)`` weight vectors of ``v``'s in-edges."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        base = self.weights[rows]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_weights[self.tail_dst == v]))

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        deg = int(self.indptr[u + 1] - self.indptr[u])
        if self.num_tail_edges:
            deg += int((self.tail_src == u).sum())
        return deg

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        deg = int(self.rev_indptr[v + 1] - self.rev_indptr[v])
        if self.num_tail_edges:
            deg += int((self.tail_dst == v).sum())
        return deg

    def edges(self) -> Iterator[Tuple[int, int, FloatArray]]:
        """Yield ``(u, v, weight_vector)`` over all **live** edges
        (base, then appended tail); tombstoned rows are skipped."""
        for i in range(self.m):
            if np.isfinite(self.weights[i, 0]):
                yield int(self.src[i]), int(self.indices[i]), self.weights[i]
        for j in range(self.num_tail_edges):
            if np.isfinite(self.tail_weights[j, 0]):
                yield (
                    int(self.tail_src[j]),
                    int(self.tail_dst[j]),
                    self.tail_weights[j],
                )

    def average_degree(self) -> float:
        """Mean out-degree ``num_edges / n``."""
        return self.num_edges / self.n if self.n else 0.0

    def to_digraph(self) -> DiGraph:
        """Thaw back into a mutable :class:`DiGraph`."""
        g = DiGraph(self.n, self.k)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = f", tail={self.num_tail_edges}" if self.num_tail_edges else ""
        dead = f", dead={self.num_dead}" if self.num_dead else ""
        return f"CSRGraph(n={self.n}, m={self.m}, k={self.k}{tail}{dead})"
