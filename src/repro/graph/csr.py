"""Immutable compressed sparse-row (CSR) snapshots of a digraph.

The vectorised kernels (Bellman-Ford rounds, batched relaxation of
affected frontiers) want cache-friendly contiguous arrays rather than
the pointer-chasing adjacency of :class:`~repro.graph.digraph.DiGraph`.
A :class:`CSRGraph` freezes a digraph into

- forward CSR: ``indptr``/``indices``/``weights`` sorted by source, and
- reverse CSR: the same edges sorted by destination, with ``edge_perm``
  mapping reverse positions back to forward edge rows,

so both "neighbours of u" and "predecessors of v" are O(degree) slices.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphError, VertexError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, IntArray

__all__ = ["CSRGraph"]


class CSRGraph:
    """Frozen CSR snapshot with forward and reverse adjacency.

    Attributes
    ----------
    n, m, k:
        Vertex count, edge count, number of objectives.
    indptr, indices:
        Forward CSR: out-neighbours of ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``.
    weights:
        ``(m, k)`` float64, row ``i`` is the weight vector of forward
        edge ``i`` (head ``indices[i]``, tail given by the row's CSR
        bucket).
    rev_indptr, rev_indices:
        Reverse CSR: in-neighbours (predecessors) of ``v`` are
        ``rev_indices[rev_indptr[v]:rev_indptr[v+1]]``.
    edge_perm:
        ``rev`` position → forward edge row, i.e. the weight of the
        ``j``-th reverse edge is ``weights[edge_perm[j]]``.
    src:
        ``(m,)`` tail vertex of each forward edge row (the COO twin of
        the forward CSR, kept because edge-centric kernels want it).
    """

    __slots__ = (
        "n",
        "m",
        "k",
        "indptr",
        "indices",
        "weights",
        "src",
        "rev_indptr",
        "rev_indices",
        "edge_perm",
    )

    def __init__(
        self,
        n: int,
        src: IntArray,
        dst: IntArray,
        weights: FloatArray,
    ) -> None:
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        weights = np.ascontiguousarray(weights, dtype=DIST_DTYPE)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
        m = src.shape[0]
        if dst.shape[0] != m or weights.shape[0] != m:
            raise GraphError("src/dst/weights length mismatch")
        if m and (src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n):
            raise VertexError(int(max(src.max(initial=0), dst.max(initial=0))), n)

        self.n = int(n)
        self.m = int(m)
        self.k = int(weights.shape[1])

        # forward CSR: stable sort edges by src
        order = np.argsort(src, kind="stable")
        self.src = src[order]
        self.indices = dst[order]
        self.weights = weights[order]
        self.indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.indptr, self.src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

        # reverse CSR: sort forward rows by dst
        rev_order = np.argsort(self.indices, kind="stable")
        self.edge_perm = rev_order.astype(VERTEX_DTYPE)
        self.rev_indices = self.src[rev_order]
        rev_dst = self.indices[rev_order]
        self.rev_indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.rev_indptr, rev_dst + 1, 1)
        np.cumsum(self.rev_indptr, out=self.rev_indptr)

    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, g: DiGraph) -> "CSRGraph":
        """Snapshot a :class:`DiGraph` (live edges only)."""
        src, dst, w = g.edge_arrays()
        return cls(g.num_vertices, src, dst, w)

    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> IntArray:
        """Array of out-neighbour ids of ``u`` (may contain repeats)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def out_weights(self, u: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``u``'s out-edges, aligned with
        :meth:`out_neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1], objective]

    def out_weight_vectors(self, u: int) -> FloatArray:
        """``(deg, k)`` weight vectors of ``u``'s out-edges."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def in_neighbors(self, v: int) -> IntArray:
        """Array of predecessor ids of ``v``."""
        return self.rev_indices[self.rev_indptr[v] : self.rev_indptr[v + 1]]

    def in_weights(self, v: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``v``'s in-edges, aligned with
        :meth:`in_neighbors`."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        return self.weights[rows, objective]

    def in_weight_vectors(self, v: int) -> FloatArray:
        """``(indeg, k)`` weight vectors of ``v``'s in-edges."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        return self.weights[rows]

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        return int(self.rev_indptr[v + 1] - self.rev_indptr[v])

    def edges(self) -> Iterator[Tuple[int, int, FloatArray]]:
        """Yield ``(u, v, weight_vector)`` over all edges."""
        for i in range(self.m):
            yield int(self.src[i]), int(self.indices[i]), self.weights[i]

    def average_degree(self) -> float:
        """Mean out-degree ``m / n``."""
        return self.m / self.n if self.n else 0.0

    def to_digraph(self) -> DiGraph:
        """Thaw back into a mutable :class:`DiGraph`."""
        g = DiGraph(self.n, self.k)
        for i in range(self.m):
            g.add_edge(int(self.src[i]), int(self.indices[i]), self.weights[i])
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.m}, k={self.k})"
