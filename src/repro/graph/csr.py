"""Compressed sparse-row (CSR) snapshots of a digraph, with incremental append.

The vectorised kernels (Bellman-Ford rounds, batched relaxation of
affected frontiers) want cache-friendly contiguous arrays rather than
the pointer-chasing adjacency of :class:`~repro.graph.digraph.DiGraph`.
A :class:`CSRGraph` freezes a digraph into

- forward CSR: ``indptr``/``indices``/``weights`` sorted by source, and
- reverse CSR: the same edges sorted by destination, with ``edge_perm``
  mapping reverse positions back to forward edge rows,

so both "neighbours of u" and "predecessors of v" are O(degree) slices.

Incremental append (the dynamic-batch story)
--------------------------------------------
A frozen snapshot would force an O(|E|) re-freeze after every change
batch, wiping out the point of an O(affected) update algorithm.
:meth:`CSRGraph.append_edges` therefore follows an **append-or-rebuild
policy**: appended edges land in a small COO *tail* (``tail_src`` /
``tail_dst`` / ``tail_weights``) in O(|batch|); only when the tail
outgrows ``max(MIN_TAIL_REBUILD, TAIL_REBUILD_FRACTION * m)`` is the
whole structure re-frozen, so the amortised per-batch cost stays
O(|batch|).  The per-vertex query methods merge the tail transparently;
whole-array consumers (``indptr``/``indices``/``src``/...) see only the
frozen base and must call :meth:`compact` first — or go through
:meth:`ensure`, which static solvers use at their entry points.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterator, Tuple, Union

import numpy as np

from repro.errors import GraphError, VertexError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, IntArray

if TYPE_CHECKING:  # circular at runtime: dynamic.changes uses graphs
    from repro.dynamic.changes import ChangeBatch

__all__ = ["CSRGraph"]


class CSRGraph:
    """CSR snapshot with forward and reverse adjacency plus a COO tail.

    Attributes
    ----------
    n, m, k:
        Vertex count, **frozen-base** edge count, number of objectives.
        ``num_edges`` additionally counts the appended tail.
    indptr, indices:
        Forward CSR over the frozen base: out-neighbours of ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``.
    weights:
        ``(m, k)`` float64, row ``i`` is the weight vector of forward
        edge ``i`` (head ``indices[i]``, tail given by the row's CSR
        bucket).
    rev_indptr, rev_indices:
        Reverse CSR: in-neighbours (predecessors) of ``v`` are
        ``rev_indices[rev_indptr[v]:rev_indptr[v+1]]``.
    edge_perm:
        ``rev`` position → forward edge row, i.e. the weight of the
        ``j``-th reverse edge is ``weights[edge_perm[j]]``.
    src:
        ``(m,)`` tail vertex of each forward edge row (the COO twin of
        the forward CSR, kept because edge-centric kernels want it).
    tail_src, tail_dst, tail_weights:
        Edges appended since the last freeze (COO, insertion order);
        empty on a compact snapshot.
    """

    #: Rebuild when the tail exceeds this fraction of the frozen base.
    TAIL_REBUILD_FRACTION = 0.25
    #: ... but never rebuild for tails smaller than this (absorbs tiny
    #: batches on tiny graphs without thrashing).
    MIN_TAIL_REBUILD = 64

    #: Process-wide snapshot identity source (see :attr:`uid`).
    _UID_SOURCE = itertools.count(1)

    __slots__ = (
        "n",
        "m",
        "k",
        "indptr",
        "indices",
        "weights",
        "src",
        "rev_indptr",
        "rev_indices",
        "edge_perm",
        "tail_src",
        "tail_dst",
        "tail_weights",
        "uid",
        "base_version",
        "tail_version",
    )

    def __init__(
        self,
        n: int,
        src: IntArray,
        dst: IntArray,
        weights: FloatArray,
    ) -> None:
        src, dst, weights = self._coerce_edges(src, dst, weights)
        if int(n) >= 0 and len(src) and (
            src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n
        ):
            raise VertexError(int(max(src.max(initial=0), dst.max(initial=0))), n)
        self.n = int(n)
        self.k = int(weights.shape[1])
        #: Process-unique snapshot id; together with the version
        #: counters it forms the fingerprints shared-memory engines use
        #: to skip re-copying unchanged arrays (see :attr:`base_stamp`).
        self.uid = next(self._UID_SOURCE)
        self.base_version = 0
        self.tail_version = 0
        self._freeze(src, dst, weights)
        self.tail_src = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_dst = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_weights = np.empty((0, self.k), dtype=DIST_DTYPE)

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        """Restore a pickled/copied snapshot under a **fresh** uid.

        ``uid`` is process-local identity: a duplicate (pickle round
        trip, ``copy.deepcopy``) that kept the original's uid would
        present the same ``(uid, version)`` fingerprints while its
        array contents can diverge independently, so a shared-memory
        engine would skip re-planting and run kernels on stale data.
        Reassigning here keeps :attr:`base_stamp`/:attr:`tail_stamp`
        unique per live snapshot object.
        """
        for slot, value in state.items():
            setattr(self, slot, value)
        self.uid = next(self._UID_SOURCE)

    @staticmethod
    def _coerce_edges(
        src: IntArray, dst: IntArray, weights: FloatArray
    ) -> Tuple[IntArray, IntArray, FloatArray]:
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        weights = np.ascontiguousarray(weights, dtype=DIST_DTYPE)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
        m = src.shape[0]
        if dst.shape[0] != m or weights.shape[0] != m:
            raise GraphError("src/dst/weights length mismatch")
        return src, dst, weights

    def _freeze(self, src: IntArray, dst: IntArray, weights: FloatArray) -> None:
        """(Re)build the sorted base arrays from COO edges."""
        n = self.n
        self.m = int(src.shape[0])
        self.base_version += 1

        # forward CSR: stable sort edges by src
        order = np.argsort(src, kind="stable")
        self.src = src[order]
        self.indices = dst[order]
        self.weights = weights[order]
        self.indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.indptr, self.src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

        # reverse CSR: sort forward rows by dst
        rev_order = np.argsort(self.indices, kind="stable")
        self.edge_perm = rev_order.astype(VERTEX_DTYPE)
        self.rev_indices = self.src[rev_order]
        rev_dst = self.indices[rev_order]
        self.rev_indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(self.rev_indptr, rev_dst + 1, 1)
        np.cumsum(self.rev_indptr, out=self.rev_indptr)

    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, g: DiGraph) -> "CSRGraph":
        """Snapshot a :class:`DiGraph` (live edges only)."""
        src, dst, w = g.edge_arrays()
        return cls(g.num_vertices, src, dst, w)

    @classmethod
    def ensure(cls, graph: Union[DiGraph, "CSRGraph"]) -> "CSRGraph":
        """Coerce to a **compact** snapshot.

        A :class:`DiGraph` is frozen; a :class:`CSRGraph` with a tail
        is compacted in place (no-op when already compact).  This is
        the entry point the static SSSP solvers use, so an
        incrementally appended snapshot is always safe to hand to them.
        """
        if isinstance(graph, cls):
            graph.compact()
            return graph
        return cls.from_digraph(graph)

    # ------------------------------------------------------------------
    # incremental append (append-or-rebuild policy)
    # ------------------------------------------------------------------
    @property
    def num_tail_edges(self) -> int:
        """Edges currently in the appended COO tail."""
        return int(self.tail_src.shape[0])

    @property
    def num_edges(self) -> int:
        """Total edge count: frozen base plus appended tail."""
        return self.m + self.num_tail_edges

    @property
    def is_compact(self) -> bool:
        """Whether all edges live in the sorted base (empty tail)."""
        return self.num_tail_edges == 0

    @property
    def base_stamp(self) -> Tuple[int, int]:
        """Fingerprint of the frozen base arrays.

        Changes exactly when :meth:`_freeze` runs (construction,
        :meth:`compact`, the rebuild branch of :meth:`append_edges`),
        so a shared-memory engine can re-plant
        ``indptr``/``indices``/``weights``/reverse arrays only when the
        base actually changed — tail-only appends keep the stamp and
        cost zero copies.
        """
        return (self.uid, self.base_version)

    @property
    def tail_stamp(self) -> Tuple[int, int, int]:
        """Fingerprint of the COO tail (changes on every append or
        rebuild; includes the base version because :meth:`compact`
        empties the tail)."""
        return (self.uid, self.base_version, self.tail_version)

    def append_edges(
        self, src: IntArray, dst: IntArray, weights: FloatArray
    ) -> None:
        """Append a batch of edges in O(|batch|) amortised.

        New edges go to the COO tail; when the tail outgrows
        ``max(MIN_TAIL_REBUILD, TAIL_REBUILD_FRACTION * m)`` the whole
        snapshot is re-frozen (and the tail emptied).  Query methods
        see the appended edges immediately either way.
        """
        src, dst, weights = self._coerce_edges(src, dst, weights)
        if weights.shape[1] != self.k:
            raise GraphError(
                f"appended weights have k={weights.shape[1]}, snapshot "
                f"has k={self.k}"
            )
        if len(src) == 0:
            return
        if src.min() < 0 or src.max() >= self.n or dst.min() < 0 or dst.max() >= self.n:
            raise VertexError(
                int(max(src.max(initial=0), dst.max(initial=0))), self.n
            )
        self.tail_src = np.concatenate((self.tail_src, src))
        self.tail_dst = np.concatenate((self.tail_dst, dst))
        self.tail_weights = np.concatenate((self.tail_weights, weights))
        self.tail_version += 1
        limit = max(self.MIN_TAIL_REBUILD,
                    int(self.TAIL_REBUILD_FRACTION * self.m))
        if self.num_tail_edges > limit:
            self.compact()

    def append_batch(self, batch: "ChangeBatch") -> None:
        """Append the insertion records of a
        :class:`~repro.dynamic.changes.ChangeBatch` (duck-typed to
        avoid an import cycle).  Deletion records are rejected —
        snapshots are incremental-insert only."""
        if getattr(batch, "num_deletions", 0):
            raise GraphError(
                "CSR snapshots support insertion batches only; rebuild "
                "with from_digraph() after deletions"
            )
        src, dst, w = batch.insert_records()
        self.append_edges(src, dst, w)

    def compact(self) -> None:
        """Merge the tail into the sorted base (no-op when compact)."""
        if self.is_compact:
            return
        src = np.concatenate((self.src, self.tail_src))
        dst = np.concatenate((self.indices, self.tail_dst))
        w = np.concatenate((self.weights, self.tail_weights))
        # un-sort is unnecessary: _freeze stable-sorts by src, and the
        # base is already src-sorted, so base rows keep their relative
        # order and tail rows land after them within each bucket.
        self._freeze(src, dst, w)
        self.tail_src = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_dst = np.empty(0, dtype=VERTEX_DTYPE)
        self.tail_weights = np.empty((0, self.k), dtype=DIST_DTYPE)

    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> IntArray:
        """Array of out-neighbour ids of ``u`` (may contain repeats)."""
        base = self.indices[self.indptr[u] : self.indptr[u + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_dst[self.tail_src == u]))

    def out_weights(self, u: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``u``'s out-edges, aligned with
        :meth:`out_neighbors`."""
        base = self.weights[self.indptr[u] : self.indptr[u + 1], objective]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate(
            (base, self.tail_weights[self.tail_src == u, objective])
        )

    def out_weight_vectors(self, u: int) -> FloatArray:
        """``(deg, k)`` weight vectors of ``u``'s out-edges."""
        base = self.weights[self.indptr[u] : self.indptr[u + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_weights[self.tail_src == u]))

    def in_neighbors(self, v: int) -> IntArray:
        """Array of predecessor ids of ``v``."""
        base = self.rev_indices[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_src[self.tail_dst == v]))

    def in_weights(self, v: int, objective: int = 0) -> FloatArray:
        """Weights (one objective) of ``v``'s in-edges, aligned with
        :meth:`in_neighbors`."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        base = self.weights[rows, objective]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate(
            (base, self.tail_weights[self.tail_dst == v, objective])
        )

    def in_weight_vectors(self, v: int) -> FloatArray:
        """``(indeg, k)`` weight vectors of ``v``'s in-edges."""
        rows = self.edge_perm[self.rev_indptr[v] : self.rev_indptr[v + 1]]
        base = self.weights[rows]
        if self.num_tail_edges == 0:
            return base
        return np.concatenate((base, self.tail_weights[self.tail_dst == v]))

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        deg = int(self.indptr[u + 1] - self.indptr[u])
        if self.num_tail_edges:
            deg += int((self.tail_src == u).sum())
        return deg

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        deg = int(self.rev_indptr[v + 1] - self.rev_indptr[v])
        if self.num_tail_edges:
            deg += int((self.tail_dst == v).sum())
        return deg

    def edges(self) -> Iterator[Tuple[int, int, FloatArray]]:
        """Yield ``(u, v, weight_vector)`` over all edges (base, then
        appended tail)."""
        for i in range(self.m):
            yield int(self.src[i]), int(self.indices[i]), self.weights[i]
        for j in range(self.num_tail_edges):
            yield (
                int(self.tail_src[j]),
                int(self.tail_dst[j]),
                self.tail_weights[j],
            )

    def average_degree(self) -> float:
        """Mean out-degree ``num_edges / n``."""
        return self.num_edges / self.n if self.n else 0.0

    def to_digraph(self) -> DiGraph:
        """Thaw back into a mutable :class:`DiGraph`."""
        g = DiGraph(self.n, self.k)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = f", tail={self.num_tail_edges}" if self.num_tail_edges else ""
        return f"CSRGraph(n={self.n}, m={self.m}, k={self.k}{tail})"
