"""Graph substrate: dynamic directed graphs with multi-objective weights.

This package provides everything the shortest-path layers sit on:

- :class:`~repro.graph.digraph.DiGraph` — a mutable directed graph with
  per-edge weight *vectors* (one component per objective), O(1)
  amortised edge insertion and tombstone deletion.  This is the
  "arrays of structures" adjacency the paper describes, adapted to
  numpy storage.
- :class:`~repro.graph.csr.CSRGraph` — an immutable compressed
  sparse-row snapshot (forward and reverse) used by the vectorised
  kernels (Bellman-Ford rounds, batch relaxation).
- :mod:`~repro.graph.generators` — seeded synthetic network
  generators, including the road-like and random-geometric families
  used as stand-ins for the paper's Table 2 datasets.
- :mod:`~repro.graph.io` — edge-list and MatrixMarket readers/writers
  so the real network-repository datasets can be dropped in.
"""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_road,
    layered_dag,
    path_graph,
    preferential_attachment,
    random_geometric,
    road_like,
    star_graph,
)
from repro.graph.multiweight import (
    anticorrelated_weights,
    attach_random_weights,
    correlated_weights,
    uniform_weights,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "grid_road",
    "road_like",
    "random_geometric",
    "erdos_renyi",
    "preferential_attachment",
    "layered_dag",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "attach_random_weights",
    "uniform_weights",
    "correlated_weights",
    "anticorrelated_weights",
]
