"""Graph readers and writers.

Two formats:

- **Edge list** — one edge per line: ``u v w1 [w2 ... wk]``; ``#``
  comments allowed.  Our native interchange format.
- **MatrixMarket coordinate** (``.mtx``) — the format used by the
  network-repository collection the paper draws its datasets from
  (road-usa, rgg-n-2-20-s0, roadNet-CA, roadNet-PA).  Reading an
  unweighted/pattern ``.mtx`` yields a topology-only graph that can be
  re-weighted with
  :func:`repro.graph.multiweight.attach_random_weights`, exactly
  mirroring the paper's dataset preparation.

MatrixMarket indices are 1-based; we convert to 0-based.  ``symmetric``
matrices expand each entry into both directed edges.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

from repro.errors import IOFormatError
from repro.graph.digraph import DiGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]

PathLike = Union[str, Path]


def _open_for_read(source: Union[PathLike, TextIO]):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: Union[PathLike, TextIO]):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def write_edge_list(g: DiGraph, target: Union[PathLike, TextIO]) -> None:
    """Write ``g`` as ``u v w1 ... wk`` lines with a header comment."""
    fh, close = _open_for_write(target)
    try:
        fh.write(f"# repro edge list n={g.num_vertices} k={g.num_objectives}\n")
        for u, v, eid in g.edges():
            ws = " ".join(repr(float(x)) for x in g.weight(eid))
            fh.write(f"{u} {v} {ws}\n")
    finally:
        if close:
            fh.close()


def read_edge_list(source: Union[PathLike, TextIO]) -> DiGraph:
    """Read an edge list written by :func:`write_edge_list`.

    The ``n=``/``k=`` header is honoured when present; otherwise ``n``
    is inferred as ``max id + 1`` and ``k`` from the first data line.
    """
    fh, close = _open_for_read(source)
    try:
        n_hint = None
        k_hint = None
        rows: List[List[float]] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("n="):
                        n_hint = int(token[2:])
                    elif token.startswith("k="):
                        k_hint = int(token[2:])
                continue
            parts = line.split()
            if len(parts) < 3:
                raise IOFormatError(
                    f"line {lineno}: expected 'u v w1 [..wk]', got {line!r}"
                )
            try:
                rows.append([float(x) for x in parts])
            except ValueError as exc:
                raise IOFormatError(f"line {lineno}: {exc}") from exc
        if not rows:
            return DiGraph(n_hint or 0, k_hint or 1)
        k = k_hint if k_hint is not None else len(rows[0]) - 2
        if k < 1:
            raise IOFormatError("edge lines carry no weight columns")
        max_id = int(max(max(r[0], r[1]) for r in rows))
        n = n_hint if n_hint is not None else max_id + 1
        g = DiGraph(n, k)
        for r in rows:
            if len(r) - 2 != k:
                raise IOFormatError(
                    f"inconsistent weight arity: expected {k}, got {len(r) - 2}"
                )
            g.add_edge(int(r[0]), int(r[1]), r[2:])
        return g
    finally:
        if close:
            fh.close()


def read_matrix_market(
    source: Union[PathLike, TextIO],
    k: int = 1,
    default_weight: float = 1.0,
) -> DiGraph:
    """Read a MatrixMarket coordinate file as a digraph.

    ``pattern`` matrices (the usual case for network-repository
    topologies) get ``default_weight`` replicated over ``k``
    objectives; ``real``/``integer`` matrices use the stored value for
    every objective.  ``symmetric``/``skew-symmetric`` storage is
    expanded into both edge directions.
    """
    fh, close = _open_for_read(source)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise IOFormatError("missing %%MatrixMarket header")
        tokens = header.lower().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise IOFormatError(f"unsupported MatrixMarket header: {header!r}")
        field = tokens[3]  # real | integer | pattern | complex
        symmetry = tokens[4]  # general | symmetric | skew-symmetric
        if field == "complex":
            raise IOFormatError("complex matrices are not graphs we support")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            nrows, ncols, nnz = (int(x) for x in line.split()[:3])
        except (ValueError, IndexError) as exc:
            raise IOFormatError(f"bad size line: {line!r}") from exc
        n = max(nrows, ncols)
        g = DiGraph(n, k)
        seen = 0
        for raw in fh:
            raw = raw.strip()
            if not raw or raw.startswith("%"):
                continue
            parts = raw.split()
            u = int(parts[0]) - 1
            v = int(parts[1]) - 1
            if field == "pattern":
                w = default_weight
            else:
                w = abs(float(parts[2])) if len(parts) > 2 else default_weight
                if w == 0.0:
                    w = default_weight
            wv = [w] * k
            g.add_edge(u, v, wv)
            if symmetry in ("symmetric", "skew-symmetric") and u != v:
                g.add_edge(v, u, wv)
            seen += 1
        if seen != nnz:
            raise IOFormatError(f"expected {nnz} entries, found {seen}")
        return g
    finally:
        if close:
            fh.close()


def write_matrix_market(g: DiGraph, target: Union[PathLike, TextIO],
                        objective: int = 0) -> None:
    """Write one objective of ``g`` as a general real coordinate matrix."""
    fh, close = _open_for_write(target)
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{g.num_vertices} {g.num_vertices} {g.num_edges}\n")
        for u, v, eid in g.edges():
            fh.write(f"{u + 1} {v + 1} {g.weight_scalar(eid, objective)!r}\n")
    finally:
        if close:
            fh.close()


def edge_list_to_string(g: DiGraph) -> str:
    """Render ``g`` as an edge-list string (round-trips via
    :func:`read_edge_list`)."""
    buf = io.StringIO()
    write_edge_list(g, buf)
    return buf.getvalue()
