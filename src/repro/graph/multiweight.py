"""Multi-objective weight attachment and weight distributions.

The paper (§4, Experimental Setup) takes unweighted networks from the
network-repository collection and "adds a set of random edge weights
depending on the number of objectives".  These helpers implement that
step, plus correlated / anticorrelated variants that are standard in
the multi-objective shortest path literature: anticorrelated weights
produce large Pareto fronts (the hard case), correlated weights produce
near-degenerate fronts (the easy case).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WeightError
from repro.graph.digraph import DiGraph
from repro.types import DIST_DTYPE, FloatArray

__all__ = [
    "uniform_weights",
    "correlated_weights",
    "anticorrelated_weights",
    "attach_random_weights",
    "random_weight_vector",
]


def uniform_weights(
    m: int,
    k: int,
    rng: np.random.Generator,
    low: float = 1.0,
    high: float = 10.0,
) -> FloatArray:
    """Independent uniform weights in ``[low, high)``, shape ``(m, k)``."""
    if high <= low:
        raise WeightError(f"need high > low, got [{low}, {high})")
    if low < 0:
        raise WeightError("weights must be non-negative")
    return rng.uniform(low, high, size=(m, k)).astype(DIST_DTYPE)


def correlated_weights(
    m: int,
    k: int,
    rng: np.random.Generator,
    low: float = 1.0,
    high: float = 10.0,
    noise: float = 0.1,
) -> FloatArray:
    """Weights whose objectives are positively correlated.

    A base value ``b`` is drawn per edge; each objective is
    ``b * (1 + noise * eps)`` clipped to stay inside ``[low, high]``.
    With small ``noise`` the Pareto front of any path collapses to
    nearly a single point — the easy case for multi-objective search.
    """
    base = rng.uniform(low, high, size=(m, 1))
    eps = rng.standard_normal(size=(m, k))
    w = base * (1.0 + noise * eps)
    return np.clip(w, low, high).astype(DIST_DTYPE)


def anticorrelated_weights(
    m: int,
    k: int,
    rng: np.random.Generator,
    low: float = 1.0,
    high: float = 10.0,
) -> FloatArray:
    """Weights where a cheap objective-``i`` edge is expensive elsewhere.

    Objective 0 is uniform; each other objective ``j`` is the mirrored
    value ``low + high - w0`` plus small jitter.  Anticorrelated costs
    maximise the number of incomparable paths and therefore the Pareto
    front size — the hard case for multi-objective search.
    """
    w = np.empty((m, k), dtype=DIST_DTYPE)
    w[:, 0] = rng.uniform(low, high, size=m)
    jitter_scale = 0.05 * (high - low)
    for j in range(1, k):
        jitter = rng.uniform(-jitter_scale, jitter_scale, size=m)
        w[:, j] = np.clip(low + high - w[:, 0] + jitter, low, high)
    return w


_DISTRIBUTIONS = {
    "uniform": uniform_weights,
    "correlated": correlated_weights,
    "anticorrelated": anticorrelated_weights,
}


def random_weight_vector(
    k: int,
    rng: np.random.Generator,
    low: float = 1.0,
    high: float = 10.0,
) -> FloatArray:
    """A single uniform length-``k`` weight vector (for inserted edges)."""
    return rng.uniform(low, high, size=k).astype(DIST_DTYPE)


def attach_random_weights(
    g: DiGraph,
    k: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    distribution: str = "uniform",
    low: float = 1.0,
    high: float = 10.0,
) -> DiGraph:
    """Return a copy of ``g`` re-weighted with ``k`` random objectives.

    This reproduces the paper's dataset preparation: the topology of
    ``g`` is kept, every live edge receives a fresh random weight
    vector drawn from ``distribution``
    (``uniform`` | ``correlated`` | ``anticorrelated``).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if k is None:
        k = g.num_objectives
    try:
        dist = _DISTRIBUTIONS[distribution]
    except KeyError:
        raise WeightError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(_DISTRIBUTIONS)}"
        ) from None
    src, dst, _ = g.edge_arrays()
    w = dist(len(src), k, rng, low=low, high=high)
    out = DiGraph(g.num_vertices, k)
    for i in range(len(src)):
        out.add_edge(int(src[i]), int(dst[i]), w[i])
    return out
