"""A mutable directed graph with multi-objective edge weights.

The paper stores the adjacency list and the changed edges as "arrays of
structures"; the natural Python equivalent keeping numerical work in
numpy is a structure of arrays: endpoint lists per vertex plus one
``(m, k)`` float64 weight matrix shared by all edges.

Design notes
------------
- Vertices are dense integers ``0..n-1``.  :meth:`DiGraph.add_vertices`
  grows the vertex set; vertex deletion is expressed as deletion of the
  incident edges (the paper makes the same reduction in §2.2).
- Edge insertion is O(1) amortised: endpoints are appended to python
  lists, weights to a geometrically grown numpy buffer.
- Edge deletion is by tombstone: the edge id is marked inactive and
  skipped during iteration; :meth:`DiGraph.compact` rebuilds dense
  storage when the tombstone fraction grows.
- Parallel edges are allowed (repeated insertions of ``(u, v)`` create
  independent edge records).  Shortest-path algorithms handle them
  naturally; helpers such as :meth:`DiGraph.min_weight_between` exist
  for callers that want the effective simple-graph view.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EdgeError, VertexError, WeightError
from repro.types import DIST_DTYPE, VERTEX_DTYPE, FloatArray, WeightLike

__all__ = ["DiGraph"]

_INITIAL_CAPACITY = 16


class DiGraph:
    """A dynamic directed graph whose edges carry ``k``-objective weights.

    Parameters
    ----------
    n:
        Initial number of vertices (ids ``0..n-1``).
    k:
        Number of objectives; every edge weight is a length-``k``
        vector.  ``k=1`` gives an ordinary weighted digraph.

    Examples
    --------
    >>> g = DiGraph(4, k=2)
    >>> g.add_edge(0, 1, (3.0, 5.0))
    0
    >>> g.add_edge(1, 2, (1.0, 1.0))
    1
    >>> g.num_edges
    2
    >>> list(g.out_edges(0))
    [(1, 0)]
    >>> g.weight(0).tolist()
    [3.0, 5.0]
    """

    __slots__ = (
        "_n",
        "_k",
        "_out",
        "_in",
        "_src",
        "_dst",
        "_weights",
        "_alive",
        "_m",
        "_num_dead",
    )

    def __init__(self, n: int = 0, k: int = 1) -> None:
        if n < 0:
            raise VertexError(n, 0, "initial vertex count must be >= 0")
        if k < 1:
            raise WeightError(f"number of objectives must be >= 1, got {k}")
        self._n = int(n)
        self._k = int(k)
        # adjacency: per-vertex lists of edge ids
        self._out: List[List[int]] = [[] for _ in range(n)]
        self._in: List[List[int]] = [[] for _ in range(n)]
        # edge storage (structure of arrays)
        self._src: List[int] = []
        self._dst: List[int] = []
        self._weights = np.empty((_INITIAL_CAPACITY, k), dtype=DIST_DTYPE)
        self._alive: List[bool] = []
        self._m = 0  # number of live edges
        self._num_dead = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of *live* (non-deleted) edges."""
        return self._m

    @property
    def num_objectives(self) -> int:
        """Number of objectives ``k`` carried by every edge weight."""
        return self._k

    @property
    def num_edge_slots(self) -> int:
        """Total edge records including tombstones (internal ids range)."""
        return len(self._src)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiGraph(n={self._n}, m={self._m}, k={self._k}, "
            f"tombstones={self._num_dead})"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertices(self, count: int) -> int:
        """Append ``count`` new vertices; return the first new id."""
        if count < 0:
            raise VertexError(count, 0, "cannot add a negative vertex count")
        first = self._n
        self._n += count
        self._out.extend([] for _ in range(count))
        self._in.extend([] for _ in range(count))
        return first

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)

    def _coerce_weight(self, weight) -> FloatArray:
        w = np.asarray(weight, dtype=DIST_DTYPE).reshape(-1)
        if w.shape[0] != self._k:
            raise WeightError(
                f"weight vector has {w.shape[0]} components, expected {self._k}"
            )
        if not np.all(np.isfinite(w)):
            raise WeightError(f"weight vector {w.tolist()} is not finite")
        if np.any(w < 0):
            raise WeightError(f"weight vector {w.tolist()} has negative components")
        return w

    def add_edge(self, u: int, v: int, weight: WeightLike) -> int:
        """Insert directed edge ``(u, v)`` with the given weight vector.

        Returns the edge id.  ``weight`` may be a scalar when ``k == 1``.
        Self-loops are allowed but never appear on shortest paths (all
        weights are non-negative).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if self._k == 1 and np.isscalar(weight):
            weight = (float(weight),)
        w = self._coerce_weight(weight)
        eid = len(self._src)
        if eid >= self._weights.shape[0]:
            grown = np.empty(
                (max(2 * self._weights.shape[0], eid + 1), self._k),
                dtype=DIST_DTYPE,
            )
            grown[: self._weights.shape[0]] = self._weights
            self._weights = grown
        self._src.append(u)
        self._dst.append(v)
        self._weights[eid] = w
        self._alive.append(True)
        self._out[u].append(eid)
        self._in[v].append(eid)
        self._m += 1
        return eid

    def add_edges(self, edges: Iterable[Tuple[int, int, Sequence[float]]]) -> List[int]:
        """Insert many edges; return their edge ids."""
        return [self.add_edge(u, v, w) for (u, v, w) in edges]

    def remove_edge_id(self, eid: int) -> None:
        """Tombstone-delete the edge with id ``eid``."""
        if not 0 <= eid < len(self._src):
            raise EdgeError(f"edge id {eid} out of range")
        if not self._alive[eid]:
            raise EdgeError(f"edge id {eid} already deleted")
        self._alive[eid] = False
        self._m -= 1
        self._num_dead += 1

    def remove_edge(self, u: int, v: int) -> int:
        """Delete one live ``(u, v)`` edge; return its id.

        If parallel ``(u, v)`` edges exist the one with the
        lexicographically smallest weight vector is removed, which is
        the deletion that can actually change a shortest path.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        best: Optional[int] = None
        for eid in self._out[u]:
            if self._alive[eid] and self._dst[eid] == v:
                if best is None or tuple(self._weights[eid]) < tuple(
                    self._weights[best]
                ):
                    best = eid
        if best is None:
            raise EdgeError(f"no live edge ({u}, {v}) to delete")
        self.remove_edge_id(best)
        return best

    def set_weight(self, eid: int, weight: WeightLike) -> None:
        """Overwrite the weight vector of live edge ``eid``."""
        if not 0 <= eid < len(self._src) or not self._alive[eid]:
            raise EdgeError(f"edge id {eid} is not a live edge")
        if self._k == 1 and np.isscalar(weight):
            weight = (float(weight),)
        self._weights[eid] = self._coerce_weight(weight)

    def compact(self) -> None:
        """Rebuild dense storage, dropping tombstones and remapping ids.

        Edge ids are invalidated.  Called automatically by no one; the
        owner decides when the ~2x memory of a rebuild is worth it.
        """
        if self._num_dead == 0:
            return
        alive_ids = [e for e in range(len(self._src)) if self._alive[e]]
        new_src = [self._src[e] for e in alive_ids]
        new_dst = [self._dst[e] for e in alive_ids]
        new_weights = np.empty(
            (max(_INITIAL_CAPACITY, len(alive_ids)), self._k), dtype=DIST_DTYPE
        )
        if alive_ids:
            new_weights[: len(alive_ids)] = self._weights[alive_ids]
        self._src = new_src
        self._dst = new_dst
        self._weights = new_weights
        self._alive = [True] * len(alive_ids)
        self._num_dead = 0
        self._out = [[] for _ in range(self._n)]
        self._in = [[] for _ in range(self._n)]
        for eid, (u, v) in enumerate(zip(self._src, self._dst)):
            self._out[u].append(eid)
            self._in[v].append(eid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def edge_endpoints(self, eid: int) -> Tuple[int, int]:
        """Return ``(u, v)`` of edge ``eid`` (live or tombstoned)."""
        if not 0 <= eid < len(self._src):
            raise EdgeError(f"edge id {eid} out of range")
        return self._src[eid], self._dst[eid]

    def is_alive(self, eid: int) -> bool:
        """Whether edge ``eid`` is live."""
        if not 0 <= eid < len(self._src):
            raise EdgeError(f"edge id {eid} out of range")
        return self._alive[eid]

    def weight(self, eid: int) -> FloatArray:
        """The length-``k`` weight vector of edge ``eid`` (a view)."""
        if not 0 <= eid < len(self._src):
            raise EdgeError(f"edge id {eid} out of range")
        return self._weights[eid]

    def weight_scalar(self, eid: int, objective: int = 0) -> float:
        """One component of edge ``eid``'s weight vector."""
        return float(self.weight(eid)[objective])

    def weight_column(self, objective: int = 0) -> FloatArray:
        """A read-only view of one objective across all edge slots.

        Indexable by edge id (tombstoned slots included — callers
        iterate live edges only).  The view is invalidated by the next
        ``add_edge`` that grows the buffer; use it for tight read loops
        between mutations, as the update kernels do.
        """
        return self._weights[: len(self._src), objective]

    def out_edges(self, u: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(v, eid)`` for each live out-edge of ``u``."""
        self._check_vertex(u)
        for eid in self._out[u]:
            if self._alive[eid]:
                yield self._dst[eid], eid

    def in_edges(self, v: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(u, eid)`` for each live in-edge of ``v``."""
        self._check_vertex(v)
        for eid in self._in[v]:
            if self._alive[eid]:
                yield self._src[eid], eid

    def out_degree(self, u: int) -> int:
        """Number of live out-edges of ``u``."""
        return sum(1 for _ in self.out_edges(u))

    def in_degree(self, v: int) -> int:
        """Number of live in-edges of ``v``."""
        return sum(1 for _ in self.in_edges(v))

    def successors(self, u: int) -> Iterator[int]:
        """Yield the head of each live out-edge of ``u`` (with repeats)."""
        for v, _ in self.out_edges(u):
            yield v

    def predecessors(self, v: int) -> Iterator[int]:
        """Yield the tail of each live in-edge of ``v`` (with repeats)."""
        for u, _ in self.in_edges(v):
            yield u

    def has_edge(self, u: int, v: int) -> bool:
        """Whether any live ``(u, v)`` edge exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return any(
            self._alive[eid] and self._dst[eid] == v for eid in self._out[u]
        )

    def min_weight_between(self, u: int, v: int, objective: int = 0) -> float:
        """Smallest ``objective`` component over live ``(u, v)`` edges.

        Returns ``inf`` when no live edge exists.
        """
        best = float("inf")
        for eid in self._out[u]:
            if self._alive[eid] and self._dst[eid] == v:
                w = float(self._weights[eid, objective])
                if w < best:
                    best = w
        return best

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(u, v, eid)`` for every live edge."""
        for eid in range(len(self._src)):
            if self._alive[eid]:
                yield self._src[eid], self._dst[eid], eid

    # ------------------------------------------------------------------
    # bulk views
    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, FloatArray]:
        """Return ``(src, dst, weights)`` arrays over live edges.

        ``src``/``dst`` are ``int64`` of length ``m``; ``weights`` is
        ``(m, k)`` float64.  Row order is edge-insertion order.  The
        arrays are copies — safe to mutate.
        """
        alive = np.asarray(self._alive, dtype=bool)
        src = np.asarray(self._src, dtype=VERTEX_DTYPE)
        dst = np.asarray(self._dst, dtype=VERTEX_DTYPE)
        if len(src) == 0:
            return (
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty((0, self._k), dtype=DIST_DTYPE),
            )
        w = self._weights[: len(src)]
        return src[alive].copy(), dst[alive].copy(), w[alive].copy()

    def copy(self) -> "DiGraph":
        """Deep copy (tombstones compacted away)."""
        g = DiGraph(self._n, self._k)
        for u, v, eid in self.edges():
            g.add_edge(u, v, self._weights[eid])
        return g

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        g = DiGraph(self._n, self._k)
        for u, v, eid in self.edges():
            g.add_edge(v, u, self._weights[eid])
        return g

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls, n: int, edges: Iterable[Tuple], k: int = 1
    ) -> "DiGraph":
        """Build from ``(u, v, w)`` tuples (``w`` scalar when ``k==1``)."""
        g = cls(n, k)
        for item in edges:
            u, v, w = item[0], item[1], item[2]
            g.add_edge(u, v, w)
        return g
