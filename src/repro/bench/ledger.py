"""Machine-readable perf ledger: ``results/BENCH_<name>.json``.

The rendered ``results/*.txt`` tables are for humans; regression
tooling needs numbers it can diff without parsing prose.  Each
benchmark therefore also writes one schema-versioned JSON document —
the *ledger* — recording what ran (graph, engine, worker count, seed),
what was measured (named wall-clock timings), and what was derived
(speedups, ratios).  ``python -m repro.bench validate-ledgers`` checks
every ledger in a results directory against :func:`validate_ledger`;
CI runs it so a benchmark that silently stops emitting (or emits a
malformed document) fails the build rather than the next reader.

Schema ``repro-bench-ledger/1`` — all keys at the top level, no
extras allowed:

==================  ==================================================
``schema``          the literal :data:`SCHEMA_VERSION`
``name``            benchmark name; the file is ``BENCH_<name>.json``
``created_unix``    wall-clock epoch seconds at write time
``seed``            the benchmark seed (int)
``graph``           ``{"name", "vertices", "edges", "objectives"}``
``engine``          engine description string (e.g. ``"shm"``)
``workers``         worker/thread count the timings used (int)
``wall_seconds``    ``{label: seconds}`` — the measured timings
``derived``         ``{label: number}`` — speedups/ratios computed
                    from ``wall_seconds`` (may be empty)
``obs_overhead``    tracing-on / tracing-off runtime ratio, or null
                    when the benchmark didn't measure it
``notes``           free-form string (caveats, units, provenance)
==================  ==================================================
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.obs.clock import wall

__all__ = [
    "SCHEMA_VERSION",
    "make_ledger",
    "validate_ledger",
    "write_ledger",
    "read_ledger",
]

#: Current ledger schema identifier; bump on incompatible change.
SCHEMA_VERSION = "repro-bench-ledger/1"

_TOP_KEYS = (
    "schema", "name", "created_unix", "seed", "graph", "engine",
    "workers", "wall_seconds", "derived", "obs_overhead", "notes",
)
_GRAPH_KEYS = ("name", "vertices", "edges", "objectives")


def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_ledger(doc: Any) -> List[str]:
    """Strict schema check; returns problem strings (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["ledger is not an object"]
    for key in _TOP_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    for key in doc:
        if key not in _TOP_KEYS:
            problems.append(f"unknown key {key!r}")
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name is not a non-empty string")
    elif not all(c.isalnum() or c in "_-" for c in name):
        problems.append(f"name {name!r} has characters outside [A-Za-z0-9_-]")
    if not _is_num(doc.get("created_unix")) or float(
        doc.get("created_unix", 0.0) or 0.0
    ) <= 0:
        problems.append("created_unix is not a positive number")
    if not isinstance(doc.get("seed"), int) or isinstance(
        doc.get("seed"), bool
    ):
        problems.append("seed is not an integer")
    graph = doc.get("graph")
    if not isinstance(graph, dict):
        problems.append("graph is not an object")
    else:
        for key in _GRAPH_KEYS:
            if key not in graph:
                problems.append(f"graph missing key {key!r}")
        for key in graph:
            if key not in _GRAPH_KEYS:
                problems.append(f"graph has unknown key {key!r}")
        if not isinstance(graph.get("name"), str):
            problems.append("graph.name is not a string")
        for key in ("vertices", "edges", "objectives"):
            v = graph.get(key)
            if key in graph and (
                not isinstance(v, int) or isinstance(v, bool) or v < 0
            ):
                problems.append(f"graph.{key} is not a non-negative integer")
    if not isinstance(doc.get("engine"), str) or not doc.get("engine"):
        problems.append("engine is not a non-empty string")
    workers = doc.get("workers")
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        problems.append("workers is not a positive integer")
    timings = doc.get("wall_seconds")
    if not isinstance(timings, dict) or not timings:
        problems.append("wall_seconds is not a non-empty object")
    else:
        for key, v in timings.items():
            if not isinstance(key, str):
                problems.append(f"wall_seconds key {key!r} is not a string")
            if not _is_num(v) or v < 0:
                problems.append(
                    f"wall_seconds[{key!r}] is not a non-negative number"
                )
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        problems.append("derived is not an object")
    else:
        for key, v in derived.items():
            if not isinstance(key, str):
                problems.append(f"derived key {key!r} is not a string")
            if not _is_num(v):
                problems.append(f"derived[{key!r}] is not a number")
    overhead = doc.get("obs_overhead")
    if overhead is not None and (not _is_num(overhead) or overhead < 0):
        problems.append("obs_overhead is neither null nor a non-negative "
                        "number")
    if not isinstance(doc.get("notes"), str):
        problems.append("notes is not a string")
    return problems


def make_ledger(
    name: str,
    *,
    graph: Dict[str, Any],
    engine: str,
    workers: int,
    wall_seconds: Dict[str, float],
    derived: Optional[Dict[str, float]] = None,
    obs_overhead: Optional[float] = None,
    seed: int = 0,
    notes: str = "",
) -> Dict[str, Any]:
    """Build and self-validate a ledger document.

    ``graph`` is ``{"name", "vertices", "edges", "objectives"}``.
    Raises :class:`ReproError` listing every schema violation — a
    benchmark can never write a document the validator would reject.
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "created_unix": wall(),
        "seed": seed,
        "graph": dict(graph),
        "engine": engine,
        "workers": workers,
        "wall_seconds": dict(wall_seconds),
        "derived": dict(derived or {}),
        "obs_overhead": obs_overhead,
        "notes": notes,
    }
    problems = validate_ledger(doc)
    if problems:
        raise ReproError(
            f"invalid ledger {name!r}: " + "; ".join(problems)
        )
    return doc


def write_ledger(results_dir: Union[str, Path], doc: Dict[str, Any]) -> Path:
    """Validate ``doc`` and write ``BENCH_<name>.json``; returns the path."""
    problems = validate_ledger(doc)
    if problems:
        raise ReproError(
            "refusing to write invalid ledger: " + "; ".join(problems)
        )
    out_dir = Path(results_dir)
    out_dir.mkdir(exist_ok=True)
    path = out_dir / f"BENCH_{doc['name']}.json"
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def read_ledger(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one ledger file; raises :class:`ReproError`."""
    p = Path(path)
    try:
        with open(p, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as exc:
        raise ReproError(f"{p}: not JSON: {exc}") from exc
    problems = validate_ledger(doc)
    if problems:
        raise ReproError(f"{p}: " + "; ".join(problems))
    if not isinstance(doc, dict):  # unreachable after validate, for mypy
        raise ReproError(f"{p}: not an object")
    return doc
