"""Dependency-free ASCII charts for the benchmark figures.

The paper's figures are line plots; the harness renders the same
series as terminal charts (plus the aligned tables from
:mod:`repro.bench.report`) so `results/` is self-contained without
matplotlib.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["ascii_line_chart"]

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII scatter/line chart.

    Each series gets a marker character; a legend follows the canvas.
    ``log_x`` spaces the x axis logarithmically (natural for the 1..64
    thread sweeps).

    Examples
    --------
    >>> chart = ascii_line_chart({"a": [(1, 1.0), (2, 2.0)]}, width=20,
    ...                          height=5)
    >>> "a" in chart
    True
    """
    if not series:
        return "(no data)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if not xs:
        return "(no data)"

    def tx(x: float) -> float:
        return math.log2(x) if log_x else x

    x_lo, x_hi = min(map(tx, xs)), max(map(tx, xs))
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        prev: Optional[Tuple[int, int]] = None
        for x, y in pts:
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((y_hi - y) / y_span * (height - 1))
            if prev is not None:
                # draw a sparse connecting segment
                (pc, pr) = prev
                steps = max(abs(col - pc), abs(row - pr))
                for s in range(1, steps):
                    ic = pc + round(s * (col - pc) / steps)
                    ir = pr + round(s * (row - pr) / steps)
                    if grid[ir][ic] == " ":
                        grid[ir][ic] = "."
            grid[row][col] = marker
            prev = (col, row)

    lines = []
    if title:
        lines.append(title)
    top = f"{y_hi:.4g}"
    bottom = f"{y_lo:.4g}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_left = f"{min(xs):.4g}"
    x_right = f"{max(xs):.4g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (pad + 2) + x_left + " " * max(1, gap) + x_right)
    lines.append(f"{y_label} vs {x_label}" + ("  [log x]" if log_x else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
