"""The Table 2 dataset registry (paper networks → scaled stand-ins).

The paper evaluates on four network-repository graphs (Table 2).  This
environment has no network access and a single core, so the registry
maps each to a seeded synthetic stand-in of the same topology class
(see DESIGN.md §2) at a size a pure-Python run can sweep.  The real
``.mtx`` files drop in via ``mtx_path`` +
:func:`repro.graph.io.read_matrix_market` when available.

Batch sizes are scaled to preserve the paper's ΔE/|E| ratio per
dataset, which is what drives the relative scalability behaviour the
paper reports (small graphs + relatively large batches scale worst).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import BenchmarkError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_geometric, road_like

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "PAPER_BATCH_SIZES"]

#: The ΔE values the paper sweeps (Figure 4).
PAPER_BATCH_SIZES: Tuple[int, ...] = (50_000, 100_000, 200_000)


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-2 network and its stand-in generator.

    Attributes
    ----------
    name:
        Paper dataset name.
    paper_vertices, paper_edges:
        Sizes reported in Table 2.
    family:
        ``"road"`` or ``"rgg"`` — selects the stand-in generator.
    standin_n:
        Target vertex count of the stand-in.
    seed:
        Generation seed (stand-ins are fully deterministic).
    """

    name: str
    paper_vertices: int
    paper_edges: int
    family: str
    standin_n: int
    seed: int

    def build(self, k: int = 2) -> DiGraph:
        """Generate the stand-in graph with ``k`` random objectives."""
        if self.family == "road":
            return road_like(self.standin_n, k=k, seed=self.seed)
        if self.family == "rgg":
            return random_geometric(self.standin_n, k=k, seed=self.seed)
        raise BenchmarkError(f"unknown dataset family {self.family!r}")

    def scaled_batch_size(self, paper_delta_e: int, actual_edges: int) -> int:
        """Scale a paper ΔE to this stand-in, preserving ΔE/|E|."""
        ratio = paper_delta_e / self.paper_edges
        return max(1, int(round(ratio * actual_edges)))


#: Table 2 of the paper, with stand-in parameters.
DATASETS: Dict[str, DatasetSpec] = {
    "road-usa": DatasetSpec(
        name="road-usa",
        paper_vertices=23_947_347,
        paper_edges=28_900_000,
        family="road",
        standin_n=80_000,
        seed=11,
    ),
    "rgg-n-2-20-s0": DatasetSpec(
        name="rgg-n-2-20-s0",
        paper_vertices=1_048_576,
        paper_edges=6_891_620,
        family="rgg",
        standin_n=8_000,
        seed=13,
    ),
    "roadNet-CA": DatasetSpec(
        name="roadNet-CA",
        paper_vertices=1_971_281,
        paper_edges=5_533_214,
        family="road",
        standin_n=16_000,
        seed=17,
    ),
    "roadNet-PA": DatasetSpec(
        name="roadNet-PA",
        paper_vertices=1_090_920,
        paper_edges=3_083_796,
        family="road",
        standin_n=9_000,
        seed=19,
    ),
}

_CACHE: Dict[Tuple[str, int], DiGraph] = {}


def load_dataset(name: str, k: int = 2, fresh: bool = False) -> DiGraph:
    """Build (and memoise) a stand-in dataset.

    ``fresh=True`` returns an independent copy safe to mutate — the
    usual mode for update benchmarks, which insert edges.
    """
    if name not in DATASETS:
        raise BenchmarkError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        )
    key = (name, k)
    if key not in _CACHE:
        _CACHE[key] = DATASETS[name].build(k=k)
    g = _CACHE[key]
    return g.copy() if fresh else g
