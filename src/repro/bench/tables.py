"""Table builders (Table 2 of the paper)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.datasets import DATASETS, load_dataset

__all__ = ["table2_rows"]


def table2_rows(
    datasets: Optional[Sequence[str]] = None, k: int = 2
) -> List[Dict[str, object]]:
    """Table 2: networks in the test suite, paper vs stand-in sizes.

    Returns one dict per dataset with keys ``name``, ``paper_vertices``,
    ``paper_edges``, ``standin_vertices``, ``standin_edges``,
    ``standin_avg_degree``, ``family``.
    """
    rows: List[Dict[str, object]] = []
    for name in (datasets or DATASETS):
        spec = DATASETS[name]
        g = load_dataset(name, k=k)
        rows.append(
            {
                "name": name,
                "family": spec.family,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "standin_vertices": g.num_vertices,
                "standin_edges": g.num_edges,
                "standin_avg_degree": round(g.num_edges / g.num_vertices, 2),
            }
        )
    return rows
