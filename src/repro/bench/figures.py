"""Series builders for Figures 4, 5 and 6.

Each function returns plain data structures (dicts of lists) that the
``benchmarks/`` scripts render with :mod:`repro.bench.report`; nothing
here draws — the deliverable is the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.datasets import DATASETS, PAPER_BATCH_SIZES
from repro.bench.runner import MOSPTrace, record_mosp_trace

__all__ = [
    "DEFAULT_THREADS",
    "figure4_series",
    "figure5_series",
    "figure6_breakdown",
]

#: The paper's strong-scaling sweep: 1..64 OpenMP threads.
DEFAULT_THREADS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


def figure4_series(
    datasets: Optional[Sequence[str]] = None,
    paper_batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    threads: Sequence[int] = DEFAULT_THREADS,
    k: int = 2,
    seed: Optional[int] = None,
    traces: Optional[Dict[Tuple[str, int], MOSPTrace]] = None,
) -> Dict[str, Dict[int, List[Tuple[int, float]]]]:
    """Figure 4: time (ms) vs threads, one panel per dataset.

    Returns ``{dataset: {paper_ΔE: [(threads, ms), ...]}}``.

    ``traces`` lets callers share recorded executions between figures
    (Figure 5 uses the same ΔE=100K traces); missing entries are
    recorded on demand and added to the dict.
    """
    datasets = list(datasets or DATASETS)
    traces = traces if traces is not None else {}
    out: Dict[str, Dict[int, List[Tuple[int, float]]]] = {}
    for ds in datasets:
        out[ds] = {}
        for de in paper_batch_sizes:
            key = (ds, de)
            if key not in traces:
                traces[key] = record_mosp_trace(ds, de, k=k, seed=seed)
            tr = traces[key]
            out[ds][de] = [(t, tr.time_ms(t)) for t in threads]
    return out


def figure5_series(
    datasets: Optional[Sequence[str]] = None,
    paper_batch_size: int = 100_000,
    threads: Sequence[int] = DEFAULT_THREADS,
    k: int = 2,
    seed: Optional[int] = None,
    traces: Optional[Dict[Tuple[str, int], MOSPTrace]] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 5: speedup vs single thread for ΔE = 100K (scaled).

    Returns ``{dataset: [(threads, speedup), ...]}``.
    """
    datasets = list(datasets or DATASETS)
    traces = traces if traces is not None else {}
    out: Dict[str, List[Tuple[int, float]]] = {}
    for ds in datasets:
        key = (ds, paper_batch_size)
        if key not in traces:
            traces[key] = record_mosp_trace(ds, paper_batch_size, k=k,
                                            seed=seed)
        tr = traces[key]
        t1 = tr.time_at(1)
        out[ds] = [(t, t1 / tr.time_at(t)) for t in threads]
    return out


def figure6_breakdown(
    datasets: Optional[Sequence[str]] = None,
    paper_batch_size: int = 100_000,
    threads: int = 4,
    k: int = 2,
    seed: Optional[int] = None,
    traces: Optional[Dict[Tuple[str, int], MOSPTrace]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 6: % of time per algorithm step at ``threads`` threads.

    The paper groups the pipeline as SOSP1, SOSP2, and
    "Merge and Parallel Bellmanford"; we report the same grouping:
    ensemble + Bellman-Ford + reassignment fold into the merge bucket.

    Returns ``{dataset: {"SOSP1": pct, "SOSP2": pct, "Merge+BF": pct}}``.
    """
    datasets = list(datasets or DATASETS)
    traces = traces if traces is not None else {}
    out: Dict[str, Dict[str, float]] = {}
    for ds in datasets:
        key = (ds, paper_batch_size)
        if key not in traces:
            traces[key] = record_mosp_trace(ds, paper_batch_size, k=k,
                                            seed=seed)
        steps = traces[key].step_times_at(threads)
        sosp1 = steps.get("sosp_update_0", 0.0)
        sosp2 = steps.get("sosp_update_1", 0.0)
        merge = sum(
            v for kk, v in steps.items()
            if kk in ("ensemble", "bellman_ford", "reassign")
        )
        total = sosp1 + sosp2 + merge
        if total <= 0:
            out[ds] = {"SOSP1": 0.0, "SOSP2": 0.0, "Merge+BF": 0.0}
            continue
        out[ds] = {
            "SOSP1": 100.0 * sosp1 / total,
            "SOSP2": 100.0 * sosp2 / total,
            "Merge+BF": 100.0 * merge / total,
        }
    return out
