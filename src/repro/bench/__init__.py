"""Benchmark harness: regenerates every table and figure of the paper.

Experiment index (see DESIGN.md §4 for the full mapping):

==========  ==========================================================
Table 2     dataset inventory — :func:`~repro.bench.tables.table2_rows`
Figure 4    time vs threads per (network, ΔE) —
            :func:`~repro.bench.figures.figure4_series`
Figure 5    speedup vs threads at ΔE=100K-scaled —
            :func:`~repro.bench.figures.figure5_series`
Figure 6    per-step % breakdown at 4 threads —
            :func:`~repro.bench.figures.figure6_breakdown`
==========  ==========================================================

plus the motivating-claim and ablation experiments under
``benchmarks/``, each of which also emits a machine-readable
``results/BENCH_<name>.json`` perf ledger (:mod:`repro.bench.ledger`;
validated in CI by ``python -m repro.bench validate-ledgers``).  All series are produced on the simulated parallel
machine (see :mod:`repro.parallel.backends.simulated` and DESIGN.md §2
for why) from *one* recorded execution per configuration, replayed
across thread counts.
"""

from repro.bench.datasets import DATASETS, DatasetSpec, load_dataset
from repro.bench.ledger import (
    SCHEMA_VERSION,
    make_ledger,
    read_ledger,
    validate_ledger,
    write_ledger,
)
from repro.bench.figures import (
    figure4_series,
    figure5_series,
    figure6_breakdown,
)
from repro.bench.report import render_series_table, render_table
from repro.bench.runner import MOSPTrace, record_mosp_trace
from repro.bench.tables import table2_rows

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "SCHEMA_VERSION",
    "make_ledger",
    "read_ledger",
    "validate_ledger",
    "write_ledger",
    "record_mosp_trace",
    "MOSPTrace",
    "figure4_series",
    "figure5_series",
    "figure6_breakdown",
    "table2_rows",
    "render_table",
    "render_series_table",
]
