"""Old-vs-new process backend comparison: pickled slabs vs shared memory.

The question this answers is the tentpole's acceptance gate: on the
same slab workload, how much wall-clock does
:class:`~repro.parallel.backends.shm.SharedMemoryEngine` (persistent
workers attached once to planted arrays, ``(lo, hi)``-only dispatch)
save over the best a plain :class:`ProcessEngine` can do — shipping
each superstep's array slices through the pickle round-trip and
copying the results back?

Both paths execute the *identical* per-slab numpy relaxation and must
produce bitwise-identical arrays (asserted here), so every measured
second of difference is transport: per-superstep pickling that the
shared-memory design removes.  On a single-core host the computation
itself cannot speed up at all — the entire margin is serialisation,
which is exactly the overhead term of the paper's Fig. 5 discussion.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.parallel.api import SlabTask
from repro.parallel.backends.processes import ProcessEngine
from repro.parallel.backends.shm import SharedMemoryEngine

__all__ = ["compare_partitioned_vs_shm", "compare_process_backends"]


def _slab_relax(dist: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The shared per-slab body: one damped relaxation sweep."""
    return np.minimum(dist, (dist + w) * 0.999)


def _span_via_pickle(
    item: Tuple[np.ndarray, np.ndarray, int, int],
) -> Tuple[int, int, np.ndarray]:
    """Old-path task: arrays arrive *inside the item* (pickled every
    superstep) and the updated slice is pickled back for the master to
    copy in — the only way a plain process pool can run this kernel."""
    d, wv, lo, hi = item
    return lo, hi, _slab_relax(d, wv)


def _span_via_shm(
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, Any],
    lo: int,
    hi: int,
) -> int:
    """New-path slab kernel: reads and writes the planted views."""
    d = arrays["bench.dist"]
    wv = arrays["bench.w"]
    d[lo:hi] = _slab_relax(d[lo:hi], wv[lo:hi])
    return hi - lo


def _spans(n: int, parts: int) -> List[Tuple[int, int]]:
    bounds = [round(i * n / parts) for i in range(parts + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ]


def compare_process_backends(
    n: int = 1 << 21,
    supersteps: int = 6,
    threads: int = 4,
    seed: int = 0,
) -> Dict[str, float]:
    """Run the same slab workload on both process backends; time them.

    Returns a dict with per-backend wall seconds, per-superstep payload
    bytes, and the old/new speedup.  Pool spawn and the one-off plant
    ("attach once") are excluded from the timed region by a warm-up
    superstep on each engine — the comparison is steady-state
    superstep cost, matching how the kernels use the engines.
    """
    rng = np.random.default_rng(seed)
    dist0 = rng.random(n)
    w = rng.random(n)
    spans = _spans(n, 4 * threads)

    # ---------------- old: ProcessEngine, arrays travel every superstep
    old = ProcessEngine(threads=threads, min_items_per_process=1)
    dist_old = dist0.copy()

    def one_old_superstep() -> None:
        items = [(dist_old[lo:hi], w[lo:hi], lo, hi) for lo, hi in spans]
        for lo, hi, out in old.parallel_for(items, _span_via_pickle):
            dist_old[lo:hi] = out

    one_old_superstep()  # warm-up: spawns the pool
    dist_old[:] = dist0
    old_payload = sum(
        len(pickle.dumps((dist_old[lo:hi], w[lo:hi], lo, hi),
                         protocol=pickle.HIGHEST_PROTOCOL))
        for lo, hi in spans
    )
    t0 = time.perf_counter()
    for _ in range(supersteps):
        one_old_superstep()
    old_s = time.perf_counter() - t0
    old.close()

    # ---------------- new: SharedMemoryEngine, indices travel only
    new = SharedMemoryEngine(threads=threads, min_dispatch_items=1)
    dist_view = new.plant("bench.dist", dist0)
    new.plant("bench.w", w, fingerprint=("bench.w", seed, n))
    task = SlabTask(ref="repro.bench.engines:_span_via_shm",
                    arrays=("bench.dist", "bench.w"),
                    writes=("bench.dist",))
    new.parallel_for_slabs(n, task)  # warm-up: spawns + attaches
    np.copyto(dist_view, dist0)
    t1 = time.perf_counter()
    for _ in range(supersteps):
        new.parallel_for_slabs(n, task)
    new_s = time.perf_counter() - t1
    new_payload = int(new.last_dispatch_bytes)
    dist_new = dist_view.copy()
    new.close()

    np.testing.assert_array_equal(dist_new, dist_old)
    return {
        "n": float(n),
        "supersteps": float(supersteps),
        "threads": float(threads),
        "old_s": old_s,
        "new_s": new_s,
        "old_ms_per_superstep": 1e3 * old_s / supersteps,
        "new_ms_per_superstep": 1e3 * new_s / supersteps,
        "old_payload_bytes": float(old_payload),
        "new_payload_bytes": float(new_payload),
        "speedup": old_s / new_s if new_s > 0 else float("inf"),
    }


def _timed_update_run(
    engine: Any,
    n: int,
    batches: int,
    batch_size: int,
    seed: int,
) -> Tuple[np.ndarray, float]:
    """Drive ``batches`` timed insert batches through ``sosp_update``.

    One extra warm-up batch (excluded from the timing) absorbs pool
    spawn, shared-memory planting, and — for the partitioned engine —
    the one-off shard-plan build, so the measured region is steady-state
    per-batch update cost on an incrementally maintained CSR snapshot.
    """
    from repro.core import SOSPTree, sosp_update
    from repro.dynamic import random_insert_batch
    from repro.graph import road_like
    from repro.graph.csr import CSRGraph

    g = road_like(n, k=1, seed=seed)
    tree = SOSPTree.build(g, 0)
    snapshot = CSRGraph.from_digraph(g)
    total = 0.0
    for step in range(batches + 1):  # step 0 is the warm-up
        batch = random_insert_batch(g, batch_size, seed=seed + 100 + step)
        batch.apply_to(g)
        snapshot.append_batch(batch)
        t0 = time.perf_counter()
        sosp_update(g, tree, batch, engine=engine,
                    use_csr_kernels=True, csr=snapshot)
        if step > 0:
            total += time.perf_counter() - t0
    return tree.dist.copy(), total


def _best_of(
    engine: Any,
    n: int,
    batches: int,
    batch_size: int,
    seed: int,
    repeats: int,
) -> Tuple[np.ndarray, float]:
    """Best-of-``repeats`` total for one engine (minimum is the right
    statistic on a shared single-core host: every perturbation — cron,
    page cache, scheduler — only ever adds time)."""
    best = float("inf")
    dist = None
    for _ in range(repeats):
        d, total = _timed_update_run(engine, n, batches, batch_size, seed)
        if dist is None:
            dist = d
        else:
            np.testing.assert_array_equal(d, dist)
        best = min(best, total)
    assert dist is not None
    return dist, best


def compare_partitioned_vs_shm(
    n: int = 4000,
    batches: int = 6,
    batch_size: int = 64,
    workers: int = 2,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Partitioned multi-pool vs single-pool shm at equal worker budget.

    Both engines get ``workers`` spawn workers in total: the single
    shared-memory pool runs ``threads=workers``; the partitioned engine
    runs ``workers`` shards of one single-worker shm pool each, driven
    concurrently through the boundary-exchange supersteps.  The
    workload is the real update pipeline (``sosp_update`` over insert
    batches on an incremental CSR snapshot), and both fixpoints must be
    bitwise-identical to the serial reference before any timing is
    trusted.  Warm-up (pool spawn + plan build) is excluded — see
    :func:`_timed_update_run` — and each engine reports its best of
    ``repeats`` passes over the identical batch sequence (pools stay
    warm across passes; each pass replays from a fresh graph).
    """
    from repro.parallel import PartitionedEngine

    dist_serial, serial_s = _best_of(
        None, n, batches, batch_size, seed, repeats
    )

    shm = SharedMemoryEngine(threads=workers)
    try:
        dist_shm, shm_s = _best_of(
            shm, n, batches, batch_size, seed, repeats
        )
    finally:
        shm.close()

    part = PartitionedEngine(threads=1, partitions=workers, inner="shm")
    try:
        dist_part, part_s = _best_of(
            part, n, batches, batch_size, seed, repeats
        )
    finally:
        part.close()

    np.testing.assert_array_equal(dist_shm, dist_serial)
    np.testing.assert_array_equal(dist_part, dist_serial)
    return {
        "n": float(n),
        "batches": float(batches),
        "batch_size": float(batch_size),
        "workers": float(workers),
        "serial_s": serial_s,
        "shm_s": shm_s,
        "partitioned_s": part_s,
        "serial_ms_per_batch": 1e3 * serial_s / batches,
        "shm_ms_per_batch": 1e3 * shm_s / batches,
        "partitioned_ms_per_batch": 1e3 * part_s / batches,
        "speedup_vs_shm": shm_s / part_s if part_s > 0 else float("inf"),
    }
