"""Experiment runner: record one MOSP-update execution as a trace.

One call to :func:`record_mosp_trace` plays the full Algorithm-2
pipeline (per-objective tree updates → ensemble → Bellman-Ford →
reassign) for one ``(dataset, ΔE)`` configuration on a trace-recording
simulated engine.  The recorded trace is then replayed at any thread
count by :func:`repro.parallel.replay_trace` — this is how the 1→64
thread sweeps of Figures 4–5 come from a single execution each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.datasets import DATASETS, load_dataset
from repro.core.mosp_update import mosp_update
from repro.core.tree import SOSPTree
from repro.dynamic.batch_gen import random_insert_batch
from repro.errors import BenchmarkError
from repro.obs.tracer import Tracer, use_tracer
from repro.parallel.backends.simulated import (
    CostModel,
    SimulatedEngine,
    replay_trace,
)

__all__ = ["MOSPTrace", "record_mosp_trace"]


@dataclass
class MOSPTrace:
    """A recorded MOSP-update execution plus metadata.

    Attributes
    ----------
    dataset:
        Dataset name.
    batch_size:
        Scaled ΔE actually inserted.
    paper_batch_size:
        The paper ΔE this configuration mirrors (e.g. 100_000).
    trace:
        The replayable event list.
    step_traces:
        Pipeline-step name → its slice of the trace (for Figure 6
        breakdowns at any thread count).
    num_vertices, num_edges:
        Stand-in sizes after the batch.
    wall_seconds:
        Real time the recording took (informational) — the elapsed
        time of the root tracer span.
    step_wall_seconds:
        Wall seconds per pipeline step, read off the algorithm-phase
        spans (``MOSPResult.step_seconds``).
    spans:
        The full recorded span stream
        (:meth:`~repro.obs.tracer.Span.to_dict` rows) — exportable
        with any :mod:`repro.obs.export` sink.
    """

    dataset: str
    batch_size: int
    paper_batch_size: int
    trace: List[tuple]
    step_traces: Dict[str, List[tuple]]
    num_vertices: int
    num_edges: int
    wall_seconds: float
    step_wall_seconds: Dict[str, float] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def time_at(self, threads: int, cost_model: Optional[CostModel] = None) -> float:
        """Virtual seconds for the whole update at ``threads``."""
        return replay_trace(self.trace, threads, cost_model)

    def time_ms(self, threads: int) -> float:
        """Virtual milliseconds at ``threads``."""
        return self.time_at(threads) * 1e3

    def step_times_at(self, threads: int) -> Dict[str, float]:
        """Virtual seconds per pipeline step at ``threads``."""
        return {
            step: replay_trace(tr, threads)
            for step, tr in self.step_traces.items()
        }


#: Session-wide default seed for benchmark batch generation; settable
#: once from the harness (``pytest benchmarks/ --bench-seed N``) so
#: every figure and table draws from the same reproducible stream.
_BENCH_SEED = 0


def set_bench_seed(seed: int) -> None:
    """Set the session default seed used when callers pass ``seed=None``."""
    global _BENCH_SEED
    _BENCH_SEED = int(seed)


def get_bench_seed() -> int:
    """The session default benchmark seed (0 unless overridden)."""
    return _BENCH_SEED


def record_mosp_trace(
    dataset: str,
    paper_batch_size: int,
    k: int = 2,
    seed: Optional[int] = None,
    source: int = 0,
    weighting: str = "balanced",
) -> MOSPTrace:
    """Execute one MOSP update on a trace-recording engine.

    The batch size is the paper ΔE scaled by the dataset's ΔE/|E|
    ratio (see :class:`~repro.bench.datasets.DatasetSpec`).  The graph
    is freshly built, the initial per-objective trees are computed
    from scratch (not timed — the paper also times only the update),
    the batch is applied, and the full :func:`mosp_update` pipeline
    runs under a recording :class:`SimulatedEngine`.

    ``seed=None`` (the default) resolves to the session seed set by
    :func:`set_bench_seed`.
    """
    if seed is None:
        seed = get_bench_seed()
    if dataset not in DATASETS:
        raise BenchmarkError(f"unknown dataset {dataset!r}")
    spec = DATASETS[dataset]
    g = load_dataset(dataset, k=k, fresh=True)
    batch_size = spec.scaled_batch_size(paper_batch_size, g.num_edges)
    trees = [SOSPTree.build(g, source, objective=i) for i in range(k)]
    batch = random_insert_batch(g, batch_size, seed=seed)
    batch.apply_to(g)

    eng = SimulatedEngine(threads=1, record_trace=True)
    # the whole pipeline runs under a recording tracer: wall times come
    # from the span stream (root span = whole update, algorithm-phase
    # spans = the Figure 6 steps), not hand-rolled clock reads
    tracer = Tracer(recording=True)
    with use_tracer(tracer):
        with tracer.span(
            "bench.record_mosp_trace", dataset=dataset,
            batch_size=batch_size,
        ) as root:
            result = mosp_update(
                g, trees, batch, engine=eng, weighting=weighting
            )

    # rebuild per-step trace slices from the engine's virtual timeline:
    # mosp_update charged steps strictly in order, so cutting the trace
    # at each step's cumulative virtual time reproduces the segments.
    step_traces = _segment_trace(eng.trace or [], result.step_virtual_seconds)

    return MOSPTrace(
        dataset=dataset,
        batch_size=batch_size,
        paper_batch_size=paper_batch_size,
        trace=list(eng.trace or []),
        step_traces=step_traces,
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        wall_seconds=root.elapsed,
        step_wall_seconds=dict(result.step_seconds),
        spans=[s.to_dict() for s in tracer.drain()],
    )


def _segment_trace(
    trace: List[tuple], step_virtual_seconds: Dict[str, float]
) -> Dict[str, List[tuple]]:
    """Split a trace into per-step slices by cumulative virtual time.

    ``step_virtual_seconds`` preserves insertion order (the pipeline
    order), so consuming events until each step's recorded virtual
    duration is exhausted recovers the per-step sub-traces exactly —
    the engine's clock advances by the same amounts it did live.
    """
    cm = CostModel()
    out: Dict[str, List[tuple]] = {}
    idx = 0

    def event_cost(ev, threads=1) -> float:
        kind, payload = ev
        if kind == "serial":
            return payload * cm.seconds_per_unit
        return replay_trace([ev], 1, cm)

    for step, duration in step_virtual_seconds.items():
        seg: List[tuple] = []
        acc = 0.0
        while idx < len(trace) and acc < duration - 1e-15:
            ev = trace[idx]
            seg.append(ev)
            acc += event_cost(ev)
            idx += 1
        out[step] = seg
    # anything left belongs to the final step (trailing charges)
    if idx < len(trace) and out:
        last = next(reversed(out))
        out[last].extend(trace[idx:])
    return out
