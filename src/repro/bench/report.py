"""Plain-text rendering of benchmark tables and series.

The benchmarks print the same rows/series the paper plots; these
helpers keep the output aligned and diff-friendly (EXPERIMENTS.md
embeds them verbatim).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

__all__ = ["render_table", "render_series_table", "format_ms"]


def format_ms(ms: float) -> str:
    """Compact millisecond formatting (3 significant-ish digits)."""
    if ms >= 100:
        return f"{ms:,.0f}"
    if ms >= 1:
        return f"{ms:.2f}"
    return f"{ms:.4f}"


def render_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str]) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return "(empty)"
    widths = {
        c: max(len(c), max(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def render_series_table(
    series: Mapping[str, Sequence[Tuple[int, float]]],
    x_label: str = "threads",
    value_format=format_ms,
) -> str:
    """Render ``{series_name: [(x, y), ...]}`` with x as rows.

    All series must share the same x grid (they do: the thread sweep).
    """
    names = list(series)
    if not names:
        return "(empty)"
    xs = [x for x, _ in series[names[0]]]
    rows = []
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name in names:
            row[name] = value_format(series[name][i][1])
        rows.append(row)
    return render_table(rows, [x_label] + names)
