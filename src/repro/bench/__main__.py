"""Benchmark-harness utilities: ``python -m repro.bench <command>``.

``validate-ledgers [dir] [--min-count N]``
    Check every ``BENCH_*.json`` perf ledger in ``dir`` (default
    ``results/``) against the :mod:`repro.bench.ledger` schema.  Exits
    1 when any ledger is invalid, or when fewer than ``--min-count``
    ledgers exist — CI uses the count floor to catch benchmarks that
    silently stop emitting.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence, TextIO

from repro.bench.ledger import read_ledger
from repro.errors import ReproError

__all__ = ["main"]


def _cmd_validate_ledgers(args: argparse.Namespace, out: TextIO) -> int:
    root = Path(args.dir)
    paths = sorted(root.glob("BENCH_*.json")) if root.is_dir() else []
    failures = 0
    for path in paths:
        try:
            doc = read_ledger(path)
        except ReproError as exc:
            print(f"INVALID {exc}", file=out)
            failures += 1
            continue
        timings = ", ".join(
            f"{k}={v:.4g}s" for k, v in sorted(doc["wall_seconds"].items())
        )
        print(f"ok {path.name}: engine {doc['engine']}, "
              f"workers {doc['workers']}, {timings}", file=out)
    print(f"{len(paths) - failures}/{len(paths)} ledgers valid in {root}",
          file=out)
    if failures:
        return 1
    if len(paths) < args.min_count:
        print(
            f"expected at least {args.min_count} ledgers, found {len(paths)}",
            file=out,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None,
         out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    p = argparse.ArgumentParser(prog="repro.bench")
    sub = p.add_subparsers(dest="command", required=True)
    v = sub.add_parser(
        "validate-ledgers",
        help="schema-check every BENCH_*.json perf ledger",
    )
    v.add_argument("dir", nargs="?", default="results",
                   help="directory holding BENCH_*.json (default results/)")
    v.add_argument("--min-count", type=int, default=0,
                   help="fail unless at least this many ledgers exist")
    args = p.parse_args(argv)
    return _cmd_validate_ledgers(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
